//! A parser for regular expressions with *named* symbols.
//!
//! The paper writes inventories like `∅*[P]*[S]*[G]*[E]+[P]*∅*`
//! (Example 3.2) and `(p(q∪r)s)*` (Example 3.3). This parser accepts that
//! style:
//!
//! * symbols: identifiers (`p`, `STUDENT`), bracketed names (`[G]`,
//!   `[S,E]` — the bracket content, trimmed, is the symbol name), or the
//!   literal `∅`;
//! * operators: juxtaposition/whitespace (concatenation), `|` or `∪`
//!   (union), postfix `*` `+` `?`, parentheses;
//! * `λ` or `%` denote the empty word.
//!
//! Symbol names are resolved to ids by a caller-supplied resolver, so the
//! same parser serves any alphabet (role sets, abstract test alphabets…).

use crate::error::AutomataError;
use crate::regex::Regex;

/// Parse a regular expression, resolving symbol names via `resolve`.
pub fn parse_regex(
    src: &str,
    resolve: &dyn Fn(&str) -> Option<u32>,
) -> Result<Regex, AutomataError> {
    let mut p = Parser { chars: src.char_indices().peekable(), src, resolve };
    p.skip_ws();
    let r = p.union()?;
    p.skip_ws();
    if let Some(&(i, c)) = p.chars.peek() {
        return Err(AutomataError::Parse { offset: i, msg: format!("unexpected `{c}`") });
    }
    Ok(r)
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
    resolve: &'a dyn Fn(&str) -> Option<u32>,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(&(_, c)) if c.is_whitespace() || c == '·' || c == '.')
        {
            self.chars.next();
        }
    }

    fn union(&mut self) -> Result<Regex, AutomataError> {
        let mut parts = vec![self.concat()?];
        loop {
            self.skip_ws();
            match self.chars.peek() {
                Some(&(_, '|')) | Some(&(_, '∪')) => {
                    self.chars.next();
                    self.skip_ws();
                    parts.push(self.concat()?);
                }
                _ => break,
            }
        }
        Ok(Regex::union(parts))
    }

    fn concat(&mut self) -> Result<Regex, AutomataError> {
        let mut parts = Vec::new();
        loop {
            self.skip_ws();
            match self.chars.peek() {
                None | Some(&(_, ')')) | Some(&(_, '|')) | Some(&(_, '∪')) => break,
                _ => parts.push(self.postfix()?),
            }
        }
        if parts.is_empty() {
            // Allow `()` and empty alternatives to mean λ.
            return Ok(Regex::Epsilon);
        }
        Ok(Regex::concat(parts))
    }

    fn postfix(&mut self) -> Result<Regex, AutomataError> {
        let mut base = self.atom()?;
        loop {
            match self.chars.peek() {
                Some(&(_, '*')) => {
                    self.chars.next();
                    base = Regex::star(base);
                }
                Some(&(_, '+')) => {
                    self.chars.next();
                    base = Regex::plus(base);
                }
                Some(&(_, '?')) => {
                    self.chars.next();
                    base = Regex::opt(base);
                }
                _ => return Ok(base),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, AutomataError> {
        let Some(&(i, c)) = self.chars.peek() else {
            return Err(AutomataError::Parse {
                offset: self.src.len(),
                msg: "unexpected end of expression".into(),
            });
        };
        match c {
            '(' => {
                self.chars.next();
                let inner = self.union()?;
                self.skip_ws();
                match self.chars.next() {
                    Some((_, ')')) => Ok(inner),
                    _ => Err(AutomataError::Parse { offset: i, msg: "unclosed `(`".into() }),
                }
            }
            'λ' | '%' => {
                self.chars.next();
                Ok(Regex::Epsilon)
            }
            '∅' => {
                self.chars.next();
                self.symbol("∅", i)
            }
            '[' => {
                self.chars.next();
                let mut name = String::new();
                loop {
                    match self.chars.next() {
                        Some((_, ']')) => break,
                        Some((_, ch)) => name.push(ch),
                        None => {
                            return Err(AutomataError::Parse {
                                offset: i,
                                msg: "unclosed `[`".into(),
                            })
                        }
                    }
                }
                let trimmed: String = name.split(',').map(str::trim).collect::<Vec<_>>().join(",");
                self.symbol(&format!("[{trimmed}]"), i)
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut name = String::new();
                while let Some(&(_, ch)) = self.chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' || ch == '-' {
                        name.push(ch);
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                self.symbol(&name, i)
            }
            other => Err(AutomataError::Parse { offset: i, msg: format!("unexpected `{other}`") }),
        }
    }

    fn symbol(&mut self, name: &str, offset: usize) -> Result<Regex, AutomataError> {
        match (self.resolve)(name) {
            Some(id) => Ok(Regex::Sym(id)),
            None => Err(AutomataError::Parse { offset, msg: format!("unknown symbol `{name}`") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::nfa::Nfa;

    fn resolver(name: &str) -> Option<u32> {
        match name {
            "∅" => Some(0),
            "p" | "[P]" => Some(1),
            "q" | "[Q]" => Some(2),
            "r" | "[R]" => Some(3),
            "s" | "[S,E]" => Some(4),
            _ => None,
        }
    }

    fn parse(src: &str) -> Regex {
        parse_regex(src, &resolver).unwrap()
    }

    fn lang(src: &str) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(&parse(src), 5))
    }

    #[test]
    fn symbols_and_operators() {
        let d = lang("p (q | r)* s");
        assert!(d.accepts(&[1, 4]));
        assert!(d.accepts(&[1, 2, 3, 2, 4]));
        assert!(!d.accepts(&[1]));
    }

    #[test]
    fn paper_style_inventory() {
        // ∅*[P]*[Q]+∅* in Example 3.2 style.
        let d = lang("∅* [P]* [Q]+ ∅*");
        assert!(d.accepts(&[0, 0, 1, 2, 2, 0]));
        assert!(d.accepts(&[2]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[2, 1]));
    }

    #[test]
    fn union_unicode_and_plus() {
        let d = lang("(p (q ∪ r) s)+");
        assert!(d.accepts(&[1, 2, 4]));
        assert!(d.accepts(&[1, 3, 4, 1, 2, 4]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn epsilon_and_empty_group() {
        let d = lang("p? λ () q");
        assert!(d.accepts(&[2]));
        assert!(d.accepts(&[1, 2]));
        assert!(!d.accepts(&[1]));
    }

    #[test]
    fn bracket_symbol_with_comma() {
        let d = lang("[S, E]*");
        assert!(d.accepts(&[4, 4]));
        assert!(d.accepts(&[]));
    }

    #[test]
    fn errors_reported_with_offset() {
        let e = parse_regex("p ) q", &resolver).unwrap_err();
        assert!(matches!(e, AutomataError::Parse { .. }));
        let e = parse_regex("zqz", &resolver).unwrap_err();
        match e {
            AutomataError::Parse { msg, .. } => assert!(msg.contains("zqz")),
            other => panic!("{other:?}"),
        }
        assert!(parse_regex("(p", &resolver).is_err());
        assert!(parse_regex("[P", &resolver).is_err());
    }

    #[test]
    fn concatenation_via_dot() {
        let d = lang("p·q.r");
        assert!(d.accepts(&[1, 2, 3]));
    }
}

//! Graphviz rendering of automata (for documentation and debugging of
//! migration graphs).

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use std::fmt::Write as _;

/// Render an NFA in Graphviz dot format with a symbol-naming function.
#[must_use]
pub fn nfa_to_dot(nfa: &Nfa, name: &dyn Fn(u32) -> String) -> String {
    let mut out = String::from("digraph nfa {\n  rankdir=LR;\n  node [shape=circle];\n");
    for q in 0..nfa.num_states() as u32 {
        if nfa.is_accepting(q) {
            let _ = writeln!(out, "  q{q} [shape=doublecircle];");
        }
    }
    for (i, &s) in nfa.starts().iter().enumerate() {
        let _ = writeln!(out, "  start{i} [shape=point]; start{i} -> q{s};");
    }
    for q in 0..nfa.num_states() as u32 {
        for (s, t) in nfa.transitions(q) {
            let _ = writeln!(out, "  q{q} -> q{t} [label=\"{}\"];", name(s));
        }
        for t in nfa.eps_transitions(q) {
            let _ = writeln!(out, "  q{q} -> q{t} [label=\"ε\"];");
        }
    }
    out.push('}');
    out
}

/// Render a DFA in Graphviz dot format (sink states with no route to
/// acceptance are omitted for readability).
#[must_use]
pub fn dfa_to_dot(dfa: &Dfa, name: &dyn Fn(u32) -> String) -> String {
    let live = dfa.live_states();
    let mut out = String::from("digraph dfa {\n  rankdir=LR;\n  node [shape=circle];\n");
    for q in 0..dfa.num_states() as u32 {
        if dfa.is_accepting(q) {
            let _ = writeln!(out, "  q{q} [shape=doublecircle];");
        }
    }
    let _ = writeln!(out, "  start [shape=point]; start -> q{};", dfa.start());
    for q in 0..dfa.num_states() as u32 {
        if !live[q as usize] {
            continue;
        }
        for s in 0..dfa.num_symbols() {
            let t = dfa.step(q, s);
            if live[t as usize] {
                let _ = writeln!(out, "  q{q} -> q{t} [label=\"{}\"];", name(s));
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    #[test]
    fn dot_outputs_contain_structure() {
        let n = Nfa::from_regex(&Regex::word([0, 1]), 2);
        let dot = nfa_to_dot(&n, &|s| format!("a{s}"));
        assert!(dot.starts_with("digraph nfa"));
        assert!(dot.contains("a0") && dot.contains("a1"));
        assert!(dot.contains("doublecircle"));

        let d = Dfa::from_nfa(&n);
        let dot = dfa_to_dot(&d, &|s| format!("a{s}"));
        assert!(dot.starts_with("digraph dfa"));
        assert!(dot.contains("start ->"));
    }
}

//! State elimination: automaton → regular expression.
//!
//! Theorem 3.2(1) asserts that regular expressions for the pattern
//! families "can be effectively constructed from Σ"; this module provides
//! that last step, converting the migration graph's automaton into a
//! regular expression via the classical generalized-NFA elimination.

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::regex::Regex;

/// Convert an NFA to an equivalent regular expression by state
/// elimination. The expression can be large (worst-case exponential);
/// minimize the automaton first for small outputs.
#[must_use]
pub fn nfa_to_regex(nfa: &Nfa) -> Regex {
    let n = nfa.num_states();
    // GNFA with fresh start (index n) and accept (index n+1).
    let total = n + 2;
    let start = n;
    let accept = n + 1;
    let mut edge: Vec<Vec<Regex>> = vec![vec![Regex::Empty; total]; total];

    #[allow(clippy::needless_range_loop)] // edge is a 2-D matrix indexed by q
    for q in 0..n {
        for (s, t) in nfa.transitions(q as u32) {
            let e = &mut edge[q][t as usize];
            *e = Regex::union([std::mem::replace(e, Regex::Empty), Regex::Sym(s)]);
        }
        for t in nfa.eps_transitions(q as u32) {
            let e = &mut edge[q][t as usize];
            *e = Regex::union([std::mem::replace(e, Regex::Empty), Regex::Epsilon]);
        }
        if nfa.is_accepting(q as u32) {
            edge[q][accept] = Regex::Epsilon;
        }
    }
    for &s in nfa.starts() {
        edge[start][s as usize] = Regex::Epsilon;
    }

    // Eliminate interior states one by one.
    for k in 0..n {
        let loop_k = Regex::star(edge[k][k].clone());
        let incoming: Vec<usize> =
            (0..total).filter(|&i| i != k && edge[i][k] != Regex::Empty).collect();
        let outgoing: Vec<usize> =
            (0..total).filter(|&j| j != k && edge[k][j] != Regex::Empty).collect();
        for &i in &incoming {
            for &j in &outgoing {
                let through =
                    Regex::concat([edge[i][k].clone(), loop_k.clone(), edge[k][j].clone()]);
                let e = &mut edge[i][j];
                *e = Regex::union([std::mem::replace(e, Regex::Empty), through]);
            }
        }
        for row in edge.iter_mut() {
            row[k] = Regex::Empty;
        }
        edge[k].fill(Regex::Empty);
    }
    edge[start][accept].clone()
}

/// Convert a DFA to a regular expression (minimizes first to keep the
/// output small).
#[must_use]
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    nfa_to_regex(&dfa.minimize().to_nfa())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: &Regex, ns: u32) {
        let d = Dfa::from_nfa(&Nfa::from_regex(r, ns));
        let r2 = dfa_to_regex(&d);
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&r2, ns));
        assert!(d.equivalent(&d2), "state elimination changed the language of {r}: produced {r2}");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(&Regex::word([0, 1]), 2);
        roundtrip(&Regex::star(Regex::Sym(0)), 2);
        roundtrip(&Regex::Epsilon, 2);
        roundtrip(&Regex::Empty, 2);
    }

    #[test]
    fn roundtrip_structured() {
        // P(QQP)* — the paper's Example 3.6 expression shape.
        let p = Regex::Sym(0);
        let q = Regex::Sym(1);
        let r = Regex::concat([p.clone(), Regex::star(Regex::concat([q.clone(), q, p]))]);
        roundtrip(&r, 2);
    }

    #[test]
    fn roundtrip_with_unions_and_plus() {
        let r = Regex::concat([
            Regex::plus(Regex::Sym(0)),
            Regex::star(Regex::union([Regex::Sym(1), Regex::word([2, 2])])),
            Regex::opt(Regex::Sym(0)),
        ]);
        roundtrip(&r, 3);
    }

    #[test]
    fn roundtrip_prefix_closure() {
        // Init(0 1 2) via prefix closure, then back to a regex.
        let n = Nfa::from_regex(&Regex::word([0, 1, 2]), 3).prefix_closure();
        let r = nfa_to_regex(&n);
        let d = Dfa::from_nfa(&Nfa::from_regex(&r, 3));
        for w in [&[][..], &[0], &[0, 1], &[0, 1, 2]] {
            assert!(d.accepts(w));
        }
        assert!(!d.accepts(&[1]));
    }
}

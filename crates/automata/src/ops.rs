//! Language-level operations on automata: rational combinators
//! (concatenation, union, star), prefix closure, and the left quotient
//! used by Theorem 4.4 (`(ω₁*ω₂)⁻¹ · 𝓛ᵢₘₘ`).

use crate::dfa::Dfa;
use crate::error::AutomataError;
use crate::nfa::{Nfa, StateId};

fn check_alphabets(a: &Nfa, b: &Nfa) -> Result<(), AutomataError> {
    if a.num_symbols() == b.num_symbols() {
        Ok(())
    } else {
        Err(AutomataError::AlphabetMismatch { left: a.num_symbols(), right: b.num_symbols() })
    }
}

/// Disjoint union of state sets; returns the state-id offset of `b`'s
/// states inside the result.
fn embed(a: &Nfa, b: &Nfa, out: &mut Nfa) -> (Vec<StateId>, Vec<StateId>) {
    let mut map_a = Vec::with_capacity(a.num_states());
    for q in 0..a.num_states() as StateId {
        map_a.push(out.add_state(a.is_accepting(q)));
    }
    let mut map_b = Vec::with_capacity(b.num_states());
    for q in 0..b.num_states() as StateId {
        map_b.push(out.add_state(b.is_accepting(q)));
    }
    for q in 0..a.num_states() as StateId {
        for (s, t) in a.transitions(q) {
            out.add_transition(map_a[q as usize], s, map_a[t as usize]);
        }
        for t in a.eps_transitions(q) {
            out.add_eps(map_a[q as usize], map_a[t as usize]);
        }
    }
    for q in 0..b.num_states() as StateId {
        for (s, t) in b.transitions(q) {
            out.add_transition(map_b[q as usize], s, map_b[t as usize]);
        }
        for t in b.eps_transitions(q) {
            out.add_eps(map_b[q as usize], map_b[t as usize]);
        }
    }
    (map_a, map_b)
}

/// `L(a) · L(b)`.
pub fn concat(a: &Nfa, b: &Nfa) -> Result<Nfa, AutomataError> {
    check_alphabets(a, b)?;
    let mut out = Nfa::empty(a.num_symbols());
    let (map_a, map_b) = embed(a, b, &mut out);
    // a's accepting states ε-connect to b's starts, and stop accepting.
    for q in 0..a.num_states() as StateId {
        if a.is_accepting(q) {
            out.set_accepting(map_a[q as usize], false);
            for &s in b.starts() {
                out.add_eps(map_a[q as usize], map_b[s as usize]);
            }
        }
    }
    for &s in a.starts() {
        out.add_start(map_a[s as usize]);
    }
    Ok(out)
}

/// `L(a) ∪ L(b)`.
pub fn union(a: &Nfa, b: &Nfa) -> Result<Nfa, AutomataError> {
    check_alphabets(a, b)?;
    let mut out = Nfa::empty(a.num_symbols());
    let (map_a, map_b) = embed(a, b, &mut out);
    for &s in a.starts() {
        out.add_start(map_a[s as usize]);
    }
    for &s in b.starts() {
        out.add_start(map_b[s as usize]);
    }
    Ok(out)
}

/// `L(a)*`.
#[must_use]
pub fn star(a: &Nfa) -> Nfa {
    let mut out = Nfa::empty(a.num_symbols());
    let hub = out.add_state(true);
    let (map_a, _) = embed(a, &Nfa::empty(a.num_symbols()), &mut out);
    for &s in a.starts() {
        out.add_eps(hub, map_a[s as usize]);
    }
    for q in 0..a.num_states() as StateId {
        if a.is_accepting(q) {
            out.set_accepting(map_a[q as usize], false);
            out.add_eps(map_a[q as usize], hub);
        }
    }
    out.add_start(hub);
    out
}

/// The left quotient `X⁻¹Y = {z | ∃x ∈ X, xz ∈ Y}` (Definition 4.8).
///
/// Construction: the new automaton is `y` with its start set replaced by
/// every state of `y` reachable from `y`'s start via some word of `X` —
/// computed by a product reachability between `x` (as a DFA) and `y`.
#[must_use]
pub fn left_quotient(x: &Dfa, y: &Nfa) -> Nfa {
    assert_eq!(x.num_symbols(), y.num_symbols(), "quotient requires identical alphabets");
    let mut seen = std::collections::HashSet::new();
    let mut stack: Vec<(u32, StateId)> = Vec::new();
    for &q in &y.eps_closure(y.starts()) {
        if seen.insert((x.start(), q)) {
            stack.push((x.start(), q));
        }
    }
    let mut new_starts: Vec<StateId> = Vec::new();
    while let Some((a, q)) = stack.pop() {
        if x.is_accepting(a) {
            new_starts.push(q);
        }
        for (s, t) in y.transitions(q) {
            let a2 = x.step(a, s);
            for &t2 in &y.eps_closure(&[t]) {
                if seen.insert((a2, t2)) {
                    stack.push((a2, t2));
                }
            }
        }
    }
    let mut out = y.clone();
    out.replace_starts(&new_starts);
    out
}

/// On-the-fly inclusion `L(nfa) ⊆ L(dfa)`: explores pairs (ε-closed NFA
/// state set, complement-DFA state) lazily and stops at the first
/// counterexample, returning it. Avoids materializing, determinizing, or
/// minimizing the left language — the ablation partner of
/// [`Dfa::witness_not_subset`] (DESIGN.md §6.3), which pays those costs
/// up front but answers repeat queries cheaply.
///
/// Returns `None` when the inclusion holds, otherwise a shortest-found
/// witness in `L(nfa) ∖ L(dfa)` (BFS order, so of minimal length).
pub fn nfa_witness_not_subset(nfa: &Nfa, dfa: &Dfa) -> Result<Option<Vec<u32>>, AutomataError> {
    if nfa.num_symbols() != dfa.num_symbols() {
        return Err(AutomataError::AlphabetMismatch {
            left: nfa.num_symbols(),
            right: dfa.num_symbols(),
        });
    }
    let key = |set: &[StateId]| -> Vec<StateId> {
        let mut v = set.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let start_set = key(&nfa.eps_closure(nfa.starts()));
    let start = (start_set, dfa.start());
    let accepts_nfa = |set: &[StateId]| set.iter().any(|&q| nfa.is_accepting(q));

    let mut seen = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    seen.insert(start.clone());
    queue.push_back((start, Vec::<u32>::new()));
    while let Some(((set, d), word)) = queue.pop_front() {
        if accepts_nfa(&set) && !dfa.is_accepting(d) {
            return Ok(Some(word));
        }
        for s in 0..nfa.num_symbols() {
            let mut next: Vec<StateId> = Vec::new();
            for &q in &set {
                next.extend(nfa.transitions(q).filter(|&(sym, _)| sym == s).map(|(_, t)| t));
            }
            if next.is_empty() {
                continue; // ∅ on the left accepts nothing: inclusion holds here.
            }
            let next = key(&nfa.eps_closure(&next));
            let pair = (next, dfa.step(d, s));
            if seen.insert(pair.clone()) {
                let mut w2 = word.clone();
                w2.push(s);
                queue.push_back((pair, w2));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn nfa(r: Regex) -> Nfa {
        Nfa::from_regex(&r, 3)
    }

    fn dfa(r: Regex) -> Dfa {
        Dfa::from_nfa(&nfa(r))
    }

    #[test]
    fn concat_combinator() {
        let ab = concat(&nfa(Regex::Sym(0)), &nfa(Regex::star(Regex::Sym(1)))).unwrap();
        assert!(ab.accepts(&[0]));
        assert!(ab.accepts(&[0, 1, 1]));
        assert!(!ab.accepts(&[1]));
        assert!(!ab.accepts(&[]));
    }

    #[test]
    fn union_combinator() {
        let u = union(&nfa(Regex::Sym(0)), &nfa(Regex::word([1, 1]))).unwrap();
        assert!(u.accepts(&[0]));
        assert!(u.accepts(&[1, 1]));
        assert!(!u.accepts(&[1]));
    }

    #[test]
    fn star_combinator() {
        let s = star(&nfa(Regex::word([0, 1])));
        assert!(s.accepts(&[]));
        assert!(s.accepts(&[0, 1]));
        assert!(s.accepts(&[0, 1, 0, 1]));
        assert!(!s.accepts(&[0]));
    }

    #[test]
    fn alphabet_mismatch_detected() {
        let a = Nfa::from_regex(&Regex::Sym(0), 1);
        let b = Nfa::from_regex(&Regex::Sym(0), 2);
        assert!(matches!(concat(&a, &b), Err(AutomataError::AlphabetMismatch { .. })));
    }

    #[test]
    fn left_quotient_strips_prefixes() {
        // Y = 0*12, X = 0* ⇒ X⁻¹Y = 0*12 ∪ 12-suffixes… precisely
        // {z | ∃k, 0^k z ∈ 0*12} = 0*12 ∪ {12 suffix forms} = 0*12 | 12 | 2.
        let y = nfa(Regex::concat([Regex::star(Regex::Sym(0)), Regex::word([1, 2])]));
        let x = dfa(Regex::star(Regex::Sym(0)));
        let q = left_quotient(&x, &y);
        for w in [&[1, 2][..], &[0, 1, 2], &[0, 0, 1, 2]] {
            assert!(q.accepts(w), "{w:?}");
        }
        assert!(!q.accepts(&[2]), "0 ∈ X but 0·2 ∉ Y; and 1 missing");
        assert!(!q.accepts(&[]));
    }

    #[test]
    fn left_quotient_by_exact_word() {
        // Y = 012, X = {01} ⇒ X⁻¹Y = {2}.
        let y = nfa(Regex::word([0, 1, 2]));
        let x = dfa(Regex::word([0, 1]));
        let q = left_quotient(&x, &y);
        assert!(q.accepts(&[2]));
        assert!(!q.accepts(&[]));
        assert!(!q.accepts(&[1, 2]));
    }

    #[test]
    fn left_quotient_can_contain_lambda() {
        // Y = 0*, X = 0* ⇒ X⁻¹Y = 0* (λ included).
        let y = nfa(Regex::star(Regex::Sym(0)));
        let x = dfa(Regex::star(Regex::Sym(0)));
        let q = left_quotient(&x, &y);
        assert!(q.accepts(&[]));
        assert!(q.accepts(&[0, 0]));
        assert!(!q.accepts(&[1]));
    }

    #[test]
    fn on_the_fly_inclusion_agrees_with_dfa_route() {
        let cases: Vec<(Regex, Regex)> = vec![
            // L ⊆ R holds.
            (Regex::star(Regex::Sym(0)), Regex::star(Regex::union([Regex::Sym(0), Regex::Sym(1)]))),
            // Fails with witness 11.
            (Regex::star(Regex::Sym(1)), Regex::union([Regex::Epsilon, Regex::Sym(1)])),
            // Equal languages.
            (
                Regex::concat([Regex::Sym(0), Regex::star(Regex::Sym(1))]),
                Regex::concat([Regex::Sym(0), Regex::star(Regex::Sym(1))]),
            ),
            // Empty left language: vacuously included.
            (Regex::Empty, Regex::Sym(0)),
        ];
        for (l, r) in cases {
            let ln = nfa(l.clone());
            let rd = dfa(r.clone());
            let fly = nfa_witness_not_subset(&ln, &rd).unwrap();
            let heavy = Dfa::from_nfa(&ln).minimize().witness_not_subset(&rd);
            assert_eq!(fly.is_none(), heavy.is_none(), "routes disagree on {l} ⊆ {r}");
            if let Some(w) = fly {
                assert!(ln.accepts(&w) && !rd.accepts(&w), "bogus witness {w:?}");
            }
        }
    }

    #[test]
    fn on_the_fly_inclusion_rejects_alphabet_mismatch() {
        let ln = Nfa::from_regex(&Regex::Sym(0), 5);
        let rd = dfa(Regex::Sym(0));
        assert!(matches!(
            nfa_witness_not_subset(&ln, &rd),
            Err(AutomataError::AlphabetMismatch { .. })
        ));
    }
}

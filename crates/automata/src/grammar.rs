//! Linear grammars.
//!
//! The proof of Theorem 3.2(1) extracts the pattern family from the
//! migration graph G_Σ by building a grammar with one nonterminal per
//! vertex and productions `u → L(u) v` for each edge `(u, v)` plus
//! `u → L(u)` for edges into the sink. (The paper calls it "left-linear";
//! with the terminal emitted on the left of the nonterminal the
//! conventional name is *right-linear* — either way it generates a regular
//! language.) This module implements such grammars and their conversion to
//! NFAs, so the paper's route is reproduced literally and tested against
//! the direct automaton construction.

use crate::nfa::Nfa;

/// A production of a right-linear grammar: `lhs → sym? rhs?`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinearProd {
    /// Left-hand nonterminal.
    pub lhs: u32,
    /// Emitted terminal (or none for `lhs → rhs` / `lhs → λ`).
    pub sym: Option<u32>,
    /// Continuation nonterminal (or none to stop).
    pub rhs: Option<u32>,
}

/// A right-linear grammar over terminals `0..num_symbols` and
/// nonterminals `0..num_nonterminals`.
#[derive(Clone, Debug)]
pub struct RightLinearGrammar {
    /// Alphabet size.
    pub num_symbols: u32,
    /// Nonterminal count.
    pub num_nonterminals: u32,
    /// Start nonterminal.
    pub start: u32,
    /// Productions.
    pub prods: Vec<LinearProd>,
}

impl RightLinearGrammar {
    /// A grammar with no productions (empty language).
    #[must_use]
    pub fn new(num_symbols: u32, num_nonterminals: u32, start: u32) -> Self {
        RightLinearGrammar { num_symbols, num_nonterminals, start, prods: Vec::new() }
    }

    /// Add `lhs → sym rhs`.
    pub fn add(&mut self, lhs: u32, sym: Option<u32>, rhs: Option<u32>) {
        debug_assert!(lhs < self.num_nonterminals);
        debug_assert!(rhs.is_none_or(|r| r < self.num_nonterminals));
        debug_assert!(sym.is_none_or(|s| s < self.num_symbols));
        self.prods.push(LinearProd { lhs, sym, rhs });
    }

    /// Convert to an NFA: one state per nonterminal plus a final state;
    /// `u → a v` becomes an `a`-transition `u → v`; `u → a` an
    /// `a`-transition to the final state; `u → v` an ε-transition;
    /// `u → λ` makes `u` accepting.
    #[must_use]
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::empty(self.num_symbols);
        for _ in 0..self.num_nonterminals {
            nfa.add_state(false);
        }
        let fin = nfa.add_state(true);
        for p in &self.prods {
            match (p.sym, p.rhs) {
                (Some(s), Some(r)) => nfa.add_transition(p.lhs, s, r),
                (Some(s), None) => nfa.add_transition(p.lhs, s, fin),
                (None, Some(r)) => nfa.add_eps(p.lhs, r),
                (None, None) => nfa.add_eps(p.lhs, fin),
            }
        }
        nfa.add_start(self.start);
        nfa
    }

    /// Number of productions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prods.len()
    }

    /// Whether there are no productions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prods.is_empty()
    }
}

/// Extract a right-linear grammar from an NFA (inverse direction, for
/// round-trip testing): nonterminals are states, `q → a r` per transition,
/// `q → λ` per accepting state.
#[must_use]
pub fn grammar_from_nfa(nfa: &Nfa) -> RightLinearGrammar {
    // Multiple start states are folded through a fresh start nonterminal.
    let n = nfa.num_states() as u32;
    let mut g = RightLinearGrammar::new(nfa.num_symbols(), n + 1, n);
    for q in 0..n {
        for (s, t) in nfa.transitions(q) {
            g.add(q, Some(s), Some(t));
        }
        for t in nfa.eps_transitions(q) {
            g.add(q, None, Some(t));
        }
        if nfa.is_accepting(q) {
            g.add(q, None, None);
        }
    }
    for &s in nfa.starts() {
        g.add(n, None, Some(s));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::regex::Regex;

    #[test]
    fn grammar_generates_walk_language() {
        // The paper's construction for a two-vertex migration graph:
        // vs → [P] v1, v1 → [Q] v1, v1 → [Q].
        // Walk labels: P Q+… with prefix closure handled by acceptance.
        let mut g = RightLinearGrammar::new(2, 2, 0);
        g.add(0, Some(0), Some(1)); // vs → P v1
        g.add(1, Some(1), Some(1)); // v1 → Q v1
        g.add(1, Some(1), None); // v1 → Q
        let d = Dfa::from_nfa(&g.to_nfa());
        assert!(d.accepts(&[0, 1]));
        assert!(d.accepts(&[0, 1, 1, 1]));
        assert!(!d.accepts(&[0]));
        assert!(!d.accepts(&[1]));
    }

    #[test]
    fn lambda_production_makes_nullable() {
        let mut g = RightLinearGrammar::new(1, 1, 0);
        g.add(0, None, None); // S → λ
        g.add(0, Some(0), Some(0)); // S → 0 S
        let d = Dfa::from_nfa(&g.to_nfa());
        assert!(d.accepts(&[]));
        assert!(d.accepts(&[0, 0]));
    }

    #[test]
    fn nfa_grammar_roundtrip() {
        let r = Regex::concat([
            Regex::star(Regex::union([Regex::Sym(0), Regex::word([1, 2])])),
            Regex::Sym(2),
        ]);
        let nfa = Nfa::from_regex(&r, 3);
        let g = grammar_from_nfa(&nfa);
        let back = Dfa::from_nfa(&g.to_nfa());
        let orig = Dfa::from_nfa(&nfa);
        assert!(orig.equivalent(&back));
        assert!(!g.is_empty());
        assert_eq!(g.len(), g.prods.len());
    }
}

//! Error types for the automata toolkit.

/// Errors raised by regex parsing and automaton construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AutomataError {
    /// A regular-expression parse error.
    Parse {
        /// Byte offset of the offending character.
        offset: usize,
        /// Description.
        msg: String,
    },
    /// A symbol name could not be resolved against the alphabet.
    UnknownSymbol(String),
    /// Two automata over different alphabets were combined.
    AlphabetMismatch {
        /// Left operand's symbol count.
        left: u32,
        /// Right operand's symbol count.
        right: u32,
    },
}

impl std::fmt::Display for AutomataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutomataError::Parse { offset, msg } => {
                write!(f, "regex parse error at byte {offset}: {msg}")
            }
            AutomataError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            AutomataError::AlphabetMismatch { left, right } => {
                write!(f, "alphabet mismatch: {left} vs {right} symbols")
            }
        }
    }
}

impl std::error::Error for AutomataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AutomataError::UnknownSymbol("Q".into()).to_string().contains('Q'));
        assert!(AutomataError::AlphabetMismatch { left: 2, right: 3 }
            .to_string()
            .contains("2 vs 3"));
    }
}

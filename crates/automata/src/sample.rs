//! Random sampling of accepted words — used by the property-test and
//! benchmark workloads ("pick a random legal migration pattern").

use crate::dfa::Dfa;
use rand::{Rng, RngExt as _};

/// Sample a word accepted by `dfa`, uniformly among all accepted words of
/// length ≤ `max_len` (counted without saturation caveats for the modest
/// lengths used here). Returns `None` when no word of length ≤ `max_len`
/// is accepted.
pub fn sample_word<R: Rng + ?Sized>(dfa: &Dfa, max_len: usize, rng: &mut R) -> Option<Vec<u32>> {
    let n = dfa.num_states();
    let ns = dfa.num_symbols() as usize;
    // counts[k][q] = number of accepted words of length exactly k starting
    // from state q.
    let mut counts: Vec<Vec<u64>> = Vec::with_capacity(max_len + 1);
    let mut base = vec![0u64; n];
    for (q, slot) in base.iter_mut().enumerate() {
        *slot = u64::from(dfa.is_accepting(q as u32));
    }
    counts.push(base);
    for k in 1..=max_len {
        let prev = &counts[k - 1];
        let mut cur = vec![0u64; n];
        for (q, slot) in cur.iter_mut().enumerate() {
            let mut acc = 0u64;
            for s in 0..ns {
                acc = acc.saturating_add(prev[dfa.step(q as u32, s as u32) as usize]);
            }
            *slot = acc;
        }
        counts.push(cur);
    }

    let total: u64 =
        (0..=max_len).map(|k| counts[k][dfa.start() as usize]).fold(0, u64::saturating_add);
    if total == 0 {
        return None;
    }
    // Choose a length weighted by word counts.
    let mut pick = rng.random_range(0..total);
    let mut len = 0;
    for (k, row) in counts.iter().enumerate() {
        let c = row[dfa.start() as usize];
        if pick < c {
            len = k;
            break;
        }
        pick -= c;
    }

    // Walk the DFA, choosing symbols weighted by remaining counts.
    let mut word = Vec::with_capacity(len);
    let mut q = dfa.start();
    for k in (1..=len).rev() {
        let mut weights = Vec::with_capacity(ns);
        let mut sum = 0u64;
        for s in 0..ns {
            let w = counts[k - 1][dfa.step(q, s as u32) as usize];
            weights.push(w);
            sum = sum.saturating_add(w);
        }
        debug_assert!(sum > 0, "counting table inconsistent");
        let mut r = rng.random_range(0..sum);
        let mut chosen = 0;
        for (s, &w) in weights.iter().enumerate() {
            if r < w {
                chosen = s;
                break;
            }
            r -= w;
        }
        word.push(chosen as u32);
        q = dfa.step(q, chosen as u32);
    }
    debug_assert!(dfa.is_accepting(q));
    Some(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::regex::Regex;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn samples_are_accepted() {
        let r = Regex::concat([
            Regex::plus(Regex::Sym(0)),
            Regex::star(Regex::union([Regex::Sym(1), Regex::Sym(2)])),
        ]);
        let d = Dfa::from_nfa(&Nfa::from_regex(&r, 3));
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let w = sample_word(&d, 8, &mut rng).expect("language non-empty");
            assert!(d.accepts(&w), "sampled word {w:?} rejected");
            assert!(w.len() <= 8);
        }
    }

    #[test]
    fn empty_language_yields_none() {
        let d = Dfa::empty_language(2);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_word(&d, 10, &mut rng), None);
    }

    #[test]
    fn single_word_language_is_deterministic() {
        let d = Dfa::from_nfa(&Nfa::from_regex(&Regex::word([1, 0, 1]), 2));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(sample_word(&d, 5, &mut rng), Some(vec![1, 0, 1]));
        }
    }

    #[test]
    fn sampling_covers_the_language() {
        // {0, 1}: both words should appear over many draws.
        let d = Dfa::from_nfa(&Nfa::from_regex(&Regex::union([Regex::Sym(0), Regex::Sym(1)]), 2));
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(sample_word(&d, 3, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 2);
    }
}

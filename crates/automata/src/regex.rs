//! Regular expressions over a dense symbol alphabet `0..n`.
//!
//! Migration inventories are given by regular expressions over the set Ω
//! of role sets (Section 3 of the paper); this module provides the AST,
//! smart constructors performing light algebraic simplification, and
//! rendering with caller-supplied symbol names.

use std::fmt::Write as _;
use std::sync::Arc;

/// A regular expression over symbols `0..num_symbols` (the alphabet is
/// implicit; symbol ids are plain `u32`s).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex {
    /// The empty language ∅ (no words).
    Empty,
    /// The language {λ}.
    Epsilon,
    /// A single symbol.
    Sym(u32),
    /// Concatenation, in order.
    Concat(Vec<Regex>),
    /// Union (alternation).
    Union(Vec<Regex>),
    /// Kleene star.
    Star(Arc<Regex>),
}

impl Regex {
    /// Smart concatenation: flattens, drops ε factors, collapses to ∅ if
    /// any factor is ∅.
    #[must_use]
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Smart union: flattens, deduplicates, drops ∅ alternatives.
    #[must_use]
    pub fn union(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::new();
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Union(inner) => {
                    for i in inner {
                        if !out.contains(&i) {
                            out.push(i);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Union(out),
        }
    }

    /// Smart star: `∅* = ε* = ε`; `(r*)* = r*`.
    #[must_use]
    pub fn star(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            other => Regex::Star(Arc::new(other)),
        }
    }

    /// `r⁺ = r·r*` (the paper's `a⁺ = a a*`).
    #[must_use]
    pub fn plus(inner: Regex) -> Regex {
        Regex::concat([inner.clone(), Regex::star(inner)])
    }

    /// `r? = r ∪ ε`.
    #[must_use]
    pub fn opt(inner: Regex) -> Regex {
        Regex::union([inner, Regex::Epsilon])
    }

    /// Literal word `s₁ s₂ … sₖ`.
    #[must_use]
    pub fn word(symbols: impl IntoIterator<Item = u32>) -> Regex {
        Regex::concat(symbols.into_iter().map(Regex::Sym))
    }

    /// Whether the language surely contains λ (syntactic check — exact for
    /// expressions built by the smart constructors).
    #[must_use]
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(ps) => ps.iter().all(Regex::nullable),
            Regex::Union(ps) => ps.iter().any(Regex::nullable),
        }
    }

    /// The largest symbol id mentioned, if any — useful for choosing an
    /// automaton alphabet size.
    #[must_use]
    pub fn max_symbol(&self) -> Option<u32> {
        match self {
            Regex::Empty | Regex::Epsilon => None,
            Regex::Sym(s) => Some(*s),
            Regex::Concat(ps) | Regex::Union(ps) => ps.iter().filter_map(Regex::max_symbol).max(),
            Regex::Star(p) => p.max_symbol(),
        }
    }

    /// Number of AST nodes (size measure for benches).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) => 1,
            Regex::Concat(ps) | Regex::Union(ps) => 1 + ps.iter().map(Regex::size).sum::<usize>(),
            Regex::Star(p) => 1 + p.size(),
        }
    }

    /// Render with a symbol-naming function (precedence-aware).
    #[must_use]
    pub fn display_with(&self, name: &dyn Fn(u32) -> String) -> String {
        fn go(r: &Regex, name: &dyn Fn(u32) -> String, out: &mut String, prec: u8) {
            // prec: 0 = union context, 1 = concat, 2 = star operand.
            match r {
                Regex::Empty => out.push('∅'),
                Regex::Epsilon => out.push('λ'),
                Regex::Sym(s) => {
                    let _ = write!(out, "{}", name(*s));
                }
                Regex::Concat(ps) => {
                    let need = prec >= 2;
                    if need {
                        out.push('(');
                    }
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        go(p, name, out, 1);
                    }
                    if need {
                        out.push(')');
                    }
                }
                Regex::Union(ps) => {
                    let need = prec >= 1;
                    if need {
                        out.push('(');
                    }
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" | ");
                        }
                        go(p, name, out, 0);
                    }
                    if need {
                        out.push(')');
                    }
                }
                Regex::Star(p) => {
                    go(p, name, out, 2);
                    out.push('*');
                }
            }
        }
        let mut s = String::new();
        go(self, name, &mut s, 0);
        s
    }
}

impl std::fmt::Display for Regex {
    /// Default rendering with numeric symbol names `s0, s1, …`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display_with(&|s| format!("s{s}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(Regex::concat([Regex::Epsilon, Regex::Sym(1)]), Regex::Sym(1));
        assert_eq!(Regex::concat([Regex::Sym(1), Regex::Empty]), Regex::Empty);
        assert_eq!(Regex::union([Regex::Empty, Regex::Sym(1)]), Regex::Sym(1));
        assert_eq!(Regex::union([Regex::Sym(1), Regex::Sym(1)]), Regex::Sym(1));
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::star(Regex::Sym(0))), Regex::star(Regex::Sym(0)));
        // Nested flattening.
        let c = Regex::concat([Regex::concat([Regex::Sym(0), Regex::Sym(1)]), Regex::Sym(2)]);
        assert_eq!(c, Regex::Concat(vec![Regex::Sym(0), Regex::Sym(1), Regex::Sym(2)]));
    }

    #[test]
    fn nullable() {
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::Sym(0).nullable());
        assert!(Regex::star(Regex::Sym(0)).nullable());
        assert!(Regex::opt(Regex::Sym(0)).nullable());
        assert!(!Regex::plus(Regex::Sym(0)).nullable());
        assert!(Regex::concat([Regex::star(Regex::Sym(0)), Regex::Epsilon]).nullable());
    }

    #[test]
    fn display_respects_precedence() {
        let r = Regex::concat([
            Regex::Sym(0),
            Regex::star(Regex::union([Regex::Sym(1), Regex::Sym(2)])),
        ]);
        assert_eq!(r.to_string(), "s0 (s1 | s2)*");
        let r2 = Regex::star(Regex::concat([Regex::Sym(0), Regex::Sym(1)]));
        assert_eq!(r2.to_string(), "(s0 s1)*");
    }

    #[test]
    fn size_and_max_symbol() {
        let r = Regex::plus(Regex::Sym(4));
        assert_eq!(r.max_symbol(), Some(4));
        assert!(r.size() >= 3);
        assert_eq!(Regex::Epsilon.max_symbol(), None);
    }

    #[test]
    fn word_builder() {
        let w = Regex::word([1, 2, 1]);
        assert_eq!(w, Regex::Concat(vec![Regex::Sym(1), Regex::Sym(2), Regex::Sym(1)]));
        assert_eq!(Regex::word([]), Regex::Epsilon);
    }
}

//! Nondeterministic finite automata with ε-transitions.
//!
//! The migration graphs of Section 3 are essentially NFAs over the role
//! set alphabet; this module provides Thompson's construction from
//! regexes, ε-closure, membership, reversal, trimming, prefix closure
//! (the paper's `Init`), and symbol relabelling (regular sets are closed
//! under homomorphism — used for the `f_rr`-style transformations).

use crate::regex::Regex;

/// A state index.
pub type StateId = u32;

#[derive(Clone, Debug, Default)]
struct NfaState {
    /// Labelled transitions `(symbol, target)`.
    trans: Vec<(u32, StateId)>,
    /// ε-transitions.
    eps: Vec<StateId>,
    accept: bool,
}

/// An NFA with ε-transitions over the alphabet `0..num_symbols`.
#[derive(Clone, Debug)]
pub struct Nfa {
    num_symbols: u32,
    states: Vec<NfaState>,
    starts: Vec<StateId>,
}

impl Nfa {
    /// An NFA with no states (the empty language).
    #[must_use]
    pub fn empty(num_symbols: u32) -> Self {
        Nfa { num_symbols, states: Vec::new(), starts: Vec::new() }
    }

    /// Alphabet size.
    #[must_use]
    pub fn num_symbols(&self) -> u32 {
        self.num_symbols
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Total number of transitions (ε included).
    #[must_use]
    pub fn num_transitions(&self) -> usize {
        self.states.iter().map(|s| s.trans.len() + s.eps.len()).sum()
    }

    /// The start states.
    #[must_use]
    pub fn starts(&self) -> &[StateId] {
        &self.starts
    }

    /// Whether a state accepts.
    #[must_use]
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.states[q as usize].accept
    }

    /// Iterate the labelled transitions of a state.
    pub fn transitions(&self, q: StateId) -> impl Iterator<Item = (u32, StateId)> + '_ {
        self.states[q as usize].trans.iter().copied()
    }

    /// Iterate the ε-transitions of a state.
    pub fn eps_transitions(&self, q: StateId) -> impl Iterator<Item = StateId> + '_ {
        self.states[q as usize].eps.iter().copied()
    }

    // --- construction ---------------------------------------------------

    /// Add a state; returns its id.
    pub fn add_state(&mut self, accept: bool) -> StateId {
        let id = self.states.len() as StateId;
        self.states.push(NfaState { accept, ..Default::default() });
        id
    }

    /// Add a labelled transition.
    ///
    /// # Panics
    /// Panics if the symbol is outside the alphabet.
    pub fn add_transition(&mut self, from: StateId, sym: u32, to: StateId) {
        assert!(sym < self.num_symbols, "symbol {sym} outside alphabet 0..{}", self.num_symbols);
        self.states[from as usize].trans.push((sym, to));
    }

    /// Add an ε-transition.
    pub fn add_eps(&mut self, from: StateId, to: StateId) {
        self.states[from as usize].eps.push(to);
    }

    /// Mark a state as a start state.
    pub fn add_start(&mut self, q: StateId) {
        if !self.starts.contains(&q) {
            self.starts.push(q);
        }
    }

    /// Replace the start set (used by quotient constructions).
    pub fn replace_starts(&mut self, starts: &[StateId]) {
        self.starts.clear();
        for &s in starts {
            self.add_start(s);
        }
    }

    /// Set a state's acceptance.
    pub fn set_accepting(&mut self, q: StateId, accept: bool) {
        self.states[q as usize].accept = accept;
    }

    /// Thompson's construction.
    #[must_use]
    pub fn from_regex(r: &Regex, num_symbols: u32) -> Nfa {
        let mut nfa = Nfa::empty(num_symbols);
        let start = nfa.add_state(false);
        let end = nfa.add_state(true);
        nfa.add_start(start);
        nfa.thompson(r, start, end);
        nfa
    }

    fn thompson(&mut self, r: &Regex, from: StateId, to: StateId) {
        match r {
            Regex::Empty => {}
            Regex::Epsilon => self.add_eps(from, to),
            Regex::Sym(s) => self.add_transition(from, *s, to),
            Regex::Concat(ps) => {
                let mut cur = from;
                for (i, p) in ps.iter().enumerate() {
                    let next = if i + 1 == ps.len() { to } else { self.add_state(false) };
                    self.thompson(p, cur, next);
                    cur = next;
                }
                if ps.is_empty() {
                    self.add_eps(from, to);
                }
            }
            Regex::Union(ps) => {
                for p in ps {
                    self.thompson(p, from, to);
                }
            }
            Regex::Star(p) => {
                let mid = self.add_state(false);
                self.add_eps(from, mid);
                self.thompson(p, mid, mid);
                self.add_eps(mid, to);
            }
        }
    }

    // --- semantics -------------------------------------------------------

    /// ε-closure of a set of states (sorted, deduplicated).
    #[must_use]
    pub fn eps_closure(&self, set: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = Vec::with_capacity(set.len());
        for &q in set {
            if !seen[q as usize] {
                seen[q as usize] = true;
                stack.push(q);
            }
        }
        let mut out = stack.clone();
        while let Some(q) = stack.pop() {
            for &t in &self.states[q as usize].eps {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether the NFA accepts a word.
    #[must_use]
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut current = self.eps_closure(&self.starts);
        for &sym in word {
            let mut next: Vec<StateId> = Vec::new();
            for &q in &current {
                for &(s, t) in &self.states[q as usize].trans {
                    if s == sym && !next.contains(&t) {
                        next.push(t);
                    }
                }
            }
            current = self.eps_closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&q| self.states[q as usize].accept)
    }

    /// Whether the language is empty.
    #[must_use]
    pub fn is_empty_language(&self) -> bool {
        let reach = self.reachable();
        !(0..self.states.len()).any(|q| reach[q] && self.states[q].accept)
    }

    fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = self.starts.clone();
        for &q in &self.starts {
            seen[q as usize] = true;
        }
        while let Some(q) = stack.pop() {
            let st = &self.states[q as usize];
            for &(_, t) in &st.trans {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
            for &t in &st.eps {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        seen
    }

    fn co_reachable(&self) -> Vec<bool> {
        // States from which an accepting state is reachable.
        let n = self.states.len();
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for (q, st) in self.states.iter().enumerate() {
            for &(_, t) in &st.trans {
                rev[t as usize].push(q as StateId);
            }
            for &t in &st.eps {
                rev[t as usize].push(q as StateId);
            }
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<StateId> =
            (0..n).filter(|&q| self.states[q].accept).map(|q| q as StateId).collect();
        for &q in &stack {
            seen[q as usize] = true;
        }
        while let Some(q) = stack.pop() {
            for &p in &rev[q as usize] {
                if !seen[p as usize] {
                    seen[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        seen
    }

    /// Remove states that are unreachable or cannot reach acceptance.
    #[must_use]
    pub fn trim(&self) -> Nfa {
        let reach = self.reachable();
        let co = self.co_reachable();
        let keep: Vec<bool> = (0..self.states.len()).map(|q| reach[q] && co[q]).collect();
        let mut map = vec![u32::MAX; self.states.len()];
        let mut out = Nfa::empty(self.num_symbols);
        for (q, &k) in keep.iter().enumerate() {
            if k {
                map[q] = out.add_state(self.states[q].accept);
            }
        }
        for (q, &k) in keep.iter().enumerate() {
            if !k {
                continue;
            }
            for &(s, t) in &self.states[q].trans {
                if keep[t as usize] {
                    out.add_transition(map[q], s, map[t as usize]);
                }
            }
            for &t in &self.states[q].eps {
                if keep[t as usize] {
                    out.add_eps(map[q], map[t as usize]);
                }
            }
        }
        for &q in &self.starts {
            if keep[q as usize] {
                out.add_start(map[q as usize]);
            }
        }
        out
    }

    /// The prefix closure `Init(L) = {x | ∃y, xy ∈ L}` (Section 3): mark
    /// every state that can reach acceptance as accepting.
    #[must_use]
    pub fn prefix_closure(&self) -> Nfa {
        let co = self.co_reachable();
        let mut out = self.clone();
        for (q, &c) in co.iter().enumerate() {
            if c {
                out.states[q].accept = true;
            }
        }
        out
    }

    /// Apply a symbol homomorphism `h : Σ → Σ′` (image automaton — regular
    /// sets are closed under homomorphism).
    #[must_use]
    pub fn relabel(&self, num_symbols: u32, h: &dyn Fn(u32) -> u32) -> Nfa {
        let mut out = Nfa::empty(num_symbols);
        for st in &self.states {
            out.states.push(NfaState {
                trans: st.trans.iter().map(|&(s, t)| (h(s), t)).collect(),
                eps: st.eps.clone(),
                accept: st.accept,
            });
        }
        for st in &out.states {
            for &(s, _) in &st.trans {
                assert!(s < num_symbols, "homomorphism target outside alphabet");
            }
        }
        out.starts = self.starts.clone();
        out
    }

    /// The reversed automaton (recognizing the mirror language).
    #[must_use]
    pub fn reverse(&self) -> Nfa {
        let n = self.states.len();
        let mut out = Nfa::empty(self.num_symbols);
        for q in 0..n {
            out.add_state(self.starts.contains(&(q as StateId)));
        }
        for (q, st) in self.states.iter().enumerate() {
            for &(s, t) in &st.trans {
                out.add_transition(t, s, q as StateId);
            }
            for &t in &st.eps {
                out.add_eps(t, q as StateId);
            }
            if st.accept {
                out.add_start(q as StateId);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(parts: Regex) -> Nfa {
        Nfa::from_regex(&parts, 3)
    }

    #[test]
    fn thompson_basic() {
        let n = re(Regex::word([0, 1]));
        assert!(n.accepts(&[0, 1]));
        assert!(!n.accepts(&[0]));
        assert!(!n.accepts(&[1, 0]));
        assert!(!n.accepts(&[]));
    }

    #[test]
    fn thompson_star_union() {
        // (0 | 1)* 2
        let r = Regex::concat([
            Regex::star(Regex::union([Regex::Sym(0), Regex::Sym(1)])),
            Regex::Sym(2),
        ]);
        let n = re(r);
        assert!(n.accepts(&[2]));
        assert!(n.accepts(&[0, 1, 0, 2]));
        assert!(!n.accepts(&[0, 1]));
        assert!(!n.accepts(&[2, 0]));
    }

    #[test]
    fn empty_and_epsilon() {
        let n = re(Regex::Empty);
        assert!(!n.accepts(&[]));
        assert!(n.is_empty_language());
        let n = re(Regex::Epsilon);
        assert!(n.accepts(&[]));
        assert!(!n.accepts(&[0]));
        assert!(!n.is_empty_language());
    }

    #[test]
    fn prefix_closure_is_init() {
        // L = {012}; Init(L) = {λ, 0, 01, 012}.
        let n = re(Regex::word([0, 1, 2])).prefix_closure();
        for w in [&[][..], &[0], &[0, 1], &[0, 1, 2]] {
            assert!(n.accepts(w), "{w:?} should be a prefix");
        }
        assert!(!n.accepts(&[1]));
        assert!(!n.accepts(&[0, 1, 2, 0]));
    }

    #[test]
    fn trim_removes_dead_states() {
        let mut n = Nfa::empty(2);
        let s = n.add_state(false);
        let a = n.add_state(true);
        let dead = n.add_state(false); // unreachable-from AND not co-reachable
        n.add_start(s);
        n.add_transition(s, 0, a);
        n.add_transition(a, 1, dead);
        let t = n.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&[0]));
        assert!(!t.accepts(&[0, 1]));
    }

    #[test]
    fn relabel_applies_homomorphism() {
        let n = re(Regex::word([0, 1])); // "01"
        let h = n.relabel(2, &|s| if s == 0 { 1 } else { 0 });
        assert!(h.accepts(&[1, 0]));
        assert!(!h.accepts(&[0, 1]));
    }

    #[test]
    fn reverse_mirrors() {
        let n = re(Regex::word([0, 1, 2]));
        let r = n.reverse();
        assert!(r.accepts(&[2, 1, 0]));
        assert!(!r.accepts(&[0, 1, 2]));
    }

    #[test]
    fn plus_and_opt_via_smart_constructors() {
        let n = re(Regex::plus(Regex::Sym(1)));
        assert!(!n.accepts(&[]));
        assert!(n.accepts(&[1]));
        assert!(n.accepts(&[1, 1, 1]));
        let n = re(Regex::opt(Regex::Sym(1)));
        assert!(n.accepts(&[]));
        assert!(n.accepts(&[1]));
        assert!(!n.accepts(&[1, 1]));
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn alphabet_bound_enforced() {
        let mut n = Nfa::empty(1);
        let s = n.add_state(false);
        n.add_transition(s, 5, s);
    }
}

//! Images of regular languages under the paper's word functions
//! `f_rr` (remove repeats) and `f_rei` (remove empty initial).
//!
//! Section 3 defines, for a language of migration patterns `L`:
//!
//! * `L^rr = f_rr(L)` — collapse runs of identical role sets to a single
//!   occurrence (focus on role *changes*);
//! * `f_rei(L)` — drop the leading run of ∅ symbols (focus on the life
//!   after creation; `𝓛ᵢₘₘ(Σ) = f_rei(𝓛(Σ))`).
//!
//! Both are rational functions, so the image of a regular set is regular;
//! the constructions below build image NFAs directly.

use crate::nfa::{Nfa, StateId};

/// Apply `f_rr` to a word: collapse each maximal run of equal symbols.
#[must_use]
pub fn f_rr_word(w: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(w.len());
    for &s in w {
        if out.last() != Some(&s) {
            out.push(s);
        }
    }
    out
}

/// Apply `f_rei` to a word: remove the maximal prefix of `empty_sym`s.
#[must_use]
pub fn f_rei_word(w: &[u32], empty_sym: u32) -> Vec<u32> {
    let k = w.iter().take_while(|&&s| s == empty_sym).count();
    w[k..].to_vec()
}

/// The image NFA for `f_rr(L(a))`.
///
/// States are pairs `(q, last)` where `last` is the symbol most recently
/// *emitted* (`None` initially). Reading `x ≠ last` simulates emitting `x`;
/// a *silent* (ε) move simulates the input word containing an additional
/// repeat of `last` that `f_rr` deletes. A word `v` is accepted iff `v` is
/// repeat-free and some `w` with `f_rr(w) = v` is accepted by `a`.
#[must_use]
pub fn f_rr_image(a: &Nfa) -> Nfa {
    let ns = a.num_symbols();
    let n = a.num_states() as u32;
    // State encoding: (q, last) → q * (ns+1) + (last+1 or 0).
    let enc =
        |q: StateId, last: Option<u32>| -> StateId { q * (ns + 1) + last.map_or(0, |l| l + 1) };
    let mut out = Nfa::empty(ns);
    for q in 0..n {
        for _last in 0..=ns {
            out.add_state(a.is_accepting(q));
        }
    }
    for q in 0..n {
        // ε-transitions of `a` preserve `last`.
        for t in a.eps_transitions(q) {
            for last in 0..=ns {
                let l = if last == 0 { None } else { Some(last - 1) };
                out.add_eps(enc(q, l), enc(t, l));
            }
        }
        for (s, t) in a.transitions(q) {
            for last in 0..=ns {
                let l = if last == 0 { None } else { Some(last - 1) };
                if l == Some(s) {
                    // Input repeats `s`: deleted by f_rr — silent move.
                    out.add_eps(enc(q, l), enc(t, l));
                } else {
                    // Emit s.
                    out.add_transition(enc(q, l), s, enc(t, Some(s)));
                }
            }
        }
    }
    for &s in a.starts() {
        out.add_start(enc(s, None));
    }
    out.trim()
}

/// The image NFA for `f_rei(L(a))` with respect to `empty_sym`.
///
/// Two phases: in phase 0 (still inside the leading ∅-run) reading
/// `empty_sym` in the input is silent; the first non-∅ symbol switches to
/// phase 1, where everything is read verbatim.
#[must_use]
pub fn f_rei_image(a: &Nfa, empty_sym: u32) -> Nfa {
    let ns = a.num_symbols();
    let n = a.num_states() as u32;
    let enc = |q: StateId, phase: u32| -> StateId { q * 2 + phase };
    let mut out = Nfa::empty(ns);
    for q in 0..n {
        for _phase in 0..2 {
            out.add_state(a.is_accepting(q));
        }
    }
    for q in 0..n {
        for t in a.eps_transitions(q) {
            out.add_eps(enc(q, 0), enc(t, 0));
            out.add_eps(enc(q, 1), enc(t, 1));
        }
        for (s, t) in a.transitions(q) {
            if s == empty_sym {
                // Leading ∅: silently swallowed in phase 0.
                out.add_eps(enc(q, 0), enc(t, 0));
            } else {
                // First non-∅ symbol: phase switch.
                out.add_transition(enc(q, 0), s, enc(t, 1));
            }
            out.add_transition(enc(q, 1), s, enc(t, 1));
        }
    }
    for &s in a.starts() {
        out.add_start(enc(s, 0));
    }
    out.trim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::Dfa;
    use crate::regex::Regex;

    fn nfa(r: Regex) -> Nfa {
        Nfa::from_regex(&r, 3)
    }

    #[test]
    fn word_functions() {
        assert_eq!(f_rr_word(&[0, 0, 1, 1, 1, 0]), vec![0, 1, 0]);
        assert_eq!(f_rr_word(&[]), Vec::<u32>::new());
        assert_eq!(f_rr_word(&[2]), vec![2]);
        assert_eq!(f_rei_word(&[0, 0, 1, 0], 0), vec![1, 0]);
        assert_eq!(f_rei_word(&[0, 0], 0), Vec::<u32>::new());
        assert_eq!(f_rei_word(&[1, 0], 0), vec![1, 0]);
    }

    #[test]
    fn f_rr_image_of_repeats() {
        // L = 0 0* 1 1* ⇒ f_rr(L) = {01}.
        let l = nfa(Regex::concat([Regex::plus(Regex::Sym(0)), Regex::plus(Regex::Sym(1))]));
        let img = f_rr_image(&l);
        assert!(img.accepts(&[0, 1]));
        assert!(!img.accepts(&[0, 0, 1]), "image contains only repeat-free words");
        assert!(!img.accepts(&[0]));
        assert!(!img.accepts(&[1, 0]));
    }

    #[test]
    fn f_rr_image_exhaustive_check() {
        // Compare the image automaton with the direct image of enumerated
        // words, for L = (0|1)(0|1)(0|1).
        let sym01 = Regex::union([Regex::Sym(0), Regex::Sym(1)]);
        let l = nfa(Regex::concat([sym01.clone(), sym01.clone(), sym01]));
        let img = f_rr_image(&l);
        let dl = Dfa::from_nfa(&l);
        let expected: std::collections::BTreeSet<Vec<u32>> =
            dl.enumerate(5, 1000).iter().map(|w| f_rr_word(w)).collect();
        let got: std::collections::BTreeSet<Vec<u32>> =
            Dfa::from_nfa(&img).enumerate(5, 1000).into_iter().collect();
        assert_eq!(expected, got);
    }

    #[test]
    fn f_rei_image_strips_leading_empty() {
        // L = 0*12 with ∅ = 0 ⇒ image = {12}.
        let l = nfa(Regex::concat([Regex::star(Regex::Sym(0)), Regex::word([1, 2])]));
        let img = f_rei_image(&l, 0);
        assert!(img.accepts(&[1, 2]));
        assert!(!img.accepts(&[0, 1, 2]));
        assert!(!img.accepts(&[2]));
    }

    #[test]
    fn f_rei_keeps_internal_empties() {
        // L = 0 1 0 2 with ∅ = 0 ⇒ image = {1 0 2}.
        let l = nfa(Regex::word([0, 1, 0, 2]));
        let img = f_rei_image(&l, 0);
        assert!(img.accepts(&[1, 0, 2]));
        assert!(!img.accepts(&[1, 2]));
    }

    #[test]
    fn f_rei_lambda_case() {
        // L = 0* ⇒ image = {λ}.
        let l = nfa(Regex::star(Regex::Sym(0)));
        let img = f_rei_image(&l, 0);
        assert!(img.accepts(&[]));
        assert!(!img.accepts(&[0]));
        assert!(!img.accepts(&[1]));
    }

    #[test]
    fn rr_and_rei_commute_on_images() {
        // Paper (Section 3): f_rr and f_rei commute. Check on an example
        // language: L = 0 0 1 1 0* with ∅ = 0.
        let l = nfa(Regex::concat([Regex::word([0, 0, 1, 1]), Regex::star(Regex::Sym(0))]));
        let a = Dfa::from_nfa(&f_rr_image(&f_rei_image(&l, 0)));
        let b = Dfa::from_nfa(&f_rei_image(&f_rr_image(&l), 0));
        assert!(a.equivalent(&b));
    }
}

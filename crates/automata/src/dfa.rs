//! Deterministic finite automata: subset construction, Hopcroft
//! minimization, Boolean combinations and the decision procedures
//! (emptiness, inclusion, equivalence) that make Corollary 3.3 effective.

use crate::nfa::{Nfa, StateId};
use std::collections::HashMap;

/// A *complete* DFA over the alphabet `0..num_symbols`: every state has
/// exactly one successor per symbol (a sink state is materialized when
/// needed).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dfa {
    num_symbols: u32,
    /// Row-major transition table: `trans[q * num_symbols + s]`.
    trans: Vec<u32>,
    accept: Vec<bool>,
    start: u32,
}

impl Dfa {
    /// Alphabet size.
    #[must_use]
    pub fn num_symbols(&self) -> u32 {
        self.num_symbols
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.accept.len()
    }

    /// The start state.
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// The successor of `q` on `sym`.
    #[must_use]
    pub fn step(&self, q: u32, sym: u32) -> u32 {
        self.trans[q as usize * self.num_symbols as usize + sym as usize]
    }

    /// Whether `q` accepts.
    #[must_use]
    pub fn is_accepting(&self, q: u32) -> bool {
        self.accept[q as usize]
    }

    /// The DFA accepting the empty language.
    #[must_use]
    pub fn empty_language(num_symbols: u32) -> Dfa {
        Dfa { num_symbols, trans: vec![0; num_symbols as usize], accept: vec![false], start: 0 }
    }

    /// The DFA accepting every word.
    #[must_use]
    pub fn universal(num_symbols: u32) -> Dfa {
        Dfa { num_symbols, trans: vec![0; num_symbols as usize], accept: vec![true], start: 0 }
    }

    /// Subset construction (ε-closures handled).
    #[must_use]
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let ns = nfa.num_symbols();
        let mut ids: HashMap<Vec<StateId>, u32> = HashMap::new();
        let mut subsets: Vec<Vec<StateId>> = Vec::new();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();

        let start_set = nfa.eps_closure(nfa.starts());
        ids.insert(start_set.clone(), 0);
        subsets.push(start_set);
        let mut next_unprocessed = 0usize;
        while next_unprocessed < subsets.len() {
            let set = subsets[next_unprocessed].clone();
            next_unprocessed += 1;
            accept.push(set.iter().any(|&q| nfa.is_accepting(q)));
            for sym in 0..ns {
                let mut moved: Vec<StateId> = Vec::new();
                for &q in &set {
                    for (s, t) in nfa.transitions(q) {
                        if s == sym && !moved.contains(&t) {
                            moved.push(t);
                        }
                    }
                }
                let closed = nfa.eps_closure(&moved);
                let id = match ids.get(&closed) {
                    Some(&id) => id,
                    None => {
                        let id = subsets.len() as u32;
                        ids.insert(closed.clone(), id);
                        subsets.push(closed);
                        id
                    }
                };
                trans.push(id);
            }
        }
        Dfa { num_symbols: ns, trans, accept, start: 0 }
    }

    /// Build directly from parts (used by product constructions).
    #[must_use]
    pub fn from_parts(num_symbols: u32, trans: Vec<u32>, accept: Vec<bool>, start: u32) -> Dfa {
        debug_assert_eq!(trans.len(), accept.len() * num_symbols as usize);
        Dfa { num_symbols, trans, accept, start }
    }

    /// Run the DFA on a word.
    #[must_use]
    pub fn accepts(&self, word: &[u32]) -> bool {
        let mut q = self.start;
        for &s in word {
            q = self.step(q, s);
        }
        self.accept[q as usize]
    }

    /// Whether the language is empty.
    #[must_use]
    pub fn is_empty_language(&self) -> bool {
        let mut seen = vec![false; self.num_states()];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(q) = stack.pop() {
            if self.accept[q as usize] {
                return false;
            }
            for s in 0..self.num_symbols {
                let t = self.step(q, s);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// Complement (flip acceptance — the DFA is complete).
    #[must_use]
    pub fn complement(&self) -> Dfa {
        Dfa {
            num_symbols: self.num_symbols,
            trans: self.trans.clone(),
            accept: self.accept.iter().map(|&a| !a).collect(),
            start: self.start,
        }
    }

    /// Product construction with a Boolean combiner.
    #[must_use]
    pub fn product(&self, other: &Dfa, combine: &dyn Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(self.num_symbols, other.num_symbols, "product requires identical alphabets");
        let ns = self.num_symbols;
        let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
        let mut order: Vec<(u32, u32)> = Vec::new();
        let mut trans: Vec<u32> = Vec::new();
        let mut accept: Vec<bool> = Vec::new();
        let start = (self.start, other.start);
        ids.insert(start, 0);
        order.push(start);
        let mut i = 0usize;
        while i < order.len() {
            let (a, b) = order[i];
            i += 1;
            accept.push(combine(self.accept[a as usize], other.accept[b as usize]));
            for s in 0..ns {
                let pair = (self.step(a, s), other.step(b, s));
                let id = match ids.get(&pair) {
                    Some(&id) => id,
                    None => {
                        let id = order.len() as u32;
                        ids.insert(pair, id);
                        order.push(pair);
                        id
                    }
                };
                trans.push(id);
            }
        }
        Dfa { num_symbols: ns, trans, accept, start: 0 }
    }

    /// Intersection.
    #[must_use]
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, &|a, b| a && b)
    }

    /// Union.
    #[must_use]
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, &|a, b| a || b)
    }

    /// Difference `L(self) − L(other)`.
    #[must_use]
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, &|a, b| a && !b)
    }

    /// Language inclusion `L(self) ⊆ L(other)` — the decision procedure
    /// behind "Σ *satisfies* an inventory" (Corollary 3.3).
    #[must_use]
    pub fn is_subset_of(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty_language()
    }

    /// Language equivalence.
    #[must_use]
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.is_subset_of(other) && other.is_subset_of(self)
    }

    /// A word in `L(self) − L(other)`, if any (diagnostic counterexample).
    #[must_use]
    pub fn witness_not_subset(&self, other: &Dfa) -> Option<Vec<u32>> {
        self.difference(other).shortest_accepted()
    }

    /// A shortest accepted word, if the language is non-empty (BFS).
    #[must_use]
    pub fn shortest_accepted(&self) -> Option<Vec<u32>> {
        let n = self.num_states();
        let mut prev: Vec<Option<(u32, u32)>> = vec![None; n]; // (pred state, symbol)
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(self.start);
        seen[self.start as usize] = true;
        let mut goal = None;
        if self.accept[self.start as usize] {
            goal = Some(self.start);
        }
        'bfs: while let Some(q) = queue.pop_front() {
            if goal.is_some() {
                break;
            }
            for s in 0..self.num_symbols {
                let t = self.step(q, s);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    prev[t as usize] = Some((q, s));
                    if self.accept[t as usize] {
                        goal = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut q = goal?;
        let mut word = Vec::new();
        while let Some((p, s)) = prev[q as usize] {
            word.push(s);
            q = p;
        }
        word.reverse();
        Some(word)
    }

    /// Remove unreachable states (keeps completeness).
    #[must_use]
    pub fn trim_unreachable(&self) -> Dfa {
        let n = self.num_states();
        let mut seen = vec![false; n];
        let mut stack = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(q) = stack.pop() {
            for s in 0..self.num_symbols {
                let t = self.step(q, s);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        let mut map = vec![u32::MAX; n];
        let mut count = 0u32;
        for (q, &k) in seen.iter().enumerate() {
            if k {
                map[q] = count;
                count += 1;
            }
        }
        let mut trans = vec![0u32; count as usize * self.num_symbols as usize];
        let mut accept = vec![false; count as usize];
        for (q, &k) in seen.iter().enumerate() {
            if !k {
                continue;
            }
            let nq = map[q];
            accept[nq as usize] = self.accept[q];
            for s in 0..self.num_symbols {
                trans[nq as usize * self.num_symbols as usize + s as usize] =
                    map[self.step(q as u32, s) as usize];
            }
        }
        Dfa { num_symbols: self.num_symbols, trans, accept, start: map[self.start as usize] }
    }

    /// Hopcroft's minimization. The result is the canonical minimal
    /// complete DFA (up to state numbering, which is made canonical by a
    /// BFS renumbering so that `minimize` output is structurally
    /// comparable).
    #[must_use]
    pub fn minimize(&self) -> Dfa {
        let dfa = self.trim_unreachable();
        let n = dfa.num_states();
        let ns = dfa.num_symbols as usize;
        if n == 0 {
            return dfa;
        }

        // Inverse transition lists per symbol.
        let mut inv: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]; ns];
        for q in 0..n {
            for (s, inv_s) in inv.iter_mut().enumerate() {
                let t = dfa.trans[q * ns + s] as usize;
                inv_s[t].push(q as u32);
            }
        }

        // Partition refinement.
        let mut block_of: Vec<u32> = dfa.accept.iter().map(|&a| u32::from(a)).collect();
        let mut blocks: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
        for (q, &b) in block_of.iter().enumerate() {
            blocks[b as usize].push(q as u32);
        }
        // Drop an empty initial block if all states agree on acceptance.
        if blocks[1].is_empty() {
            blocks.pop();
        } else if blocks[0].is_empty() {
            blocks.swap_remove(0);
            block_of.fill(0);
        }

        let mut worklist: Vec<(u32, u32)> = Vec::new();
        let smaller = if blocks.len() == 2 && blocks[1].len() < blocks[0].len() { 1 } else { 0 };
        for s in 0..ns as u32 {
            worklist.push((smaller, s));
            if blocks.len() == 2 {
                // Hopcroft needs only the smaller block enqueued, but
                // enqueueing both is still O(n·σ·log n)-ish and simpler to
                // reason about for the modest sizes we handle.
                worklist.push((1 - smaller, s));
            }
        }

        while let Some((b, s)) = worklist.pop() {
            // X = preimage of block b under symbol s.
            let mut preimage: Vec<u32> = Vec::new();
            for &q in &blocks[b as usize] {
                preimage.extend(inv[s as usize][q as usize].iter().copied());
            }
            if preimage.is_empty() {
                continue;
            }
            // Group the preimage by current block; split blocks.
            let mut touched: HashMap<u32, Vec<u32>> = HashMap::new();
            for q in preimage {
                touched.entry(block_of[q as usize]).or_default().push(q);
            }
            for (blk, hits) in touched {
                let blk_size = blocks[blk as usize].len();
                if hits.len() == blk_size {
                    continue; // no split
                }
                // Split blk into hits / rest.
                let new_id = blocks.len() as u32;
                let mut in_hits = vec![false; n];
                for &q in &hits {
                    in_hits[q as usize] = true;
                }
                let old: Vec<u32> = std::mem::take(&mut blocks[blk as usize]);
                let (hit_part, rest): (Vec<u32>, Vec<u32>) =
                    old.into_iter().partition(|&q| in_hits[q as usize]);
                let (small, large) =
                    if hit_part.len() <= rest.len() { (hit_part, rest) } else { (rest, hit_part) };
                // Keep the large part under the old id, small under new.
                for &q in &small {
                    block_of[q as usize] = new_id;
                }
                blocks[blk as usize] = large;
                blocks.push(small);
                for s2 in 0..ns as u32 {
                    worklist.push((new_id, s2));
                }
            }
        }

        // Build the quotient automaton, renumbered canonically by BFS.
        let num_blocks = blocks.len();
        let mut q_trans = vec![0u32; num_blocks * ns];
        let mut q_accept = vec![false; num_blocks];
        for (bi, members) in blocks.iter().enumerate() {
            let rep = members[0] as usize;
            q_accept[bi] = dfa.accept[rep];
            for s in 0..ns {
                q_trans[bi * ns + s] = block_of[dfa.trans[rep * ns + s] as usize];
            }
        }
        let quotient = Dfa {
            num_symbols: dfa.num_symbols,
            trans: q_trans,
            accept: q_accept,
            start: block_of[dfa.start as usize],
        };
        quotient.canonical_renumber()
    }

    /// Renumber states in BFS order from the start (canonical form for
    /// structural comparison of minimal DFAs).
    #[must_use]
    fn canonical_renumber(&self) -> Dfa {
        let n = self.num_states();
        let ns = self.num_symbols as usize;
        let mut map = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);
        map[self.start as usize] = 0;
        order.push(self.start);
        let mut i = 0;
        while i < order.len() {
            let q = order[i];
            i += 1;
            for s in 0..ns {
                let t = self.trans[q as usize * ns + s];
                if map[t as usize] == u32::MAX {
                    map[t as usize] = order.len() as u32;
                    order.push(t);
                }
            }
        }
        // Unreachable states were already trimmed.
        let mut trans = vec![0u32; order.len() * ns];
        let mut accept = vec![false; order.len()];
        for (new_q, &old_q) in order.iter().enumerate() {
            accept[new_q] = self.accept[old_q as usize];
            for s in 0..ns {
                trans[new_q * ns + s] = map[self.trans[old_q as usize * ns + s] as usize];
            }
        }
        Dfa { num_symbols: self.num_symbols, trans, accept, start: 0 }
    }

    /// Number of accepted words of each length `0..=max_len`
    /// (saturating `u64` counts) — used by equivalence diagnostics and the
    /// benchmark harness.
    #[must_use]
    pub fn count_words(&self, max_len: usize) -> Vec<u64> {
        let n = self.num_states();
        let mut cur = vec![0u64; n];
        cur[self.start as usize] = 1;
        let mut out = Vec::with_capacity(max_len + 1);
        for _ in 0..=max_len {
            out.push(
                cur.iter()
                    .zip(&self.accept)
                    .filter(|(_, &a)| a)
                    .map(|(c, _)| *c)
                    .fold(0u64, u64::saturating_add),
            );
            let mut next = vec![0u64; n];
            for (q, &c) in cur.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                for s in 0..self.num_symbols {
                    let t = self.step(q as u32, s) as usize;
                    next[t] = next[t].saturating_add(c);
                }
            }
            cur = next;
        }
        out
    }

    /// Enumerate accepted words in shortlex order, up to `max_len`, at most
    /// `limit` words.
    #[must_use]
    pub fn enumerate(&self, max_len: usize, limit: usize) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        let mut layer: Vec<(u32, Vec<u32>)> = vec![(self.start, Vec::new())];
        // Prune via co-reachability to avoid wandering in dead regions.
        let live = self.live_states();
        for len in 0..=max_len {
            for (q, w) in &layer {
                if self.accept[*q as usize] {
                    out.push(w.clone());
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
            if len == max_len {
                break;
            }
            let mut next = Vec::new();
            for (q, w) in layer {
                for s in 0..self.num_symbols {
                    let t = self.step(q, s);
                    if live[t as usize] {
                        let mut w2 = w.clone();
                        w2.push(s);
                        next.push((t, w2));
                    }
                }
            }
            layer = next;
        }
        out
    }

    /// States from which acceptance is reachable.
    #[must_use]
    pub fn live_states(&self) -> Vec<bool> {
        let n = self.num_states();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for q in 0..n {
            for s in 0..self.num_symbols {
                rev[self.step(q as u32, s) as usize].push(q as u32);
            }
        }
        let mut live = self.accept.clone();
        let mut stack: Vec<u32> = (0..n).filter(|&q| live[q]).map(|q| q as u32).collect();
        while let Some(q) = stack.pop() {
            for &p in &rev[q as usize] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        live
    }

    /// Convert to an NFA (for further closure operations).
    #[must_use]
    pub fn to_nfa(&self) -> Nfa {
        let mut nfa = Nfa::empty(self.num_symbols);
        for q in 0..self.num_states() {
            nfa.add_state(self.accept[q]);
        }
        for q in 0..self.num_states() as u32 {
            for s in 0..self.num_symbols {
                nfa.add_transition(q, s, self.step(q, s));
            }
        }
        nfa.add_start(self.start);
        nfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn dfa(r: Regex, ns: u32) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(&r, ns))
    }

    #[test]
    fn subset_construction_accepts_same_language() {
        let r = Regex::concat([
            Regex::star(Regex::union([Regex::Sym(0), Regex::Sym(1)])),
            Regex::Sym(2),
        ]);
        let n = Nfa::from_regex(&r, 3);
        let d = Dfa::from_nfa(&n);
        for w in [&[2][..], &[0, 2], &[1, 0, 1, 2], &[0], &[], &[2, 2]] {
            assert_eq!(n.accepts(w), d.accepts(w), "word {w:?}");
        }
    }

    #[test]
    fn boolean_combinations() {
        let a = dfa(Regex::star(Regex::Sym(0)), 2); // 0*
        let b = dfa(Regex::star(Regex::union([Regex::Sym(0), Regex::Sym(1)])), 2); // (0|1)*
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(b.witness_not_subset(&a), Some(vec![1]));
        assert!(a.intersect(&b).equivalent(&a));
        assert!(a.union(&b).equivalent(&b));
        let diff = b.difference(&a);
        assert!(!diff.accepts(&[0]));
        assert!(diff.accepts(&[1]));
        assert!(diff.accepts(&[0, 1, 0]));
    }

    #[test]
    fn complement_roundtrip() {
        let a = dfa(Regex::word([0, 1]), 2);
        let c = a.complement();
        assert!(!c.accepts(&[0, 1]));
        assert!(c.accepts(&[]));
        assert!(c.accepts(&[1, 0]));
        assert!(c.complement().equivalent(&a));
    }

    #[test]
    fn minimize_collapses_equivalent_states() {
        // (0|1)(0|1) — even-odd structure: minimal DFA has 4 states
        // (start, after-1, accept, sink... actually: q0 →{0,1} q1 →{0,1} q2(acc) →{0,1} sink).
        let r = Regex::concat([
            Regex::union([Regex::Sym(0), Regex::Sym(1)]),
            Regex::union([Regex::Sym(0), Regex::Sym(1)]),
        ]);
        let d = dfa(r, 2);
        let m = d.minimize();
        assert!(m.equivalent(&d));
        assert_eq!(m.num_states(), 4);
    }

    #[test]
    fn minimize_is_canonical() {
        // Two different expressions for the same language minimize to the
        // same structure.
        let a = dfa(Regex::star(Regex::Sym(0)), 2).minimize();
        let b = dfa(Regex::union([Regex::Epsilon, Regex::plus(Regex::Sym(0))]), 2).minimize();
        assert_eq!(a, b, "canonical minimal DFAs should be identical");
    }

    #[test]
    fn empty_and_universal() {
        let e = Dfa::empty_language(3);
        assert!(e.is_empty_language());
        assert!(e.shortest_accepted().is_none());
        let u = Dfa::universal(3);
        assert!(u.accepts(&[]));
        assert!(u.accepts(&[0, 1, 2]));
        assert!(e.is_subset_of(&u));
        assert!(e.complement().equivalent(&u));
    }

    #[test]
    fn count_words_fibonacci_language() {
        // Words over {0,1} without consecutive 1s: counts follow Fibonacci.
        // L = (0 | 10)* (1 | λ)
        let r = Regex::concat([
            Regex::star(Regex::union([Regex::Sym(0), Regex::word([1, 0])])),
            Regex::opt(Regex::Sym(1)),
        ]);
        let d = dfa(r, 2).minimize();
        let counts = d.count_words(8);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[2], 3);
        assert_eq!(counts[3], 5);
        assert_eq!(counts[4], 8);
        assert_eq!(counts[8], 55);
    }

    #[test]
    fn enumerate_shortlex() {
        let d = dfa(Regex::star(Regex::Sym(1)), 2);
        let ws = d.enumerate(3, 10);
        assert_eq!(ws, vec![vec![], vec![1], vec![1, 1], vec![1, 1, 1]]);
        // Limit respected.
        let ws = d.enumerate(10, 2);
        assert_eq!(ws.len(), 2);
    }

    #[test]
    fn shortest_accepted_is_shortest() {
        let d = dfa(Regex::union([Regex::word([0, 0, 0]), Regex::word([1, 1])]), 2);
        assert_eq!(d.shortest_accepted(), Some(vec![1, 1]));
    }

    #[test]
    fn dfa_to_nfa_roundtrip() {
        let d = dfa(Regex::plus(Regex::Sym(0)), 2);
        let n = d.to_nfa();
        let d2 = Dfa::from_nfa(&n);
        assert!(d.equivalent(&d2));
    }

    #[test]
    fn minimize_handles_all_accepting_and_all_rejecting() {
        let u = Dfa::universal(2).minimize();
        assert_eq!(u.num_states(), 1);
        let e = Dfa::empty_language(2).minimize();
        assert_eq!(e.num_states(), 1);
        assert!(!e.accept[0] && u.accept[0]);
    }
}

//! Algebraic laws of the regular-language toolkit, property-tested over
//! random regular expressions. These are the closure properties the
//! paper's proofs lean on ("the family of regular sets is closed under
//! homomorphism", effective inclusion tests, etc.) — each law is checked
//! both at the automaton level (language equivalence) and against raw
//! word membership.

use migratory_automata::{dfa_to_regex, nfa_witness_not_subset, Dfa, Nfa, Regex};
use proptest::prelude::*;

const SYMS: u32 = 3;

fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf =
        prop_oneof![Just(Regex::Epsilon), Just(Regex::Empty), (0u32..SYMS).prop_map(Regex::Sym),];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::union),
            inner.prop_map(Regex::star),
        ]
    })
}

fn word_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..SYMS, 0..7)
}

fn dfa(r: &Regex) -> Dfa {
    Dfa::from_nfa(&Nfa::from_regex(r, SYMS))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn minimization_preserves_language(r in regex_strategy(), w in word_strategy()) {
        let d = dfa(&r);
        let m = d.minimize();
        prop_assert!(d.equivalent(&m));
        prop_assert_eq!(d.accepts(&w), m.accepts(&w));
        prop_assert!(m.num_states() <= d.num_states());
    }

    #[test]
    fn complement_is_an_involution(r in regex_strategy(), w in word_strategy()) {
        let d = dfa(&r);
        let cc = d.complement().complement();
        prop_assert!(d.equivalent(&cc));
        prop_assert_eq!(d.accepts(&w), !d.complement().accepts(&w));
    }

    #[test]
    fn de_morgan(a in regex_strategy(), b in regex_strategy()) {
        let (da, db) = (dfa(&a), dfa(&b));
        let left = da.union(&db).complement();
        let right = da.complement().intersect(&db.complement());
        prop_assert!(left.equivalent(&right));
    }

    #[test]
    fn boolean_ops_match_membership(
        a in regex_strategy(),
        b in regex_strategy(),
        w in word_strategy(),
    ) {
        let (da, db) = (dfa(&a), dfa(&b));
        let (x, y) = (da.accepts(&w), db.accepts(&w));
        prop_assert_eq!(da.union(&db).accepts(&w), x || y);
        prop_assert_eq!(da.intersect(&db).accepts(&w), x && y);
        prop_assert_eq!(da.difference(&db).accepts(&w), x && !y);
    }

    #[test]
    fn subset_laws(a in regex_strategy(), b in regex_strategy()) {
        let (da, db) = (dfa(&a), dfa(&b));
        prop_assert!(da.intersect(&db).is_subset_of(&da));
        prop_assert!(da.is_subset_of(&da.union(&db)));
        // Witnesses are sound.
        if let Some(w) = da.witness_not_subset(&db) {
            prop_assert!(da.accepts(&w) && !db.accepts(&w));
        }
    }

    #[test]
    fn on_the_fly_inclusion_agrees(a in regex_strategy(), b in regex_strategy()) {
        let na = Nfa::from_regex(&a, SYMS);
        let db = dfa(&b);
        let fly = nfa_witness_not_subset(&na, &db).expect("same alphabet");
        let heavy = Dfa::from_nfa(&na).witness_not_subset(&db);
        prop_assert_eq!(fly.is_none(), heavy.is_none());
        if let Some(w) = fly {
            prop_assert!(na.accepts(&w) && !db.accepts(&w));
        }
    }

    #[test]
    fn prefix_closure_contains_all_prefixes(r in regex_strategy(), w in word_strategy()) {
        let n = Nfa::from_regex(&r, SYMS);
        let closed = Dfa::from_nfa(&n.prefix_closure());
        if n.accepts(&w) {
            for k in 0..=w.len() {
                prop_assert!(closed.accepts(&w[..k]), "prefix of length {k} missing");
            }
        }
        // Idempotent.
        let twice = Dfa::from_nfa(&closed.to_nfa().prefix_closure());
        prop_assert!(closed.equivalent(&twice));
    }

    #[test]
    fn reverse_is_an_involution(r in regex_strategy(), w in word_strategy()) {
        let n = Nfa::from_regex(&r, SYMS);
        let back = Dfa::from_nfa(&n.reverse().reverse());
        prop_assert!(dfa(&r).equivalent(&back));
        let mut rev = w.clone();
        rev.reverse();
        prop_assert_eq!(n.accepts(&w), Dfa::from_nfa(&n.reverse()).accepts(&rev));
    }

    #[test]
    fn state_elimination_round_trips(r in regex_strategy()) {
        let d = dfa(&r).minimize();
        let back = dfa(&dfa_to_regex(&d));
        prop_assert!(d.equivalent(&back), "state elimination changed the language");
    }

    #[test]
    fn count_words_matches_enumeration(r in regex_strategy()) {
        let d = dfa(&r).minimize();
        let counts = d.count_words(4);
        let words = d.enumerate(4, usize::MAX);
        for (len, &count) in counts.iter().enumerate() {
            let n = words.iter().filter(|w| w.len() == len).count() as u64;
            prop_assert_eq!(count, n, "length {} disagreement", len);
        }
    }

    #[test]
    fn rational_combinators_match_membership(
        a in regex_strategy(),
        b in regex_strategy(),
        w in word_strategy(),
    ) {
        use migratory_automata::{concat, star, union};
        let (na, nb) = (Nfa::from_regex(&a, SYMS), Nfa::from_regex(&b, SYMS));
        // Union agrees with the DFA-level union.
        let u = Dfa::from_nfa(&union(&na, &nb).expect("same alphabet"));
        prop_assert_eq!(u.accepts(&w), na.accepts(&w) || nb.accepts(&w));
        // Concat: every split agrees.
        let c = Dfa::from_nfa(&concat(&na, &nb).expect("same alphabet"));
        let split_ok =
            (0..=w.len()).any(|k| na.accepts(&w[..k]) && nb.accepts(&w[k..]));
        prop_assert_eq!(c.accepts(&w), split_ok);
        // Star accepts iff the regex-level star does.
        let s = Dfa::from_nfa(&star(&na));
        prop_assert_eq!(s.accepts(&w), dfa(&Regex::star(a.clone())).accepts(&w));
    }
}

//! Inflow and script schemas (Definitions 5.1 and 5.3): a transaction
//! schema plus a precedence relation `E ⊆ Σ × Σ`.
//!
//! * **Inflow** (INSYDE-style): a sequence `T₁ … Tₙ` is *applicable* iff
//!   every consecutive pair is in `E` — the order is global.
//! * **Script** (TAXIS-style): the order applies per object — only the
//!   subsequence of applications that *update* a given object must follow
//!   `E`; applications leaving the object untouched are free.

use migratory_lang::{LangError, Transaction, TransactionSchema};

/// Whether the precedence relation is interpreted globally or per object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowKind {
    /// Global ordering (Definition 5.1).
    Inflow,
    /// Per-object ordering (Definition 5.3).
    Script,
}

/// A transaction schema with a precedence relation.
#[derive(Clone, Debug)]
pub struct FlowSchema {
    /// The transactions.
    pub transactions: TransactionSchema,
    /// Precedence edges as pairs of transaction indices.
    pub edges: Vec<(usize, usize)>,
    /// Global or per-object interpretation.
    pub kind: FlowKind,
}

impl FlowSchema {
    /// Build a flow schema, resolving edge names.
    pub fn new(
        transactions: TransactionSchema,
        edges_by_name: &[(&str, &str)],
        kind: FlowKind,
    ) -> Result<FlowSchema, LangError> {
        let mut edges = Vec::with_capacity(edges_by_name.len());
        for (a, b) in edges_by_name {
            let ia = transactions
                .index_of(a)
                .ok_or_else(|| LangError::UnknownTransaction((*a).to_owned()))?;
            let ib = transactions
                .index_of(b)
                .ok_or_else(|| LangError::UnknownTransaction((*b).to_owned()))?;
            edges.push((ia, ib));
        }
        Ok(FlowSchema { transactions, edges, kind })
    }

    /// A flow with the complete relation (every order allowed — plain
    /// transaction schema semantics).
    #[must_use]
    pub fn complete(transactions: TransactionSchema, kind: FlowKind) -> FlowSchema {
        let n = transactions.len();
        let edges = (0..n).flat_map(|a| (0..n).map(move |b| (a, b))).collect();
        FlowSchema { transactions, edges, kind }
    }

    /// Whether `(a, b) ∈ E`.
    #[must_use]
    pub fn allows(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a, b))
    }

    /// Whether a **global** sequence of transaction indices is applicable
    /// (Definition 5.1).
    #[must_use]
    pub fn is_applicable(&self, seq: &[usize]) -> bool {
        seq.windows(2).all(|w| self.allows(w[0], w[1]))
    }

    /// Whether a sequence, with per-step "updates the object o" flags,
    /// obeys the schema *for o* (Definition 5.3): the updating
    /// subsequence must be `E`-chained. With [`FlowKind::Inflow`] the
    /// flags are ignored and the whole sequence is checked.
    #[must_use]
    pub fn obeys_for_object(&self, seq: &[(usize, bool)]) -> bool {
        match self.kind {
            FlowKind::Inflow => {
                self.is_applicable(&seq.iter().map(|&(t, _)| t).collect::<Vec<_>>())
            }
            FlowKind::Script => {
                let updating: Vec<usize> =
                    seq.iter().filter(|&&(_, u)| u).map(|&(t, _)| t).collect();
                self.is_applicable(&updating)
            }
        }
    }

    /// Borrow a transaction by index.
    #[must_use]
    pub fn transaction(&self, i: usize) -> &Transaction {
        &self.transactions.transactions()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_lang::Transaction;

    fn three() -> TransactionSchema {
        TransactionSchema::from_transactions([
            Transaction::empty("a"),
            Transaction::empty("b"),
            Transaction::empty("c"),
        ])
        .unwrap()
    }

    #[test]
    fn applicability_checks_consecutive_pairs() {
        let f = FlowSchema::new(three(), &[("a", "b"), ("b", "c")], FlowKind::Inflow).unwrap();
        assert!(f.is_applicable(&[0, 1, 2]));
        assert!(f.is_applicable(&[0]));
        assert!(f.is_applicable(&[]));
        assert!(!f.is_applicable(&[0, 2]));
        assert!(!f.is_applicable(&[1, 0]));
        assert!(!f.is_applicable(&[0, 1, 2, 0]));
    }

    #[test]
    fn script_ignores_non_updating_steps() {
        let f = FlowSchema::new(three(), &[("a", "b")], FlowKind::Script).unwrap();
        // a updates, c does not (for this object), b updates: a→b fine.
        assert!(f.obeys_for_object(&[(0, true), (2, false), (1, true)]));
        // But the same sequence as an inflow is not applicable.
        let g = FlowSchema::new(three(), &[("a", "b")], FlowKind::Inflow).unwrap();
        assert!(!g.obeys_for_object(&[(0, true), (2, false), (1, true)]));
        // b before a in the updating subsequence is rejected.
        assert!(!f.obeys_for_object(&[(1, true), (0, true)]));
    }

    #[test]
    fn complete_relation_allows_everything() {
        let f = FlowSchema::complete(three(), FlowKind::Inflow);
        assert!(f.is_applicable(&[2, 1, 0, 2, 2]));
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(matches!(
            FlowSchema::new(three(), &[("a", "zz")], FlowKind::Inflow),
            Err(LangError::UnknownTransaction(_))
        ));
    }
}

//! Assertions over classes (Definition 5.2): conjunctions of `A = a` and
//! `A = B` atoms, evaluated on objects and — crucially for decidability —
//! on separator vertices, where every object matching a vertex gives the
//! same answer ("for each vertex … either all objects matching the vertex
//! satisfy the assertion, or none", proof of Theorem 5.1).

use migratory_core::separator::{attrs_of_role, Choice, VertexKey};
use migratory_core::RoleAlphabet;
use migratory_model::{AttrId, ClassId, Instance, Oid, Schema, Value};

/// An atomic assertion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AssertionAtom {
    /// `A = a` for a constant.
    EqConst(AttrId, Value),
    /// `A = B` between two attributes of the class.
    EqAttr(AttrId, AttrId),
}

/// A conjunction of atomic assertions over one class.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Assertion {
    /// The class `P` the assertion speaks about.
    pub class: ClassId,
    /// The conjuncts (empty = the always-true assertion ρ = ∅).
    pub atoms: Vec<AssertionAtom>,
}

impl Assertion {
    /// The trivial assertion on a class.
    #[must_use]
    pub fn trivial(class: ClassId) -> Self {
        Assertion { class, atoms: Vec::new() }
    }

    /// The constants mentioned (to refine the analyzer's hyperplanes).
    #[must_use]
    pub fn constants(&self) -> Vec<Value> {
        self.atoms
            .iter()
            .filter_map(|a| match a {
                AssertionAtom::EqConst(_, v) => Some(v.clone()),
                AssertionAtom::EqAttr(..) => None,
            })
            .collect()
    }

    /// Whether an object satisfies the assertion (`o ⊨ ρ`).
    #[must_use]
    pub fn satisfied_by(&self, db: &Instance, o: Oid) -> bool {
        if !db.role_set(o).contains(self.class) {
            return false;
        }
        self.atoms.iter().all(|a| match a {
            AssertionAtom::EqConst(attr, v) => db.value(o, *attr) == Some(v),
            AssertionAtom::EqAttr(x, y) => {
                db.value(o, *x).is_some() && db.value(o, *x) == db.value(o, *y)
            }
        })
    }

    /// Whether every object matching `key` satisfies the assertion
    /// (equivalently: some object does — vertices are assertion-uniform
    /// once the assertion's constants are part of the separator's `C`).
    #[must_use]
    pub fn satisfied_by_vertex(
        &self,
        schema: &Schema,
        alphabet: &RoleAlphabet,
        constants: &[Value],
        key: &VertexKey,
    ) -> bool {
        let role = alphabet.role_set(key.role);
        if !role.contains(self.class) {
            return false;
        }
        let attrs = attrs_of_role(schema, role);
        let pos = |a: AttrId| attrs.iter().position(|&x| x == a);
        // Free attributes are numbered consecutively for partition lookup.
        let free_index =
            |i: usize| -> usize { key.choices[..i].iter().filter(|c| **c == Choice::Free).count() };
        self.atoms.iter().all(|atom| match atom {
            AssertionAtom::EqConst(a, v) => {
                let Some(i) = pos(*a) else { return false };
                match key.choices[i] {
                    Choice::Eq(ci) => constants.get(ci as usize) == Some(v),
                    // Free means "differs from every constant of C"; the
                    // assertion's constants are required to be in C.
                    Choice::Free => false,
                }
            }
            AssertionAtom::EqAttr(x, y) => {
                let (Some(i), Some(j)) = (pos(*x), pos(*y)) else { return false };
                match (key.choices[i], key.choices[j]) {
                    (Choice::Eq(a), Choice::Eq(b)) => a == b,
                    (Choice::Free, Choice::Free) => {
                        key.partition[free_index(i)] == key.partition[free_index(j)]
                    }
                    _ => false,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_core::separator::vertex_of;
    use migratory_model::{ClassSet, SchemaBuilder};
    use std::collections::BTreeMap;

    fn setup() -> (Schema, RoleAlphabet, ClassId, AttrId, AttrId) {
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &["A", "B"]).unwrap();
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let a = schema.attr_id("A").unwrap();
        let bb = schema.attr_id("B").unwrap();
        (schema, alphabet, p, a, bb)
    }

    fn mk_db(p: ClassId, a: AttrId, b: AttrId, va: Value, vb: Value) -> Instance {
        let mut db = Instance::empty();
        db.create(ClassSet::singleton(p), BTreeMap::from([(a, va), (b, vb)]));
        db
    }

    #[test]
    fn object_level_evaluation() {
        let (_, _, p, a, b) = setup();
        let db = mk_db(p, a, b, Value::int(1), Value::int(1));
        let eq_const =
            Assertion { class: p, atoms: vec![AssertionAtom::EqConst(a, Value::int(1))] };
        let eq_attr = Assertion { class: p, atoms: vec![AssertionAtom::EqAttr(a, b)] };
        assert!(eq_const.satisfied_by(&db, Oid(1)));
        assert!(eq_attr.satisfied_by(&db, Oid(1)));
        let db2 = mk_db(p, a, b, Value::int(1), Value::int(2));
        assert!(!Assertion { class: p, atoms: vec![AssertionAtom::EqAttr(a, b)] }
            .satisfied_by(&db2, Oid(1)));
        assert!(Assertion::trivial(p).satisfied_by(&db, Oid(1)));
        assert!(!Assertion::trivial(p).satisfied_by(&db, Oid(9)));
    }

    #[test]
    fn vertex_level_matches_object_level() {
        let (schema, alphabet, p, a, b) = setup();
        let constants = vec![Value::int(1)];
        let assertions = [
            Assertion { class: p, atoms: vec![AssertionAtom::EqConst(a, Value::int(1))] },
            Assertion { class: p, atoms: vec![AssertionAtom::EqAttr(a, b)] },
            Assertion::trivial(p),
        ];
        let dbs = [
            mk_db(p, a, b, Value::int(1), Value::int(1)),
            mk_db(p, a, b, Value::int(1), Value::int(9)),
            mk_db(p, a, b, Value::int(7), Value::int(7)),
            mk_db(p, a, b, Value::int(7), Value::int(8)),
        ];
        for db in &dbs {
            let key = vertex_of(&schema, &alphabet, &constants, db, Oid(1)).unwrap();
            for asrt in &assertions {
                assert_eq!(
                    asrt.satisfied_by(db, Oid(1)),
                    asrt.satisfied_by_vertex(&schema, &alphabet, &constants, &key),
                    "vertex/object disagreement for {asrt:?} on {db:?}"
                );
            }
        }
    }

    #[test]
    fn constants_collected() {
        let (_, _, p, a, b) = setup();
        let asrt = Assertion {
            class: p,
            atoms: vec![AssertionAtom::EqConst(a, Value::int(5)), AssertionAtom::EqAttr(a, b)],
        };
        assert_eq!(asrt.constants(), vec![Value::int(5)]);
    }
}

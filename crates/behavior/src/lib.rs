//! # migratory-behavior — inflow and script schemas (Section 5)
//!
//! The paper's application section models behaviour in the spirit of the
//! INSYDE and TAXIS methodologies: a transaction schema plus a precedence
//! relation on transactions. For *inflow schemas* the relation constrains
//! the global application sequence; for *script schemas* it constrains,
//! per object, only the applications that actually update that object.
//!
//! The **reachability problem** — "will every object of class `P`
//! satisfying an assertion eventually sit in class `Q` satisfying
//! another?" — is decidable for SL (Theorems 5.1(1)/5.2(1)), by crossing
//! the separator migration graph with the precedence relation
//! ([`reach`]). For CSL⁺/CSL it is undecidable (Theorems 5.1(2)/5.2(2)),
//! shown by reducing the halting problem through the Theorem 4.3
//! compiler ([`undecide`]); the library exposes the reduction with
//! bounded semi-decision.
//!
//! Section 5 closes remarking that the precedence construct "does not
//! yield richer expressiveness in terms of migration patterns";
//! [`families`] proves it constructively with a product of the migration
//! graph and the precedence relation — the flow families stay regular.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assertion;
pub mod families;
pub mod inflow;
pub mod reach;
pub mod undecide;

pub use assertion::{Assertion, AssertionAtom};
pub use families::flow_families;
pub use inflow::{FlowKind, FlowSchema};
pub use reach::{decide_reachability, Reachability};
pub use undecide::{bounded_halting_reachability, halting_flow};

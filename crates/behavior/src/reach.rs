//! The reachability decision procedure for SL flow schemas —
//! Theorems 5.1(1) and 5.2(1).
//!
//! "Will a student currently majoring in history work in a business
//! office with salary > 35K in the future?" Formally: given assertions
//! `ρ_P` on `P` and `ρ_Q` on `Q`, does every (some) object of `P`
//! satisfying `ρ_P` have an applicable transaction sequence leaving it in
//! `Q` satisfying `ρ_Q`?
//!
//! The procedure crosses the separator migration graph (computed with the
//! assertions' constants added to `C`, so vertices are assertion-uniform)
//! with the precedence relation: search states are
//! `(vertex, last transaction)`; edge witnesses advance the vertex, and
//! for scripts only *object-updating* witnesses consume a precedence
//! step.

use crate::assertion::Assertion;
use crate::inflow::{FlowKind, FlowSchema};
use migratory_core::analyze::{analyze_with_witnesses, AnalyzeOptions};
use migratory_core::{CoreError, RoleAlphabet};
use migratory_model::Schema;
use std::collections::HashSet;

/// The reachability verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reachability {
    /// Vertices whose objects satisfy the source assertion.
    pub sources: usize,
    /// How many of them can reach a target-satisfying vertex.
    pub reachable_sources: usize,
}

impl Reachability {
    /// The ∀-form of the paper's problem: *every* source object reaches
    /// the target.
    #[must_use]
    pub fn holds_for_all(&self) -> bool {
        self.sources == self.reachable_sources
    }

    /// The ∃-form: some source object reaches the target.
    #[must_use]
    pub fn holds_for_some(&self) -> bool {
        self.reachable_sources > 0
    }
}

/// Decide reachability for an SL flow schema (inflow or script).
/// `source`/`target` are the assertions `ρ_P`, `ρ_Q`; the classes they
/// mention must be weakly connected (otherwise nothing is reachable, as
/// the paper notes).
pub fn decide_reachability(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    flow: &FlowSchema,
    source: &Assertion,
    target: &Assertion,
) -> Result<Reachability, CoreError> {
    if !schema.weakly_connected(source.class, target.class) {
        return Ok(Reachability { sources: 0, reachable_sources: 0 });
    }
    let mut extra = source.constants();
    extra.extend(target.constants());
    let opts = AnalyzeOptions { extra_constants: extra, ..Default::default() };
    let (analysis, witnesses) =
        analyze_with_witnesses(schema, alphabet, &flow.transactions, &opts)?;

    let vertex_sat = |v: u32, asrt: &Assertion| -> bool {
        if v < 2 {
            return false; // vs/vt carry no objects
        }
        asrt.satisfied_by_vertex(
            schema,
            alphabet,
            &analysis.constants,
            &analysis.keys[v as usize - 2],
        )
    };

    let sources: Vec<u32> =
        (2..analysis.graph.num_vertices() as u32).filter(|&v| vertex_sat(v, source)).collect();

    // BFS over (vertex, last ordered transaction). `usize::MAX` = no
    // ordered transaction applied yet.
    let mut reachable_sources = 0usize;
    for &start in &sources {
        if vertex_sat(start, target) {
            reachable_sources += 1; // the empty sequence suffices
            continue;
        }
        let mut seen: HashSet<(u32, usize)> = HashSet::new();
        let mut stack = vec![(start, usize::MAX)];
        seen.insert((start, usize::MAX));
        let mut found = false;
        'search: while let Some((v, last)) = stack.pop() {
            for w in &witnesses {
                if w.from != v {
                    continue;
                }
                // Does this application consume a precedence step?
                let ordered = match flow.kind {
                    FlowKind::Inflow => true,
                    FlowKind::Script => w.updates_object,
                };
                let next_last = if ordered { w.transaction } else { last };
                if ordered && last != usize::MAX && !flow.allows(last, w.transaction) {
                    continue;
                }
                let state = (w.to, next_last);
                if seen.insert(state) {
                    if vertex_sat(w.to, target) {
                        found = true;
                        break 'search;
                    }
                    stack.push(state);
                }
            }
        }
        if found {
            reachable_sources += 1;
        }
    }

    Ok(Reachability { sources: sources.len(), reachable_sources })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::AssertionAtom;
    use migratory_lang::parse_transactions;
    use migratory_model::{SchemaBuilder, Value};

    /// Example 5.1's shape, simplified: visa classes VISITOR → RESIDENT →
    /// CITIZEN with an immigration-law ordering.
    fn immigration() -> (Schema, RoleAlphabet) {
        let mut b = SchemaBuilder::new();
        let p = b.class("PERSON", &["Id", "Status"]).unwrap();
        b.subclass("VISITOR", &[p], &[]).unwrap();
        b.subclass("RESIDENT", &[p], &[]).unwrap();
        b.subclass("CITIZEN", &[p], &[]).unwrap();
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        (schema, alphabet)
    }

    const IMMIGRATION_TS: &str = r#"
        transaction Enter(x) {
          create(PERSON, { Id = x, Status = "v" });
          specialize(PERSON, VISITOR, { Id = x, Status = "v" }, {});
        }
        transaction Settle(x) {
          generalize(VISITOR, { Id = x, Status = "v" });
          specialize(PERSON, RESIDENT, { Id = x, Status = "v" }, {});
          modify(PERSON, { Id = x, Status = "v" }, { Status = "r" });
        }
        transaction Naturalize(x) {
          generalize(RESIDENT, { Id = x, Status = "r" });
          specialize(PERSON, CITIZEN, { Id = x, Status = "r" }, {});
          modify(PERSON, { Id = x, Status = "r" }, { Status = "c" });
        }
    "#;

    #[test]
    fn ordered_inflow_permits_the_full_path() {
        let (schema, alphabet) = immigration();
        let ts = parse_transactions(&schema, IMMIGRATION_TS).unwrap();
        let flow = FlowSchema::new(
            ts,
            &[
                ("Enter", "Enter"),
                ("Enter", "Settle"),
                ("Settle", "Enter"),
                ("Settle", "Naturalize"),
                ("Naturalize", "Enter"),
            ],
            FlowKind::Inflow,
        )
        .unwrap();
        let visitor = Assertion::trivial(schema.class_id("VISITOR").unwrap());
        let citizen = Assertion::trivial(schema.class_id("CITIZEN").unwrap());
        let r = decide_reachability(&schema, &alphabet, &flow, &visitor, &citizen).unwrap();
        assert!(r.sources > 0);
        assert!(r.holds_for_all(), "{r:?}");
    }

    #[test]
    fn missing_edge_blocks_reachability() {
        let (schema, alphabet) = immigration();
        let ts = parse_transactions(&schema, IMMIGRATION_TS).unwrap();
        // Settle → Naturalize removed: a visitor can never become citizen.
        let flow = FlowSchema::new(
            ts,
            &[("Enter", "Enter"), ("Enter", "Settle"), ("Naturalize", "Enter")],
            FlowKind::Inflow,
        )
        .unwrap();
        let visitor = Assertion::trivial(schema.class_id("VISITOR").unwrap());
        let citizen = Assertion::trivial(schema.class_id("CITIZEN").unwrap());
        let r = decide_reachability(&schema, &alphabet, &flow, &visitor, &citizen).unwrap();
        assert!(r.sources > 0);
        assert!(!r.holds_for_some(), "{r:?}");
    }

    #[test]
    fn script_frees_other_objects_updates() {
        // Same missing edge, but as a *script*: the precedence only binds
        // updates of the same object. The path Settle;Naturalize updates
        // the object twice and Settle→Naturalize is still missing, so it
        // remains unreachable; adding it per-object works even though the
        // global sequence interleaves Enter (which does not update the
        // object).
        let (schema, alphabet) = immigration();
        let ts = parse_transactions(&schema, IMMIGRATION_TS).unwrap();
        let flow = FlowSchema::new(
            ts.clone(),
            &[("Enter", "Settle"), ("Settle", "Naturalize")],
            FlowKind::Script,
        )
        .unwrap();
        let visitor = Assertion::trivial(schema.class_id("VISITOR").unwrap());
        let citizen = Assertion::trivial(schema.class_id("CITIZEN").unwrap());
        let r = decide_reachability(&schema, &alphabet, &flow, &visitor, &citizen).unwrap();
        assert!(r.holds_for_all(), "{r:?}");
        // Script with the reversed relation fails.
        let flow = FlowSchema::new(ts, &[("Naturalize", "Settle")], FlowKind::Script).unwrap();
        let r = decide_reachability(&schema, &alphabet, &flow, &visitor, &citizen).unwrap();
        assert!(!r.holds_for_some());
    }

    #[test]
    fn assertions_refine_reachability() {
        let (schema, alphabet) = immigration();
        let ts = parse_transactions(&schema, IMMIGRATION_TS).unwrap();
        let flow = FlowSchema::complete(ts, FlowKind::Inflow);
        let status = schema.attr_id("Status").unwrap();
        // Persons whose Status = "x" (a value no transition produces or
        // consumes) can never be naturalized — Naturalize requires "r".
        let stuck = Assertion {
            class: schema.class_id("PERSON").unwrap(),
            atoms: vec![AssertionAtom::EqConst(status, Value::str("x"))],
        };
        let citizen = Assertion::trivial(schema.class_id("CITIZEN").unwrap());
        let r = decide_reachability(&schema, &alphabet, &flow, &stuck, &citizen).unwrap();
        // No reachable source among the Status="x" vertices…
        assert!(!r.holds_for_some(), "{r:?}");
        // …while Status="v" visitors do reach citizenship.
        let v_src = Assertion {
            class: schema.class_id("VISITOR").unwrap(),
            atoms: vec![AssertionAtom::EqConst(status, Value::str("v"))],
        };
        let r = decide_reachability(&schema, &alphabet, &flow, &v_src, &citizen).unwrap();
        assert!(r.sources > 0 && r.holds_for_all(), "{r:?}");
    }

    #[test]
    fn disconnected_classes_are_unreachable() {
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &["A"]).unwrap();
        let q = b.class("Q", &["B"]).unwrap();
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let ts = migratory_lang::TransactionSchema::new();
        let flow = FlowSchema::complete(ts, FlowKind::Inflow);
        let r = decide_reachability(
            &schema,
            &alphabet,
            &flow,
            &Assertion::trivial(p),
            &Assertion::trivial(q),
        )
        .unwrap();
        assert_eq!(r, Reachability { sources: 0, reachable_sources: 0 });
    }
}

//! The undecidability side — Theorems 5.1(2) and 5.2(2).
//!
//! Reachability for CSL⁺/CSL flow schemas is undecidable: the proof
//! reduces the halting problem through the Theorem 4.3 machinery. This
//! module exposes that reduction executably: [`halting_flow`] compiles a
//! Turing machine into a CSL⁺ flow schema such that *an object can reach
//! the letter class iff the machine accepts some (driven) input*, and
//! [`bounded_halting_reachability`] semi-decides it by bounded search —
//! the best any algorithm can do.

use crate::inflow::{FlowKind, FlowSchema};
use migratory_chomsky::TuringMachine;
use migratory_core::tm_compile::{compile_tm, drive_word, standard_tm_schema, TmSpec};
use migratory_core::{CoreError, RoleAlphabet};
use migratory_lang::Assignment;
use migratory_model::{ClassId, Instance, Schema};

/// The halting reduction: a CSL⁺ flow schema (complete precedence — the
/// reduction of Theorem 5.1(2) uses `E = Σ × Σ`) whose reachability
/// question "can an object inhabit `target_class`?" encodes "does the
/// machine accept the word it is driven on?".
pub struct HaltingFlow {
    /// The combined host schema.
    pub schema: Schema,
    /// Alphabet of the migrating component.
    pub alphabet: RoleAlphabet,
    /// The compiled CSL⁺ flow schema.
    pub flow: FlowSchema,
    /// The class whose reachability encodes acceptance (`L0`).
    pub target_class: ClassId,
    /// The machine being simulated.
    pub tm: TuringMachine,
}

/// Build the reduction for a single-letter machine (`letter 0 ↔ L0`).
pub fn halting_flow(tm: TuringMachine) -> Result<HaltingFlow, CoreError> {
    let (schema, alphabet, s_class, roles) = standard_tm_schema(1)?;
    let letter_of = (0..tm.num_symbols())
        .map(|s| if s == tm.blank() { None } else { Some(roles[0]) })
        .collect();
    let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &TmSpec { letter_of })?;
    let target_class = schema.require_class("L0")?;
    let flow = FlowSchema::complete(compiled.transactions, FlowKind::Inflow);
    Ok(HaltingFlow { schema, alphabet, flow, target_class, tm })
}

/// Bounded semi-decision of the reduction's reachability question:
/// drive the word `0ⁿ` for each `n ≤ max_word` with at most `max_steps`
/// machine steps. `Some(n)` means reachable (machine accepted `0ⁿ`);
/// `None` is *inconclusive* — exactly the undecidability phenomenon.
#[must_use]
pub fn bounded_halting_reachability(
    hf: &HaltingFlow,
    max_word: usize,
    max_steps: usize,
) -> Option<usize> {
    for n in 1..=max_word {
        let word = vec![0u32; n];
        let Some(script) = drive_word(&hf.tm, &word, max_steps) else {
            continue;
        };
        // Replay and check an object reaches the target class.
        let mut db = Instance::empty();
        let mut reached = false;
        for (name, args) in script {
            let t = hf.flow.transactions.get(&name).expect("compiled transaction");
            migratory_lang::apply_transaction(&hf.schema, &mut db, t, &Assignment::new(args))
                .expect("validated");
            if db.objects().any(|o| db.role_set(o).contains(hf.target_class)) {
                reached = true;
            }
        }
        if reached {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_chomsky::turing::machines;
    use migratory_chomsky::Move;

    #[test]
    fn halting_machine_reaches_the_letter_class() {
        // accept_all halts immediately on any input — the target class is
        // reachable, witnessed at word length 1.
        let hf = halting_flow(machines::accept_all()).unwrap();
        assert_eq!(bounded_halting_reachability(&hf, 3, 1000), Some(1));
    }

    #[test]
    fn looping_machine_is_inconclusive() {
        // loop_forever never halts; bounded search cannot certify
        // unreachability — it returns None for every bound.
        let hf = halting_flow(machines::loop_forever()).unwrap();
        assert_eq!(bounded_halting_reachability(&hf, 3, 500), None);
        assert_eq!(bounded_halting_reachability(&hf, 3, 2000), None);
    }

    #[test]
    fn acceptance_threshold_is_respected() {
        // A machine accepting only words of length ≥ 2 (blank = 1):
        // scan two letters then accept.
        let mut tm = TuringMachine::new(4, 2, 1, 0, 3).unwrap();
        tm.add_transition(0, 0, 1, 0, Move::Right).unwrap();
        tm.add_transition(1, 0, 2, 0, Move::Right).unwrap();
        tm.add_transition(2, 0, 3, 0, Move::Stay).unwrap();
        tm.add_transition(2, 1, 3, 1, Move::Stay).unwrap();
        let hf = halting_flow(tm).unwrap();
        assert_eq!(bounded_halting_reachability(&hf, 4, 1000), Some(2));
    }

    #[test]
    fn csl_flow_is_rejected_by_the_sl_decider() {
        // The compiled schema is CSL⁺, so the decidable procedure of
        // Theorem 5.1(1) correctly refuses it.
        let hf = halting_flow(machines::accept_all()).unwrap();
        let src = crate::assertion::Assertion::trivial(hf.schema.require_class("R").unwrap());
        let tgt = crate::assertion::Assertion::trivial(hf.target_class);
        assert!(matches!(
            crate::reach::decide_reachability(&hf.schema, &hf.alphabet, &hf.flow, &src, &tgt),
            Err(CoreError::NotSl)
        ));
    }
}

//! Pattern families of inflow and script schemas — Section 5's closing
//! remark made executable.
//!
//! The paper ends Section 5 observing that the precedence construct
//! "does not yield richer expressiveness in terms of migration patterns":
//! ordering the transactions of an SL schema only *restricts* which
//! walks of its migration graph occur, a regular restriction. This module
//! proves it constructively: [`flow_families`] builds, for every
//! [`FlowSchema`], the four pattern-family DFAs by a product of the
//! analyzer's migration graph (Theorem 3.2(1)) with the precedence
//! relation — so the families stay regular, and with the complete
//! relation they coincide with the plain schema's.
//!
//! The two interpretations differ in what the product threads through:
//!
//! * **inflow** (Definition 5.1, global order): *every* application —
//!   including those that only repeat a role set, and those applied
//!   before the object exists or after it is deleted — consumes a step of
//!   the precedence relation, so the product state is
//!   (phase, last applied transaction);
//! * **script** (Definition 5.3, per-object order): only applications
//!   that *update the object* are chained; silent repetitions and the
//!   pre-creation/post-deletion ∅-steps are free — they can always be
//!   realized by applications touching only other, independent objects
//!   (Lemma 3.5) — so the product threads the last *updating*
//!   transaction.

use crate::inflow::{FlowKind, FlowSchema};
use migratory_automata::{Dfa, Nfa, Regex};
use migratory_core::analyze::{analyze_with_witnesses, AnalyzeOptions, EdgeWitness, Families};
use migratory_core::graph::{MigrationGraph, VS, VT};
use migratory_core::{CoreError, PatternKind, RoleAlphabet};
use migratory_model::Schema;

/// Compute the four pattern families of a flow schema over one component
/// (SL only; for CSL even plain satisfiability is undecidable,
/// Corollary 4.7).
///
/// ```
/// use migratory_behavior::{flow_families, FlowKind, FlowSchema};
/// use migratory_core::{AnalyzeOptions, PatternKind, RoleAlphabet};
/// use migratory_lang::parse_transactions;
/// use migratory_model::{text::parse_schema, RoleSet};
///
/// let schema = parse_schema("schema S { class P { Id } }")?;
/// let alphabet = RoleAlphabet::new(&schema, 0)?;
/// let ts = parse_transactions(&schema, r#"
///     transaction Mk(x) { create(P, { Id = x }); }
///     transaction Rm(x) { delete(P, { Id = x }); }
/// "#)?;
/// // Deletions may only follow creations; nothing follows a deletion.
/// let flow = FlowSchema::new(ts, &[("Mk", "Rm")], FlowKind::Inflow)?;
/// let fams = flow_families(&schema, &alphabet, &flow, &AnalyzeOptions::default())?;
/// let p = alphabet
///     .symbol_of(RoleSet::closure_of_named(&schema, &["P"])?)
///     .expect("[P] is a role set");
/// let all = fams.of(PatternKind::All);
/// assert!(all.accepts(&[p, alphabet.empty_symbol()]));
/// assert!(!all.accepts(&[p, p, p]), "global runs stop after Mk; Rm");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn flow_families(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    flow: &FlowSchema,
    opts: &AnalyzeOptions,
) -> Result<Families, CoreError> {
    let ns = alphabet.num_symbols();
    if flow.transactions.is_empty() {
        let lambda = Dfa::from_nfa(&Nfa::from_regex(&Regex::Epsilon, ns)).minimize();
        return Ok(Families {
            all: lambda.clone(),
            imm: lambda.clone(),
            pro: lambda.clone(),
            lazy: lambda,
        });
    }
    let (analysis, witnesses) = analyze_with_witnesses(schema, alphabet, &flow.transactions, opts)?;
    let build = |kind: PatternKind| -> Dfa {
        let nfa = product_nfa(alphabet, &analysis.graph, &witnesses, flow, kind);
        Dfa::from_nfa(&nfa).minimize()
    };
    Ok(Families {
        all: build(PatternKind::All),
        imm: build(PatternKind::ImmediateStart),
        pro: build(PatternKind::Proper),
        lazy: build(PatternKind::Lazy),
    })
}

/// The product automaton of the migration graph with the precedence
/// relation, for one pattern kind.
///
/// State layout (all states accepting — families are prefix-closed);
/// contexts `l` range over `0..=n` with `0` = "no chained application
/// yet" and `1 + t` = "transaction `t` was the last chained application":
///
/// * `pre(l)` — the object does not exist yet;
/// * `pre_one(l)` — proper/lazy only: exactly one leading ∅ emitted;
/// * `in(v, l)` — the object matches interior vertex `v`;
/// * `post(l)` — the object has been deleted.
fn product_nfa(
    alphabet: &RoleAlphabet,
    graph: &MigrationGraph,
    witnesses: &[EdgeWitness],
    flow: &FlowSchema,
    kind: PatternKind,
) -> Nfa {
    let n = flow.transactions.len();
    let ns = alphabet.num_symbols();
    let empty = alphabet.empty_symbol();
    let nv = graph.num_vertices(); // includes vs (0) and vt (1)
    let script = flow.kind == FlowKind::Script;
    let restrict_prefix = matches!(kind, PatternKind::Proper | PatternKind::Lazy);

    let ctxs = n + 1;
    let pre = |l: usize| l as u32;
    let pre_one = |l: usize| (ctxs + l) as u32;
    let inv = |v: u32, l: usize| (2 * ctxs + (v as usize - 2) * ctxs + l) as u32;
    let post = |l: usize| (2 * ctxs + (nv - 2) * ctxs + l) as u32;

    let mut nfa = Nfa::empty(ns);
    for _ in 0..(3 * ctxs + (nv - 2) * ctxs) {
        nfa.add_state(true);
    }
    nfa.add_start(pre(0));

    // Whether transaction `b` may be chained after context `l`.
    let ok = |l: usize, b: usize| l == 0 || flow.allows(l - 1, b);
    let after = |b: usize| 1 + b;

    // Pre-creation ∅ steps (an application fires while the object does
    // not exist; under inflow it consumes the chain, under script it is a
    // free filler touching other objects only).
    if kind != PatternKind::ImmediateStart {
        if restrict_prefix {
            // At most one leading ∅ survives properness/laziness.
            if script {
                nfa.add_transition(pre(0), empty, pre_one(0));
            } else {
                for b in 0..n {
                    nfa.add_transition(pre(0), empty, pre_one(after(b)));
                }
            }
        } else if script {
            nfa.add_transition(pre(0), empty, pre(0));
        } else {
            for l in 0..ctxs {
                for b in 0..n {
                    if ok(l, b) {
                        nfa.add_transition(pre(l), empty, pre(after(b)));
                    }
                }
            }
        }
    }

    for w in witnesses {
        let b = w.transaction;
        if w.from == VS {
            // Creation — always updates the object.
            let lab = graph.label(w.to);
            let to = inv(w.to, after(b));
            if restrict_prefix {
                nfa.add_transition(pre(0), lab, to);
                if script {
                    nfa.add_transition(pre_one(0), lab, to);
                } else {
                    for l in 1..ctxs {
                        if ok(l, b) {
                            nfa.add_transition(pre_one(l), lab, to);
                        }
                    }
                }
            } else if script {
                nfa.add_transition(pre(0), lab, to);
            } else {
                for l in 0..ctxs {
                    if ok(l, b) {
                        nfa.add_transition(pre(l), lab, to);
                    }
                }
            }
        } else if w.to == VT {
            // Deletion — updates the object, emits ∅, chained in both
            // interpretations.
            for l in 0..ctxs {
                if ok(l, b) {
                    nfa.add_transition(inv(w.from, l), empty, post(after(b)));
                }
            }
        } else {
            let include = match kind {
                PatternKind::All | PatternKind::ImmediateStart => true,
                PatternKind::Proper => w.updates_object,
                PatternKind::Lazy => graph.label(w.from) != graph.label(w.to),
            };
            if !include {
                continue;
            }
            let lab = graph.label(w.to);
            if script && !w.updates_object {
                // Silent per-object step: free, context unchanged.
                for l in 0..ctxs {
                    nfa.add_transition(inv(w.from, l), lab, inv(w.to, l));
                }
            } else {
                for l in 0..ctxs {
                    if ok(l, b) {
                        nfa.add_transition(inv(w.from, l), lab, inv(w.to, after(b)));
                    }
                }
            }
        }
    }

    // Post-deletion ∅ steps (not under proper/lazy — a second trailing ∅
    // leaves the object unchanged).
    if matches!(kind, PatternKind::All | PatternKind::ImmediateStart) {
        if script {
            for l in 0..ctxs {
                nfa.add_transition(post(l), empty, post(l));
            }
        } else {
            for l in 0..ctxs {
                for b in 0..n {
                    if ok(l, b) {
                        nfa.add_transition(post(l), empty, post(after(b)));
                    }
                }
            }
        }
    }

    nfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use migratory_core::analyze::analyze_families;
    use migratory_lang::parse_transactions;
    use migratory_model::SchemaBuilder;

    /// P ⊇ S ⊇ G chain with one attribute (tiny separator space).
    fn slim() -> (Schema, RoleAlphabet) {
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &["Id"]).unwrap();
        let s = b.subclass("S", &[p], &[]).unwrap();
        b.subclass("G", &[s], &[]).unwrap();
        let schema = b.build().unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        (schema, alphabet)
    }

    const SLIM_TS: &str = r"
        transaction Mk(x) { create(P, { Id = x }); }
        transaction Up(x) { specialize(P, S, { Id = x }, {}); }
        transaction Dn(x) { generalize(S, { Id = x }); }
        transaction Rm(x) { delete(P, { Id = x }); }
    ";

    fn slim_flow(edges: &[(&str, &str)], kind: FlowKind) -> (Schema, RoleAlphabet, FlowSchema) {
        let (schema, alphabet) = slim();
        let ts = parse_transactions(&schema, SLIM_TS).unwrap();
        let flow = FlowSchema::new(ts, edges, kind).unwrap();
        (schema, alphabet, flow)
    }

    fn sym(schema: &Schema, alphabet: &RoleAlphabet, names: &[&str]) -> u32 {
        alphabet
            .symbol_of(migratory_model::RoleSet::closure_of_named(schema, names).unwrap())
            .unwrap()
    }

    #[test]
    fn complete_relation_equals_plain_families() {
        // §5 closing remark, the degenerate direction: with every order
        // allowed, the flow product must coincide with Theorem 3.2(1)'s
        // plain families — for both interpretations and all four kinds.
        let (schema, alphabet) = slim();
        let ts = parse_transactions(&schema, SLIM_TS).unwrap();
        let opts = AnalyzeOptions::default();
        let (_, plain) = analyze_families(&schema, &alphabet, &ts, &opts).unwrap();
        for fk in [FlowKind::Inflow, FlowKind::Script] {
            let flow = FlowSchema::complete(ts.clone(), fk);
            let fams = flow_families(&schema, &alphabet, &flow, &opts).unwrap();
            for kind in PatternKind::ALL {
                assert!(
                    fams.of(kind).equivalent(plain.of(kind)),
                    "{fk:?}/{kind} differs from the plain family"
                );
            }
        }
    }

    #[test]
    fn flow_families_are_contained_in_plain_families() {
        // Ordering only restricts: ∀E, family(Σ, E) ⊆ family(Σ).
        let (schema, alphabet, flow) = slim_flow(&[("Mk", "Up"), ("Up", "Rm")], FlowKind::Inflow);
        let opts = AnalyzeOptions::default();
        let (_, plain) = analyze_families(&schema, &alphabet, &flow.transactions, &opts).unwrap();
        let fams = flow_families(&schema, &alphabet, &flow, &opts).unwrap();
        for kind in PatternKind::ALL {
            assert!(fams.of(kind).is_subset_of(plain.of(kind)), "{kind} not contained");
        }
    }

    #[test]
    fn inflow_chain_restricts_patterns() {
        // E = Mk→Up, Up→Rm: global runs are prefixes of Mk; Up; Rm.
        let (schema, alphabet, flow) = slim_flow(&[("Mk", "Up"), ("Up", "Rm")], FlowKind::Inflow);
        let fams = flow_families(&schema, &alphabet, &flow, &AnalyzeOptions::default()).unwrap();
        let p = sym(&schema, &alphabet, &["P"]);
        let s = sym(&schema, &alphabet, &["S"]);
        let e = alphabet.empty_symbol();
        let all = fams.of(PatternKind::All);
        assert!(all.accepts(&[p, s, e]), "Mk; Up; Rm traces [P][S]∅");
        assert!(all.accepts(&[p, s]));
        assert!(all.accepts(&[p]));
        assert!(
            all.accepts(&[p, p]),
            "Mk; Up(silent, non-matching key) is applicable and repeats [P]"
        );
        assert!(!all.accepts(&[p, e]), "deletion cannot follow creation directly");
        assert!(!all.accepts(&[p, s, p]), "after Up only Rm may run, which cannot demote");
        assert!(!all.accepts(&[p, s, e, e]), "Rm has no successor: runs stop after it");
        assert!(!all.accepts(&[p, p, p, p]), "no applicable run has four steps");
        // The ∅-prefix consumes the chain too: an object created on the
        // second step needs Mk as a second application, but Mk has no
        // predecessor in E.
        assert!(!all.accepts(&[e, p]), "no second application can be Mk");
    }

    #[test]
    fn script_frees_fillers_that_inflow_chains() {
        // E = Mk→Rm only. Globally, every second application must be Rm
        // and Rm has no successor, so inflow runs have at most two steps.
        // Per object, silent fillers are free: a script run can repeat
        // [P] indefinitely before the chained deletion.
        let (schema, alphabet, flow) = slim_flow(&[("Mk", "Rm")], FlowKind::Inflow);
        let opts = AnalyzeOptions::default();
        let inflow_fams = flow_families(&schema, &alphabet, &flow, &opts).unwrap();
        let script_flow = FlowSchema { kind: FlowKind::Script, ..flow };
        let script_fams = flow_families(&schema, &alphabet, &script_flow, &opts).unwrap();
        let p = sym(&schema, &alphabet, &["P"]);
        let s = sym(&schema, &alphabet, &["S"]);
        let e = alphabet.empty_symbol();
        assert!(!inflow_fams.of(PatternKind::All).accepts(&[p, p, p]));
        assert!(script_fams.of(PatternKind::All).accepts(&[p, p, p]));
        assert!(script_fams.of(PatternKind::All).accepts(&[p, p, p, e]));
        // The per-object chain still bites: Up never follows Mk in E, so
        // no object is ever promoted under either interpretation.
        assert!(!inflow_fams.of(PatternKind::All).accepts(&[p, s]));
        assert!(!script_fams.of(PatternKind::All).accepts(&[p, s]));
        // Both allow the chained lifecycle.
        assert!(inflow_fams.of(PatternKind::All).accepts(&[p, e]));
        assert!(script_fams.of(PatternKind::All).accepts(&[p, e]));
        // For THIS relation inflow ⊆ script (every updating subsequence
        // of a chained two-step run is itself chained). In general the
        // two interpretations are *incomparable*: script frees filler
        // steps but chains each object's updating subsequence directly,
        // which a globally chained run can violate by interleaving
        // updates to other objects — see `examples/course_workflow.rs`.
        for kind in PatternKind::ALL {
            assert!(inflow_fams.of(kind).is_subset_of(script_fams.of(kind)));
        }
    }

    #[test]
    fn inflow_and_script_are_incomparable_in_general() {
        // E chains Mk→Up→Rm→Dn. Globally, Mk; Up(x); Rm(other); Dn(x) is
        // chained, and the silent Rm leaves object x untouched — so x's
        // updating subsequence is Mk; Up; Dn with (Up, Dn) ∉ E: the
        // pattern [P][S][S][P] is inflow-only. Conversely, an object
        // created on step 2 (∅ prefix) is script-only, since Mk has no
        // predecessor in E.
        let (schema, alphabet, flow) =
            slim_flow(&[("Mk", "Up"), ("Up", "Rm"), ("Rm", "Dn")], FlowKind::Inflow);
        let opts = AnalyzeOptions::default();
        let inflow_fams = flow_families(&schema, &alphabet, &flow, &opts).unwrap();
        let script_flow = FlowSchema { kind: FlowKind::Script, ..flow };
        let script_fams = flow_families(&schema, &alphabet, &script_flow, &opts).unwrap();
        let all_i = inflow_fams.of(PatternKind::All);
        let all_s = script_fams.of(PatternKind::All);
        assert!(!all_i.is_subset_of(all_s), "an inflow-only pattern exists");
        assert!(!all_s.is_subset_of(all_i), "a script-only pattern exists");
        let p = sym(&schema, &alphabet, &["P"]);
        let e = alphabet.empty_symbol();
        assert!(all_s.accepts(&[e, p]), "free filler then create");
        assert!(!all_i.accepts(&[e, p]), "nothing may precede Mk globally");
    }

    #[test]
    fn families_stay_regular_and_prefix_closed() {
        // §5 closing remark, main direction: the product is a DFA, i.e.
        // regular by construction; check prefix closure as a sanity
        // invariant of pattern families.
        let (schema, alphabet, flow) =
            slim_flow(&[("Mk", "Up"), ("Up", "Dn"), ("Dn", "Up")], FlowKind::Inflow);
        let fams = flow_families(&schema, &alphabet, &flow, &AnalyzeOptions::default()).unwrap();
        for kind in PatternKind::ALL {
            let dfa = fams.of(kind);
            let closed = Dfa::from_nfa(&dfa.to_nfa().prefix_closure());
            assert!(closed.is_subset_of(dfa), "{kind} family not prefix-closed");
        }
        // And the alternation shows up: [P][S][P][S]… is allowed.
        let p = sym(&schema, &alphabet, &["P"]);
        let s = sym(&schema, &alphabet, &["S"]);
        let e = alphabet.empty_symbol();
        assert!(fams.of(PatternKind::All).accepts(&[p, s, p, s, p]));
        // Rm can only ever be the *first* application (it has no
        // predecessor in E), so no non-trivial pattern reaches deletion:
        assert!(!fams.of(PatternKind::All).accepts(&[p, s, e]));
        // Mk creates into [P] only.
        assert!(!fams.of(PatternKind::All).accepts(&[s]));
    }

    /// Brute-force oracle: enumerate every ground run of length ≤ `depth`
    /// (values drawn from three fixed keys), keep those obeying the flow,
    /// and collect every object's observed pattern (plus the virtual
    /// never-created ∅ᵏ patterns). Ground truth for the product DFA.
    fn bounded_flow_patterns(
        schema: &Schema,
        alphabet: &RoleAlphabet,
        flow: &FlowSchema,
        depth: usize,
    ) -> std::collections::BTreeSet<Vec<u32>> {
        use migratory_core::pattern::{observe, pattern_of};
        use migratory_lang::{run, Assignment};
        use migratory_model::{Instance, Oid, Value};

        let ts = flow.transactions.transactions();
        let values = ["k1", "k2", "k3"];
        let mut apps: Vec<(usize, Assignment)> = Vec::new();
        for (ti, t) in ts.iter().enumerate() {
            assert!(t.params.len() <= 1, "oracle supports ≤1 parameter");
            if t.params.is_empty() {
                apps.push((ti, Assignment::empty()));
            } else {
                for v in values {
                    apps.push((ti, Assignment::new(vec![Value::str(v)])));
                }
            }
        }

        let mut out = std::collections::BTreeSet::new();
        out.insert(Vec::new());
        // DFS over application sequences.
        let mut stack: Vec<(Vec<usize>, Vec<Instance>)> =
            vec![(Vec::new(), vec![Instance::empty()])];
        while let Some((seq, trace)) = stack.pop() {
            if seq.len() == depth {
                continue;
            }
            for (ai, (ti, args)) in apps.iter().enumerate() {
                let mut seq2 = seq.clone();
                seq2.push(ai);
                let next = run(schema, trace.last().unwrap(), &ts[*ti], args).unwrap();
                let mut trace2 = trace.clone();
                trace2.push(next);
                // Does the extended run obey the flow?
                let tids: Vec<usize> = seq2.iter().map(|&a| apps[a].0).collect();
                let obeys = match flow.kind {
                    FlowKind::Inflow => flow.is_applicable(&tids),
                    FlowKind::Script => {
                        // Per object: the updating subsequence chains.
                        let max_oid = trace2.last().unwrap().next_oid().0;
                        (1..=max_oid).all(|o| {
                            let obs = observe(schema, alphabet, &trace2, Oid(o));
                            let mut flags = Vec::new();
                            for (i, st) in obs.iter().enumerate() {
                                flags.push((tids[i], st.object_changed));
                            }
                            flow.obeys_for_object(&flags)
                        })
                    }
                };
                if !obeys {
                    continue;
                }
                // Collect patterns of every object and the virtual one.
                let max_oid = trace2.last().unwrap().next_oid().0;
                for o in (1..=max_oid).chain([1 << 40]) {
                    let obs = observe(schema, alphabet, &trace2, Oid(o));
                    out.insert(pattern_of(&obs));
                }
                stack.push((seq2, trace2));
            }
        }
        out
    }

    #[test]
    fn product_matches_brute_force_inflow() {
        let (schema, alphabet, flow) =
            slim_flow(&[("Mk", "Up"), ("Up", "Rm"), ("Up", "Dn"), ("Dn", "Rm")], FlowKind::Inflow);
        let fams = flow_families(&schema, &alphabet, &flow, &AnalyzeOptions::default()).unwrap();
        let depth = 4;
        let observed = bounded_flow_patterns(&schema, &alphabet, &flow, depth);
        let dfa = fams.of(PatternKind::All);
        for w in &observed {
            assert!(dfa.accepts(w), "observed pattern {w:?} missing from the product");
        }
        for w in dfa.enumerate(depth, 100_000) {
            assert!(observed.contains(&w), "product pattern {w:?} never observed");
        }
    }

    #[test]
    fn product_matches_brute_force_script() {
        let (schema, alphabet, flow) = slim_flow(&[("Mk", "Up"), ("Up", "Rm")], FlowKind::Script);
        let fams = flow_families(&schema, &alphabet, &flow, &AnalyzeOptions::default()).unwrap();
        let depth = 3;
        let observed = bounded_flow_patterns(&schema, &alphabet, &flow, depth);
        let dfa = fams.of(PatternKind::All);
        for w in &observed {
            assert!(dfa.accepts(w), "observed pattern {w:?} missing from the product");
        }
        for w in dfa.enumerate(depth, 100_000) {
            assert!(observed.contains(&w), "product pattern {w:?} never observed");
        }
    }

    #[test]
    fn empty_flow_schema_yields_lambda() {
        let (schema, alphabet) = slim();
        let flow = FlowSchema::complete(migratory_lang::TransactionSchema::new(), FlowKind::Inflow);
        let fams = flow_families(&schema, &alphabet, &flow, &AnalyzeOptions::default()).unwrap();
        for kind in PatternKind::ALL {
            assert!(fams.of(kind).accepts(&[]));
            assert!(!fams.of(kind).accepts(&[0]));
        }
    }

    #[test]
    fn immediate_start_has_no_leading_empty() {
        let (schema, alphabet, flow) = slim_flow(&[("Mk", "Mk"), ("Mk", "Rm")], FlowKind::Inflow);
        let fams = flow_families(&schema, &alphabet, &flow, &AnalyzeOptions::default()).unwrap();
        let p = sym(&schema, &alphabet, &["P"]);
        let e = alphabet.empty_symbol();
        assert!(fams.of(PatternKind::All).accepts(&[e, p]), "created on step 2");
        assert!(!fams.of(PatternKind::ImmediateStart).accepts(&[e, p]));
        assert!(fams.of(PatternKind::ImmediateStart).accepts(&[p, p]));
    }
}

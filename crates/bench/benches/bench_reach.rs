//! thm5.1/5.2: inflow/script reachability decision cost vs precedence
//! relation density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_behavior::{decide_reachability, Assertion, FlowKind, FlowSchema};
use migratory_bench::slim_chain;

fn bench(c: &mut Criterion) {
    let (schema, alphabet, ts) = slim_chain();
    let src = Assertion::trivial(schema.class_id("P").unwrap());
    let tgt = Assertion::trivial(schema.class_id("G").unwrap());
    let mut g = c.benchmark_group("reachability");
    for (name, kind) in [("inflow", FlowKind::Inflow), ("script", FlowKind::Script)] {
        let flow = FlowSchema::complete(ts.clone(), kind);
        g.bench_with_input(BenchmarkId::new("complete_relation", name), &flow, |b, flow| {
            b.iter(|| decide_reachability(&schema, &alphabet, flow, &src, &tgt).unwrap())
        });
        let sparse =
            FlowSchema::new(ts.clone(), &[("Mk", "Up"), ("Up", "Up2"), ("Up2", "Rm")], kind)
                .unwrap();
        g.bench_with_input(BenchmarkId::new("sparse_relation", name), &sparse, |b, flow| {
            b.iter(|| decide_reachability(&schema, &alphabet, flow, &src, &tgt).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

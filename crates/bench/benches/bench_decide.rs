//! cor3.3 / perf-baseline: automata-based decision vs brute-force bounded
//! exploration — the baseline comparison (who wins and where).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_bench::slim_chain;
use migratory_core::{
    analyze_families, decide_with_families, explore, AnalyzeOptions, ExploreConfig, Inventory,
    PatternKind,
};

fn bench(c: &mut Criterion) {
    let (schema, alphabet, ts) = slim_chain();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [P]* [S]* ([G] ∪ [S])* ∅*").unwrap();

    let mut g = c.benchmark_group("satisfiability");
    g.bench_function("graph_decision", |b| {
        b.iter(|| {
            let (_, fams) =
                analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
            decide_with_families(&fams, &inv, PatternKind::All)
        })
    });
    for &depth in &[2usize, 3] {
        g.bench_with_input(BenchmarkId::new("bounded_explorer", depth), &depth, |b, &depth| {
            b.iter(|| {
                let sets = explore(
                    &schema,
                    &alphabet,
                    &ts,
                    &ExploreConfig { max_steps: depth, ..Default::default() },
                );
                sets.all.iter().find(|w| !inv.contains(w)).cloned()
            })
        });
    }
    g.finish();

    // DESIGN.md §6.3: inclusion-check route ablation. Both routes start
    // from the analyzed migration graph; the heavy route determinizes and
    // minimizes the family before a product check, the on-the-fly route
    // explores the NFA×complement product lazily. `amortized` is the
    // heavy route's repeat-query case (DFA already built).
    let (analysis, fams) =
        analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
    let ns = alphabet.num_symbols();
    let empty_sym = alphabet.empty_symbol();
    let family_nfa = || {
        let imm = analysis.graph.walks_nfa(ns, empty_sym, PatternKind::All);
        let estar = migratory_automata::Nfa::from_regex(
            &migratory_automata::Regex::star(migratory_automata::Regex::Sym(empty_sym)),
            ns,
        );
        migratory_automata::concat(&estar, &imm).expect("same alphabet")
    };
    let mut g = c.benchmark_group("inclusion_route");
    g.bench_function("dfa_minimized", |b| {
        b.iter(|| {
            let nfa = family_nfa();
            let dfa = migratory_automata::Dfa::from_nfa(&nfa).minimize();
            dfa.witness_not_subset(inv.dfa())
        })
    });
    g.bench_function("nfa_on_the_fly", |b| {
        b.iter(|| {
            let nfa = family_nfa();
            migratory_automata::nfa_witness_not_subset(&nfa, inv.dfa()).unwrap()
        })
    });
    g.bench_function("amortized_repeat", |b| b.iter(|| fams.all.witness_not_subset(inv.dfa())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

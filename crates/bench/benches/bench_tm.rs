//! thm4.3: TM-in-CSL⁺ simulation cost per word length vs the native
//! machine (the interpretive-overhead shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_chomsky::turing::machines;
use migratory_core::tm_compile::{compile_tm, drive_word, standard_tm_schema, TmSpec};
use migratory_lang::Assignment;
use migratory_model::Instance;

fn bench(c: &mut Criterion) {
    let (schema, alphabet, s_class, roles) = standard_tm_schema(2).unwrap();
    let tm = machines::anbn();
    let spec = TmSpec {
        letter_of: vec![Some(roles[0]), Some(roles[1]), Some(roles[0]), Some(roles[1]), None],
    };
    let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &spec).unwrap();

    let mut g = c.benchmark_group("tm_anbn");
    for &n in &[2usize, 4, 6] {
        let mut word = vec![0u32; n];
        word.extend(vec![1u32; n]);
        g.bench_with_input(BenchmarkId::new("native", n), &word, |b, w| {
            b.iter(|| tm.run(w, 1_000_000))
        });
        let script = drive_word(&tm, &word, 1_000_000).unwrap();
        g.bench_with_input(BenchmarkId::new("csl_simulation", n), &script, |b, script| {
            b.iter(|| {
                let mut db = Instance::empty();
                for (name, args) in script {
                    let t = compiled.transactions.get(name).unwrap();
                    migratory_lang::apply_transaction(
                        &schema,
                        &mut db,
                        t,
                        &Assignment::new(args.clone()),
                    )
                    .unwrap();
                }
                db
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

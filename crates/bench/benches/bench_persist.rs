//! perf-persist: the durability layer's hot paths, small-scale.
//!
//! * `snapshot_encode` / `snapshot_decode` — checkpointing a populated
//!   monitor and rebuilding it (index rebuild included);
//! * `wal_append` — one group-committed record per single-object
//!   application (the write-ahead cost a durable monitor adds);
//! * `recover_vs_replay` — `Monitor::recover(snapshot, wal_tail)`
//!   against re-running the full transaction history, on a 10k-object
//!   store (the 10k–1M sweep with the acceptance numbers lives in the
//!   `experiments` binary, id `persist`, which emits
//!   `BENCH_persist.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use migratory_bench::{bulk_create, toggle_step, toggle_transactions, university};
use migratory_core::enforce::{MemoryWal, Monitor, Snapshot};
use migratory_core::{Inventory, PatternKind};
use migratory_lang::Assignment;
use std::sync::{Arc, Mutex};

const N: usize = 10_000;
const HISTORY: usize = 256;
const TAIL: usize = 64;

fn bench(c: &mut Criterion) {
    let (schema, alphabet, _) = university();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
    let ts = toggle_transactions(&schema);
    let bulk = bulk_create(&schema, N);
    let no_args = Assignment::empty();

    // A populated durable monitor with a checkpoint and a WAL tail.
    let wal = Arc::new(Mutex::new(MemoryWal::new()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
    live.try_apply(&bulk, &no_args).expect("bulk load conforms");
    for i in 0..HISTORY {
        let (name, args) = toggle_step(i, N);
        live.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
    }
    let snap = live.snapshot();
    wal.lock().unwrap().write_snapshot(&snap);
    for i in HISTORY..HISTORY + TAIL {
        let (name, args) = toggle_step(i, N);
        live.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
    }
    let snap_bytes = snap.encode();
    let tail = wal.lock().unwrap().records();

    let mut group = c.benchmark_group("persist");
    group.sample_size(10);

    group.bench_function("snapshot_encode_10k", |b| b.iter(|| black_box(live.snapshot().encode())));
    group.bench_function("snapshot_decode_10k", |b| {
        b.iter(|| Snapshot::decode(black_box(&snap_bytes)).expect("decodes"))
    });

    group.bench_function("wal_append_per_app", |b| {
        // Steady-state single-object toggles with the WAL attached; the
        // delta over the volatile engine is the write-ahead append.
        let sink = Arc::new(Mutex::new(MemoryWal::new()));
        let mut m =
            Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(sink.clone());
        m.try_apply(&bulk, &no_args).expect("bulk load conforms");
        let mut i = 0usize;
        b.iter(|| {
            let (name, args) = toggle_step(i, N);
            i += 1;
            m.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms")
        });
    });

    group.bench_function("recover_10k", |b| {
        b.iter(|| {
            let snap = Snapshot::decode(&snap_bytes).expect("decodes");
            Monitor::recover(
                &schema,
                &alphabet,
                &inv,
                PatternKind::All,
                Some(snap),
                tail.iter().cloned(),
            )
            .expect("recovers")
            .steps()
        })
    });
    group.bench_function("incremental_checkpoint_capture_10k", |b| {
        // The admission-path cost of the steady-state checkpoint: an
        // O(dirty) capture (the toggles dirty a rotating window of
        // objects), vs the O(db) snapshot_encode above.
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
        m.try_apply(&bulk, &no_args).expect("bulk load conforms");
        let base = m.checkpoint_full();
        wal.lock().unwrap().write_snapshot(&base);
        let mut i = 0usize;
        b.iter(|| {
            for _ in 0..TAIL {
                let (name, args) = toggle_step(i, N);
                i += 1;
                m.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
            }
            let delta = m.checkpoint_delta();
            wal.lock().unwrap().write_checkpoint_delta(&delta);
            delta.num_dirty_objects()
        });
    });
    group.bench_function("full_replay_10k", |b| {
        b.iter(|| {
            let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All);
            m.try_apply(&bulk, &no_args).expect("bulk load conforms");
            for i in 0..HISTORY + TAIL {
                let (name, args) = toggle_step(i, N);
                m.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
            }
            m.steps()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! thm3.2.1 / perf-analyze: the separator analyzer, with the ablations of
//! DESIGN.md §6 — reachable-only vs full space, sequential vs parallel.

use criterion::{criterion_group, criterion_main, Criterion};
use migratory_bench::{slim_chain, university};
use migratory_core::{analyze, AnalyzeOptions};

fn bench(c: &mut Criterion) {
    let (schema, alphabet, ts) = slim_chain();
    let mut g = c.benchmark_group("analyze_slim_chain");
    g.bench_function("reachable", |b| {
        b.iter(|| analyze(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap())
    });
    g.bench_function("full_space", |b| {
        b.iter(|| {
            analyze(
                &schema,
                &alphabet,
                &ts,
                &AnalyzeOptions { full_space: true, ..Default::default() },
            )
            .unwrap()
        })
    });
    g.finish();

    // DESIGN.md §6.2: canonical restricted-growth assignments vs the full
    // value product — identical graphs and families, more ground runs.
    // Restricted growth only bites with multi-parameter transactions, so
    // the workload adds two- and three-parameter modifies to the chain.
    let multi = migratory_lang::parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(P, { Id = x }); }
        transaction Mv(x, y) { modify(P, { Id = x }, { Id = y }); }
        transaction Mv3(x, y, z) {
          modify(P, { Id = x }, { Id = y });
          modify(P, { Id = z }, { Id = x });
        }
        transaction Up(x) { specialize(P, S, { Id = x }, {}); }
        transaction Rm(x) { delete(P, { Id = x }); }
    "#,
    )
    .expect("ablation workload validates");
    let mut g = c.benchmark_group("analyze_assignments");
    g.bench_function("canonical", |b| {
        b.iter(|| analyze(&schema, &alphabet, &multi, &AnalyzeOptions::default()).unwrap())
    });
    g.bench_function("naive_product", |b| {
        b.iter(|| {
            analyze(
                &schema,
                &alphabet,
                &multi,
                &AnalyzeOptions { naive_assignments: true, ..Default::default() },
            )
            .unwrap()
        })
    });
    g.finish();

    let (schema, alphabet, ts) = university();
    let mut g = c.benchmark_group("analyze_example_3_4");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| analyze(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap())
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            analyze(
                &schema,
                &alphabet,
                &ts,
                &AnalyzeOptions { parallel: true, ..Default::default() },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

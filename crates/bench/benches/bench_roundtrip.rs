//! thm3.2.2 round trip: synthesize Σ_η then analyze it back (the full
//! pipeline both directions).

use criterion::{criterion_group, criterion_main, Criterion};
use migratory_bench::{chain_regex, synthesis_host};
use migratory_core::{analyze_families, synthesize, AnalyzeOptions};

fn bench(c: &mut Criterion) {
    let (schema, alphabet) = synthesis_host(2);
    let eta = chain_regex(&schema, &alphabet, 2);
    let mut g = c.benchmark_group("roundtrip");
    g.sample_size(10);
    g.bench_function("synthesize_then_analyze", |b| {
        b.iter(|| {
            let synth = synthesize(&schema, &alphabet, &eta).unwrap();
            analyze_families(&schema, &alphabet, &synth.transactions, &AnalyzeOptions::default())
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

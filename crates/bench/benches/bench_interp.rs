//! perf-interp / fig1-2: SL interpreter throughput as the database grows
//! (rows: 100, 1 000, 10 000 objects).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_bench::{apply_round, populated_university};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp_apply_transaction");
    for &n in &[100usize, 1_000, 10_000] {
        let (schema, ts, db) = populated_university(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let mut db2 = db.clone();
                apply_round(&schema, &ts, &mut db2, i);
                i += 1;
                db2
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! perf-automata: minimization / inclusion / quotient scaling on the
//! regular-language substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_automata::{Dfa, Nfa, Regex};

fn deep_regex(depth: usize) -> Regex {
    // ((0|1)(0|1)…)* nested with unions — states grow with depth.
    let mut r = Regex::union([Regex::Sym(0), Regex::Sym(1)]);
    for i in 0..depth {
        r = Regex::concat([r.clone(), Regex::star(Regex::union([Regex::Sym(i as u32 % 3), r]))]);
    }
    r
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dfa_pipeline");
    for &depth in &[2usize, 4, 6] {
        let r = deep_regex(depth);
        g.bench_with_input(BenchmarkId::new("determinize_minimize", depth), &r, |b, r| {
            b.iter(|| Dfa::from_nfa(&Nfa::from_regex(r, 3)).minimize())
        });
    }
    let a = Dfa::from_nfa(&Nfa::from_regex(&deep_regex(5), 3)).minimize();
    let bdfa = Dfa::from_nfa(&Nfa::from_regex(&deep_regex(6), 3)).minimize();
    g.bench_function("inclusion", |b| b.iter(|| a.is_subset_of(&bdfa)));
    g.bench_function("state_elimination", |b| b.iter(|| migratory_automata::dfa_to_regex(&a)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! thm3.2.2 / ex3.6-7: synthesis cost and output size vs regex length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_bench::{chain_regex, synthesis_host};
use migratory_core::synthesize;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesize_chain");
    for &k in &[1usize, 2, 3, 4] {
        let (schema, alphabet) = synthesis_host(k.max(2));
        let eta = chain_regex(&schema, &alphabet, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| synthesize(&schema, &alphabet, &eta).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

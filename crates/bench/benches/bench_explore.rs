//! thm4.2: the bounded r.e. enumerator's cost per depth (why decision via
//! automata wins for SL).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_bench::slim_chain;
use migratory_core::{explore, ExploreConfig};

fn bench(c: &mut Criterion) {
    let (schema, alphabet, ts) = slim_chain();
    let mut g = c.benchmark_group("explore_depth");
    g.sample_size(10);
    for &depth in &[1usize, 2, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                explore(
                    &schema,
                    &alphabet,
                    &ts,
                    &ExploreConfig { max_steps: depth, ..Default::default() },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

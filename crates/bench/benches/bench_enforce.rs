//! perf-enforce: runtime-enforcement overhead ablation.
//!
//! Three ways to run the same 4·n-step lifecycle script (Example 3.4's
//! schema, n objects through enroll → assist → employ → leave):
//!
//! * `raw`       — the bare interpreter, no constraint;
//! * `checked`   — a [`Monitor`] validating every application against the
//!   schema's characterizing inventory (delta/cohort engine);
//! * `certified` — the same monitor after Corollary 3.3 statically
//!   certified the schema, so every runtime check is skipped.
//!
//! Expected shape: `certified` tracks `raw` within a small constant,
//! while `checked` pays per *touched* object per step.
//!
//! The `enforce_large_db` group measures the steady state on a
//! bulk-loaded database: the delta/cohort engine (`delta`) versus the
//! whole-database rescan baseline (`reference`,
//! [`Monitor::new_reference`]). The full 10k–1M sweep with latency
//! trajectories lives in the `experiments` binary (`enforce-large`),
//! which also emits `BENCH_enforce.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_bench::{
    bulk_create, ladder_inventory_src, ladder_scripts, point_conditions, toggle_step,
    toggle_transactions, university,
};
use migratory_core::enforce::{Monitor, ShardedMonitor};
use migratory_core::{Inventory, PatternKind};
use migratory_lang::{Assignment, Transaction, TransactionSchema};
use migratory_model::{Instance, Value};

fn lifecycle_script(ts: &TransactionSchema, n: usize) -> Vec<(&Transaction, Assignment)> {
    let t1 = ts.get("T1").expect("T1");
    let t2 = ts.get("T2").expect("T2");
    let t3 = ts.get("T3").expect("T3");
    let t4 = ts.get("T4").expect("T4");
    let mut script = Vec::with_capacity(4 * n);
    for i in 0..n {
        let ssn = Value::str(&format!("s{i}"));
        script.push((
            t1,
            Assignment::new(vec![
                Value::str(&format!("n{i}")),
                ssn.clone(),
                Value::int(1990),
                Value::str("CS"),
            ]),
        ));
        script.push((
            t2,
            Assignment::new(vec![ssn.clone(), Value::int(50), Value::int(1), Value::str("D")]),
        ));
        script.push((t3, Assignment::new(vec![ssn.clone()])));
        script.push((t4, Assignment::new(vec![ssn])));
    }
    script
}

fn bench(c: &mut Criterion) {
    let (schema, alphabet, ts) = university();
    // The schema's own family: certification succeeds, nothing rejects.
    let inventory = Inventory::parse_init(&schema, &alphabet, "∅* ([STUDENT]+ [GRAD_ASSIST]*)* ∅*")
        .expect("inventory parses");

    let mut g = c.benchmark_group("enforce_lifecycle");
    for &n in &[8usize, 32, 128] {
        let script = lifecycle_script(&ts, n);

        g.bench_with_input(BenchmarkId::new("raw", n), &n, |b, _| {
            b.iter(|| {
                let mut db = Instance::empty();
                for (t, args) in &script {
                    migratory_lang::apply_transaction(&schema, &mut db, t, args).expect("applies");
                }
                db
            });
        });

        g.bench_with_input(BenchmarkId::new("checked", n), &n, |b, _| {
            b.iter(|| {
                let mut m = Monitor::new(&schema, &alphabet, &inventory, PatternKind::All);
                for (t, args) in &script {
                    m.try_apply(t, args).expect("schema satisfies inventory");
                }
                m.steps()
            });
        });

        // Certification is a one-time static analysis; measure only the
        // runtime path it buys.
        let mut certified_proto = Monitor::new(&schema, &alphabet, &inventory, PatternKind::All);
        assert!(certified_proto.certify(&ts).expect("SL decidable"));
        g.bench_with_input(BenchmarkId::new("certified", n), &n, |b, _| {
            b.iter(|| {
                let mut m = certified_proto.clone();
                for (t, args) in &script {
                    m.try_apply(t, args).expect("certified never rejects");
                }
                m.steps()
            });
        });
    }
    g.finish();

    // The one-time cost certification pays (Corollary 3.3 analysis +
    // inclusion check) — amortized over every later application.
    c.bench_function("enforce_certify_once", |b| {
        b.iter(|| {
            let mut m = Monitor::new(&schema, &alphabet, &inventory, PatternKind::All);
            m.certify(&ts).expect("SL decidable")
        });
    });

    // Steady state on a bulk-loaded database: 64 single-object toggles.
    // The delta engine's per-step cost depends on the touched set (1
    // object) plus the sat scan; the reference engine re-clones and
    // rescans the whole store every application.
    let toggle_inv = Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*")
        .expect("inventory parses");
    let toggles = toggle_transactions(&schema);
    let no_args = Assignment::empty();
    let mut g = c.benchmark_group("enforce_large_db");
    g.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let bulk = bulk_create(&schema, n);
        let mut delta_proto = Monitor::new(&schema, &alphabet, &toggle_inv, PatternKind::All);
        delta_proto.try_apply(&bulk, &no_args).expect("bulk load conforms");
        let mut ref_proto =
            Monitor::new_reference(&schema, &alphabet, &toggle_inv, PatternKind::All);
        ref_proto.try_apply(&bulk, &no_args).expect("bulk load conforms");
        for (label, proto) in [("delta", &delta_proto), ("reference", &ref_proto)] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter(|| {
                    let mut m = proto.clone();
                    for i in 0..64 {
                        let (name, args) = toggle_step(i, n);
                        m.try_apply(toggles.get(name).expect("toggle"), &args).expect("conforms");
                    }
                    m.steps()
                });
            });
        }
    }
    g.finish();

    // sat_heavy: point-condition selection on a bulk-loaded store — the
    // index-backed planner against the preserved full-scan oracle.
    let mut g = c.benchmark_group("sat_heavy");
    g.sample_size(10);
    {
        let n = 10_000usize;
        let mut db = Instance::empty();
        migratory_lang::apply_transaction(&schema, &mut db, &bulk_create(&schema, n), &no_args)
            .expect("bulk load");
        let queries = point_conditions(&schema, n, 64);
        g.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| queries.iter().map(|(p, cond)| db.sat(*p, cond).len()).sum::<usize>());
        });
        g.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| queries.iter().map(|(p, cond)| db.sat_scan(*p, cond).len()).sum::<usize>());
        });
    }
    g.finish();

    // batch_admit: 64 ladder toggles (deep inventory, ~60 live cohorts)
    // admitted one at a time by the single-threaded delta engine vs as
    // one block per shard sweep by the sharded monitor.
    let mut g = c.benchmark_group("batch_admit");
    g.sample_size(10);
    {
        let n = 10_000usize;
        let ladder_inv = Inventory::parse_init(&schema, &alphabet, &ladder_inventory_src(32))
            .expect("ladder inventory parses");
        let bulk = bulk_create(&schema, n);
        let (setup, timed) = ladder_scripts(64, 56, 64);
        let mut single_proto = Monitor::new(&schema, &alphabet, &ladder_inv, PatternKind::All);
        single_proto.try_apply(&bulk, &no_args).expect("bulk load conforms");
        for (name, args) in &setup {
            single_proto.try_apply(toggles.get(name).expect("toggle"), args).expect("setup");
        }
        let mut sharded_proto =
            ShardedMonitor::new(&schema, &alphabet, &ladder_inv, PatternKind::All, 2);
        sharded_proto.try_apply(&bulk, &no_args).expect("bulk load conforms");
        let (done, err) = sharded_proto
            .try_apply_batch(setup.iter().map(|(name, a)| (toggles.get(name).expect("t"), a)));
        assert_eq!((done, err), (setup.len(), None));
        let script: Vec<(&Transaction, Assignment)> = timed
            .iter()
            .map(|(name, args)| (toggles.get(name).expect("toggle"), args.clone()))
            .collect();
        g.bench_with_input(BenchmarkId::new("single", n), &n, |b, _| {
            b.iter(|| {
                let mut m = single_proto.clone();
                for (t, args) in &script {
                    m.try_apply(t, args).expect("conforms");
                }
                m.steps()
            });
        });
        g.bench_with_input(BenchmarkId::new("sharded_batch", n), &n, |b, _| {
            b.iter(|| {
                let mut m = sharded_proto.clone();
                let (done, err) = m.try_apply_batch(script.iter().map(|(t, a)| (*t, a)));
                assert_eq!((done, err), (script.len(), None));
                m.letters_read()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! thm4.8 / ex4.1: GNF conversion and the derivation machine for aⁱbⁱ
//! and Dyck words.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use migratory_chomsky::{cfg::grammars, to_gnf};
use migratory_core::cfg_compile::{compile_cfg, drive_word, standard_cfg_schema};
use migratory_lang::Assignment;
use migratory_model::Instance;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfg");
    for (name, grammar) in [
        ("anbn", grammars::anbn()),
        ("dyck", grammars::dyck()),
        ("palindromes", grammars::even_palindromes()),
    ] {
        g.bench_with_input(BenchmarkId::new("to_gnf", name), &grammar, |b, gr| {
            b.iter(|| to_gnf(gr))
        });
    }

    let grammar = grammars::anbn();
    let (schema, alphabet, s_class, roles) = standard_cfg_schema(2).unwrap();
    let compiled = compile_cfg(&schema, &alphabet, s_class, &grammar, &roles).unwrap();
    for &n in &[2usize, 4] {
        let mut word = vec![0u32; n];
        word.extend(vec![1u32; n]);
        let script = drive_word(&compiled, &word).unwrap();
        g.bench_with_input(BenchmarkId::new("derivation_machine", n), &script, |b, script| {
            b.iter(|| {
                let mut db = Instance::empty();
                for (name, args) in script {
                    let t = compiled.transactions.get(name).unwrap();
                    migratory_lang::apply_transaction(
                        &schema,
                        &mut db,
                        t,
                        &Assignment::new(args.clone()),
                    )
                    .unwrap();
                }
                db
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

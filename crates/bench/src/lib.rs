//! # migratory-bench — workloads and reporting for the experiment suite
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems,
//! worked examples and figures. Every one of them maps to an experiment
//! here (see EXPERIMENTS.md); the Criterion benches measure the
//! algorithms' scaling *shape* and the `experiments` binary regenerates
//! the qualitative rows (who wins, where the crossovers sit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tcpdrive;
pub mod workload;

pub use tcpdrive::*;
pub use workload::*;

//! Shared workload builders for benches and the experiments binary.

use migratory_core::RoleAlphabet;
use migratory_lang::{parse_transactions, Assignment, Transaction, TransactionSchema};
use migratory_model::{Instance, Schema, SchemaBuilder, Value};

/// The Fig. 1 university schema with Example 3.4's transactions.
#[must_use]
pub fn university() -> (Schema, RoleAlphabet, TransactionSchema) {
    let schema = migratory_model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0 exists");
    let ts = parse_transactions(
        &schema,
        r"
        transaction T1(n, s, t, m) {
          create(PERSON, { SSN = s, Name = n });
          specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
        }
        transaction T2(s, p, x, d) {
          specialize(STUDENT, GRAD_ASSIST, { SSN = s },
                     { PcAppoint = p, Salary = x, WorksIn = d });
        }
        transaction T3(s) { generalize(EMPLOYEE, { SSN = s }); }
        transaction T4(s) { delete(PERSON, { SSN = s }); }
    ",
    )
    .expect("Example 3.4 validates");
    (schema, alphabet, ts)
}

/// A database with `n` enrolled students (for interpreter scaling).
#[must_use]
pub fn populated_university(n: usize) -> (Schema, TransactionSchema, Instance) {
    let (schema, _, ts) = university();
    let enroll = ts.get("T1").expect("T1 exists");
    let mut db = Instance::empty();
    for i in 0..n {
        let args = Assignment::new(vec![
            Value::str(&format!("name{i}")),
            Value::str(&format!("ssn{i}")),
            Value::int(1980 + (i % 40) as i64),
            Value::str(if i % 2 == 0 { "CS" } else { "EE" }),
        ]);
        migratory_lang::apply_transaction(&schema, &mut db, enroll, &args).expect("arity");
    }
    (schema, ts, db)
}

/// One Example 3.4-style application on a populated database.
pub fn apply_round(schema: &Schema, ts: &TransactionSchema, db: &mut Instance, i: usize) {
    let t: &Transaction = match i % 3 {
        0 => ts.get("T2").expect("T2"),
        1 => ts.get("T3").expect("T3"),
        _ => ts.get("T2").expect("T2"),
    };
    let ssn = Value::str(&format!("ssn{}", i % db.num_objects().max(1)));
    let args = match t.params.len() {
        1 => Assignment::new(vec![ssn]),
        4 => Assignment::new(vec![ssn, Value::int(50), Value::int(1200), Value::str("lab")]),
        _ => Assignment::empty(),
    };
    migratory_lang::apply_transaction(schema, db, t, &args).expect("arity");
}

/// One SL transaction creating `n` persons — bulk-loads a large database
/// in a **single** monitor step, so enforcement benchmarks can measure
/// steady-state per-application cost on a big store without paying a
/// quadratic build-up.
#[must_use]
pub fn bulk_create(schema: &Schema, n: usize) -> Transaction {
    use migratory_lang::AtomicUpdate;
    use migratory_model::{Atom, Condition};
    let person = schema.class_id("PERSON").expect("university schema");
    let ssn = schema.attr_id("SSN").expect("university schema");
    let name = schema.attr_id("Name").expect("university schema");
    let updates = (0..n)
        .map(|i| AtomicUpdate::Create {
            class: person,
            gamma: Condition::from_atoms([
                Atom::eq_const(ssn, format!("s{i}")),
                Atom::eq_const(name, "n"),
            ]),
        })
        .collect();
    Transaction::sl("BulkLoad", &[], updates)
}

/// Point-touch transactions for the large-database enforcement workload:
/// toggle one keyed person between PERSON and STUDENT. Each application
/// touches exactly one object; everything else is untouched ballast.
#[must_use]
pub fn toggle_transactions(schema: &Schema) -> TransactionSchema {
    parse_transactions(
        schema,
        r#"
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
    "#,
    )
    .expect("validates against the university schema")
}

/// The `i`-th application of the toggle workload over `n` objects:
/// `(transaction name, argument)` — alternating St/UnSt over a rotating
/// key so each step changes one object's role set.
#[must_use]
pub fn toggle_step(i: usize, n: usize) -> (&'static str, Assignment) {
    let key = Assignment::new(vec![Value::str(&format!("s{}", (i / 2) % n.max(1)))]);
    (if i.is_multiple_of(2) { "St" } else { "UnSt" }, key)
}

/// Point conditions for the `sat_heavy` workload: `q` ground conditions
/// over an `n`-person store — mostly indexed key hits (`SSN = sᵢ`),
/// mixed with guaranteed misses and equality+inequality conjunctions, so
/// the planner exercises the value index, the miss fast path and the
/// residual-atom filter.
#[must_use]
pub fn point_conditions(
    schema: &Schema,
    n: usize,
    q: usize,
) -> Vec<(migratory_model::ClassId, migratory_model::Condition)> {
    use migratory_model::{Atom, Condition};
    let person = schema.class_id("PERSON").expect("university schema");
    let ssn = schema.attr_id("SSN").expect("university schema");
    let name = schema.attr_id("Name").expect("university schema");
    (0..q)
        .map(|i| {
            let c = match i % 8 {
                // A key that misses the whole store.
                3 => Condition::from_atoms([Atom::eq_const(ssn, format!("miss{i}"))]),
                // Key hit plus a residual inequality to verify.
                5 => Condition::from_atoms([
                    Atom::eq_const(ssn, format!("s{}", i % n.max(1))),
                    Atom::ne_const(name, "nobody"),
                ]),
                // Plain indexed key hit.
                _ => Condition::from_atoms([Atom::eq_const(ssn, format!("s{}", i % n.max(1)))]),
            };
            (person, c)
        })
        .collect()
}

/// Guarded point-rename transactions for the interpreter-level
/// `sat_heavy` workload: each application evaluates one positive guard
/// literal and one point select — both index lookups now, both formerly
/// O(|db|) scans.
#[must_use]
pub fn sat_heavy_transactions(schema: &Schema) -> TransactionSchema {
    parse_transactions(
        schema,
        r"
        transaction Ren(x, y) {
          when PERSON(SSN = x) -> modify(PERSON, { SSN = x }, { Name = y });
        }
    ",
    )
    .expect("validates against the university schema")
}

/// The `i`-th application of the guarded-rename workload over `n`
/// objects.
#[must_use]
pub fn sat_heavy_step(i: usize, n: usize) -> Assignment {
    Assignment::new(vec![Value::str(&format!("s{}", i % n.max(1))), Value::str(&format!("r{i}"))])
}

/// The deep "career ladder" inventory source: `∅* ([PERSON]+
/// [STUDENT]+)^pairs ∅*` written out textually. Its DFA has ~2·`pairs`
/// states; with objects staggered across the ladder the monitor's cohort
/// table holds up to ~2·`pairs` live cohorts, so the per-application
/// cohort sweep + re-key becomes the dominant admission cost — exactly
/// what batch admission amortizes to one sweep per block.
#[must_use]
pub fn ladder_inventory_src(pairs: usize) -> String {
    let mut s = String::from("∅* ");
    for _ in 0..pairs {
        s.push_str("[PERSON]+ [STUDENT]+ ");
    }
    s.push_str("∅*");
    s
}

/// A named script: `(transaction name, argument)` applications in order.
pub type Script = Vec<(&'static str, Assignment)>;

/// Toggle schedules for the `batch_admit` ladder workload: `spread`
/// climber objects (keys `s0..s(spread−1)`) are staggered across ladder
/// depths `0..max_depth` by the setup script, then the timed script
/// round-robins `steps` further toggles over them. Each toggle advances
/// its object one ladder segment, so callers must keep `max_depth +
/// ceil(steps/spread)` below the ladder's segment count (2·pairs − 1).
/// Untouched objects re-read their role, which self-loops inside a
/// `[…]+` segment — every application is admissible.
#[must_use]
pub fn ladder_scripts(spread: usize, max_depth: usize, steps: usize) -> (Script, Script) {
    let key = |i: usize| Assignment::new(vec![Value::str(&format!("s{i}"))]);
    let mut toggles = vec![0usize; spread];
    let op = |j: usize, toggles: &mut Vec<usize>| {
        let name = if toggles[j].is_multiple_of(2) { "St" } else { "UnSt" };
        toggles[j] += 1;
        (name, key(j))
    };
    let mut setup = Vec::new();
    for j in 0..spread {
        for _ in 0..(j * max_depth) / spread {
            let step = op(j, &mut toggles);
            setup.push(step);
        }
    }
    let timed = (0..steps).map(|i| op(i % spread, &mut toggles)).collect();
    (setup, timed)
}

/// A four-component "fleet" schema (trucks / drivers / routes / depots,
/// each root ⊲ one subclass) with create + toggle transactions per
/// component — the multi-component workload behind the sharded-ingress
/// and durability benches (and `examples/fleet_migration`). The
/// inventory below constrains component 0; other components read ∅
/// under its alphabet.
#[must_use]
pub fn fleet() -> (Schema, RoleAlphabet, TransactionSchema) {
    let mut b = SchemaBuilder::new();
    for (root, sub, key) in [
        ("TRUCK", "IN_SERVICE", "Vin"),
        ("DRIVER", "ON_SHIFT", "Badge"),
        ("ROUTE", "ACTIVE", "RId"),
        ("DEPOT", "OPEN", "DId"),
    ] {
        let r = b.class(root, &[key]).expect("fresh root");
        b.subclass(sub, &[r], &[]).expect("fresh subclass");
    }
    let schema = b.build().expect("valid schema");
    let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
    let ts = parse_transactions(
        &schema,
        r"
        transaction BuyTruck(x)    { create(TRUCK, { Vin = x }); }
        transaction Dispatch(x)    { specialize(TRUCK, IN_SERVICE, { Vin = x }, {}); }
        transaction Park(x)        { generalize(IN_SERVICE, { Vin = x }); }
        transaction HireDriver(x)  { create(DRIVER, { Badge = x }); }
        transaction StartShift(x)  { specialize(DRIVER, ON_SHIFT, { Badge = x }, {}); }
        transaction EndShift(x)    { generalize(ON_SHIFT, { Badge = x }); }
        transaction OpenRoute(x)   { create(ROUTE, { RId = x }); }
        transaction Activate(x)    { specialize(ROUTE, ACTIVE, { RId = x }, {}); }
        transaction BuildDepot(x)  { create(DEPOT, { DId = x }); }
        transaction OpenDepot(x)   { specialize(DEPOT, OPEN, { DId = x }, {}); }
    ",
    )
    .expect("fleet transactions validate");
    (schema, alphabet, ts)
}

/// The fleet inventory: trucks cycle between parked and in-service and
/// may leave the fleet; other components are unconstrained (they read ∅
/// under component 0's alphabet).
pub const FLEET_INVENTORY: &str = "∅* ([TRUCK] ∪ [IN_SERVICE])* ∅*";

/// A day of fleet operations: `n` single-object applications cycling
/// through the four components (dispatch/park, shifts, activations,
/// depot openings) over keys `t0…`, `d0…`, `r0…`, `p0…` modulo `per`.
#[must_use]
pub fn fleet_ops(n: usize, per: usize) -> Vec<(&'static str, Assignment)> {
    (0..n)
        .map(|i| {
            let k = i / 8;
            let (name, prefix) = match i % 8 {
                0 => ("Dispatch", "t"),
                1 => ("StartShift", "d"),
                2 => ("Activate", "r"),
                3 => ("OpenDepot", "p"),
                4 => ("Park", "t"),
                _ => ("EndShift", "d"),
            };
            (name, Assignment::new(vec![Value::str(&format!("{prefix}{}", k % per.max(1)))]))
        })
        .collect()
}

/// The pq synthesis host (Fig. 3 style: root R{A,B,C} with `k` leaf
/// classes).
#[must_use]
pub fn synthesis_host(k: usize) -> (Schema, RoleAlphabet) {
    let mut b = SchemaBuilder::new();
    let r = b.class("R", &["A", "B", "C"]).expect("fresh");
    for i in 0..k {
        b.subclass(&format!("c{i}"), &[r], &[]).expect("fresh");
    }
    let schema = b.build().expect("valid");
    let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
    (schema, alphabet)
}

/// A chain regex `c0 c1 … c(k−1)` over the host's leaf role sets.
#[must_use]
pub fn chain_regex(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    k: usize,
) -> migratory_automata::Regex {
    let syms: Vec<u32> = (0..k)
        .map(|i| {
            let rs = migratory_model::RoleSet::closure_of_named(schema, &[&format!("c{i}")])
                .expect("leaf exists");
            alphabet.symbol_of(rs).expect("role set interned")
        })
        .collect();
    migratory_automata::Regex::concat(
        syms.into_iter()
            .map(|s| migratory_automata::Regex::plus(migratory_automata::Regex::Sym(s)))
            .collect::<Vec<_>>(),
    )
}

/// The slim single-attribute chain schema with four transactions, whose
/// separator space is tiny (used to compare brute-force exploration with
/// graph-based decision).
#[must_use]
pub fn slim_chain() -> (Schema, RoleAlphabet, TransactionSchema) {
    let mut b = SchemaBuilder::new();
    let p = b.class("P", &["Id"]).expect("fresh");
    let s = b.subclass("S", &[p], &[]).expect("fresh");
    b.subclass("G", &[s], &[]).expect("fresh");
    let schema = b.build().expect("valid");
    let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
    let ts = parse_transactions(
        &schema,
        r"
        transaction Mk(x) { create(P, { Id = x }); }
        transaction Up(x) { specialize(P, S, { Id = x }, {}); }
        transaction Up2(x) { specialize(S, G, { Id = x }, {}); }
        transaction Dn(x) { generalize(S, { Id = x }); }
        transaction Rm(x) { delete(P, { Id = x }); }
    ",
    )
    .expect("validates");
    (schema, alphabet, ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        let (schema, _, ts) = university();
        assert_eq!(ts.len(), 4);
        let (_, _, db) = populated_university(10);
        assert_eq!(db.num_objects(), 10);
        db.check_invariants(&schema).unwrap();
        let (schema2, alphabet2) = synthesis_host(3);
        let r = chain_regex(&schema2, &alphabet2, 3);
        assert!(r.max_symbol().is_some());
        let (_, _, slim_ts) = slim_chain();
        assert_eq!(slim_ts.len(), 5);
    }

    #[test]
    fn apply_round_mutates() {
        let (schema, ts, mut db) = populated_university(5);
        for i in 0..6 {
            apply_round(&schema, &ts, &mut db, i);
        }
        db.check_invariants(&schema).unwrap();
    }
}

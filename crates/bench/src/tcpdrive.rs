//! A concurrent TCP client driver for the `migctl serve` wire protocol
//! (`core::enforce::net`, `docs/PROTOCOL.md`).
//!
//! Each connection is driven by two threads — a writer pipelining the
//! whole request script and a reader tallying reply lines — so the
//! driver saturates the server the way a pipelined network caller
//! would, without deadlocking on full socket buffers. Used by the
//! `experiments serve` row (apps/sec over TCP at 1/4/16 connections)
//! and the CI serve-smoke job.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Reply tallies of one [`drive_tcp`] run, summed over connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpDriveStats {
    /// Replies whose first token was `ok`.
    pub ok: usize,
    /// Replies whose first token was `violation`.
    pub violation: usize,
    /// Replies whose first token was `error` (or anything else).
    pub error: usize,
}

impl TcpDriveStats {
    /// Total replies received.
    #[must_use]
    pub fn total(&self) -> usize {
        self.ok + self.violation + self.error
    }
}

/// Drive one connection per script: connect, pipeline every request
/// line, read one reply per request and tally its first token. Returns
/// once every connection has received all its replies.
///
/// # Errors
/// Fails on connect/write/read errors or a reply count short of the
/// request count (server closed early).
pub fn drive_tcp(
    addr: impl ToSocketAddrs + Clone + Send + Sync,
    scripts: &[Vec<String>],
) -> std::io::Result<TcpDriveStats> {
    let eof = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed early");
    std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let addr = addr.clone();
                scope.spawn(move || -> std::io::Result<TcpDriveStats> {
                    let conn = TcpStream::connect(addr)?;
                    conn.set_nodelay(true)?;
                    let mut writer = BufWriter::new(conn.try_clone()?);
                    let reader = BufReader::new(conn);
                    std::thread::scope(|inner| {
                        inner.spawn(move || {
                            for line in script {
                                if writeln!(writer, "{line}").is_err() {
                                    return;
                                }
                            }
                            let _ = writer.flush();
                        });
                        let mut stats = TcpDriveStats::default();
                        let mut lines = reader.lines();
                        for _ in 0..script.len() {
                            let reply = lines.next().ok_or_else(eof)??;
                            match reply.split_whitespace().next() {
                                Some("ok") => stats.ok += 1,
                                Some("violation") => stats.violation += 1,
                                _ => stats.error += 1,
                            }
                        }
                        Ok(stats)
                    })
                })
            })
            .collect();
        let mut total = TcpDriveStats::default();
        for h in handles {
            let s = h.join().expect("driver thread panicked")?;
            total.ok += s.ok;
            total.violation += s.violation;
            total.error += s.error;
        }
        Ok(total)
    })
}

/// Split `ops` round-robin into `connections` request scripts of
/// `invoke Name(args…)` lines — the same striping the in-process
/// ingress benches use for their producers.
#[must_use]
pub fn invoke_scripts(
    ops: &[(&'static str, migratory_lang::Assignment)],
    connections: usize,
) -> Vec<Vec<String>> {
    let fmt = |(name, args): &(&str, migratory_lang::Assignment)| {
        let rendered: Vec<String> = args
            .values()
            .map(|v| match v {
                migratory_model::Value::Int(i) => i.to_string(),
                other => format!("\"{other}\""),
            })
            .collect();
        format!("invoke {name}({})", rendered.join(", "))
    };
    (0..connections.max(1))
        .map(|c| ops.iter().skip(c).step_by(connections.max(1)).map(fmt).collect())
        .collect()
}

/// Ask a serving endpoint to drain and exit (the `shutdown` verb);
/// returns the server's reply line.
///
/// # Errors
/// Fails on connect/write/read errors.
pub fn shutdown_server(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let conn = TcpStream::connect(addr)?;
    let mut writer = conn.try_clone()?;
    writer.write_all(b"shutdown\n")?;
    let mut reply = String::new();
    BufReader::new(conn).read_line(&mut reply)?;
    Ok(reply.trim().to_owned())
}

//! A concurrent TCP client driver for the `migctl serve` wire protocol
//! (`core::enforce::net`, `docs/PROTOCOL.md`).
//!
//! Two drivers share the reply-tally shape:
//!
//! * [`drive_tcp`] — two threads per connection (a writer pipelining
//!   the whole request script, a reader tallying reply lines), the
//!   way a small pool of pipelined network callers behaves;
//! * [`drive_tcp_mux`] — one thread multiplexing every connection over
//!   epoll with nonblocking sockets, mirroring the server's own event
//!   core. This is the only way a 1024-connection sweep fits a small
//!   machine, and it speaks both wire dialects: text `invoke`
//!   lines ([`mux_text_scripts`]) and length-prefixed binary frames
//!   ([`mux_binary_scripts`], `docs/PROTOCOL.md` § Binary framing).
//!
//! Used by the `experiments serve` connection sweep (apps/sec over TCP
//! at 1/16/256/1024 connections, text vs binary) and the CI serve-smoke
//! jobs.

use migratory_core::enforce::net::frame;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Reply tallies of one [`drive_tcp`] run, summed over connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpDriveStats {
    /// Replies whose first token was `ok`.
    pub ok: usize,
    /// Replies whose first token was `violation`.
    pub violation: usize,
    /// Replies whose first token was `error` (or anything else).
    pub error: usize,
}

impl TcpDriveStats {
    /// Total replies received.
    #[must_use]
    pub fn total(&self) -> usize {
        self.ok + self.violation + self.error
    }
}

/// Drive one connection per script: connect, pipeline every request
/// line, read one reply per request and tally its first token. Returns
/// once every connection has received all its replies.
///
/// # Errors
/// Fails on connect/write/read errors or a reply count short of the
/// request count (server closed early).
pub fn drive_tcp(
    addr: impl ToSocketAddrs + Clone + Send + Sync,
    scripts: &[Vec<String>],
) -> std::io::Result<TcpDriveStats> {
    let eof = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed early");
    std::thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let addr = addr.clone();
                scope.spawn(move || -> std::io::Result<TcpDriveStats> {
                    let conn = TcpStream::connect(addr)?;
                    conn.set_nodelay(true)?;
                    let mut writer = BufWriter::new(conn.try_clone()?);
                    let reader = BufReader::new(conn);
                    std::thread::scope(|inner| {
                        inner.spawn(move || {
                            for line in script {
                                if writeln!(writer, "{line}").is_err() {
                                    return;
                                }
                            }
                            let _ = writer.flush();
                        });
                        let mut stats = TcpDriveStats::default();
                        let mut lines = reader.lines();
                        for _ in 0..script.len() {
                            let reply = lines.next().ok_or_else(eof)??;
                            match reply.split_whitespace().next() {
                                Some("ok") => stats.ok += 1,
                                Some("violation") => stats.violation += 1,
                                _ => stats.error += 1,
                            }
                        }
                        Ok(stats)
                    })
                })
            })
            .collect();
        let mut total = TcpDriveStats::default();
        for h in handles {
            let s = h.join().expect("driver thread panicked")?;
            total.ok += s.ok;
            total.violation += s.violation;
            total.error += s.error;
        }
        Ok(total)
    })
}

/// Split `ops` round-robin into `connections` request scripts of
/// `invoke Name(args…)` lines — the same striping the in-process
/// ingress benches use for their producers.
#[must_use]
pub fn invoke_scripts(
    ops: &[(&'static str, migratory_lang::Assignment)],
    connections: usize,
) -> Vec<Vec<String>> {
    let fmt = |(name, args): &(&str, migratory_lang::Assignment)| {
        let rendered: Vec<String> = args
            .values()
            .map(|v| match v {
                migratory_model::Value::Int(i) => i.to_string(),
                other => format!("\"{other}\""),
            })
            .collect();
        format!("invoke {name}({})", rendered.join(", "))
    };
    (0..connections.max(1))
        .map(|c| ops.iter().skip(c).step_by(connections.max(1)).map(fmt).collect())
        .collect()
}

/// One pre-encoded request stream for [`drive_tcp_mux`]: the raw bytes
/// to pipeline down one connection, the reply count they are owed, and
/// the dialect the replies will arrive in.
pub struct MuxScript {
    /// The full request stream, ready for the wire.
    pub bytes: Vec<u8>,
    /// Replies owed (one per request in `bytes`).
    pub expected: usize,
    /// `true` when replies are binary frames, `false` for text lines.
    pub binary: bool,
}

/// Split `ops` round-robin into `connections` text-dialect
/// [`MuxScript`]s — [`invoke_scripts`] pre-joined for the mux driver.
#[must_use]
pub fn mux_text_scripts(
    ops: &[(&'static str, migratory_lang::Assignment)],
    connections: usize,
) -> Vec<MuxScript> {
    invoke_scripts(ops, connections)
        .into_iter()
        .map(|lines| {
            let mut bytes = Vec::new();
            for line in &lines {
                bytes.extend_from_slice(line.as_bytes());
                bytes.push(b'\n');
            }
            MuxScript { bytes, expected: lines.len(), binary: false }
        })
        .collect()
}

/// Split `ops` round-robin into `connections` binary-dialect
/// [`MuxScript`]s: one length-prefixed `REQ_INVOKE` frame per op.
#[must_use]
pub fn mux_binary_scripts(
    ops: &[(&'static str, migratory_lang::Assignment)],
    connections: usize,
) -> Vec<MuxScript> {
    (0..connections.max(1))
        .map(|c| {
            let mut bytes = Vec::new();
            let mut expected = 0usize;
            for (name, args) in ops.iter().skip(c).step_by(connections.max(1)) {
                let values: Vec<migratory_model::Value> = args.values().cloned().collect();
                frame::encode_invoke_frame(&mut bytes, name, &values);
                expected += 1;
            }
            MuxScript { bytes, expected, binary: true }
        })
        .collect()
}

/// Tally one connection's buffered reply bytes, consuming every
/// complete reply (text line or binary frame) off the front of `buf`.
fn drain_replies(
    buf: &mut Vec<u8>,
    binary: bool,
    stats: &mut TcpDriveStats,
) -> std::io::Result<usize> {
    let mut consumed = 0usize;
    let mut got = 0usize;
    loop {
        let rest = &buf[consumed..];
        if rest.is_empty() {
            break;
        }
        if binary {
            if rest[0] != frame::MAGIC {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected a reply frame, got leading byte {:#04x}", rest[0]),
                ));
            }
            match frame::scan(rest) {
                frame::Scan::Incomplete => break,
                frame::Scan::Oversized(len) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("oversized reply frame ({len} bytes)"),
                    ));
                }
                frame::Scan::Frame { kind, payload_len } => {
                    match kind {
                        frame::REP_OK => stats.ok += 1,
                        frame::REP_VIOLATION => stats.violation += 1,
                        _ => stats.error += 1,
                    }
                    consumed += frame::HEADER_LEN + payload_len;
                    got += 1;
                }
            }
        } else {
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else { break };
            let line = String::from_utf8_lossy(&rest[..nl]);
            match line.split_whitespace().next() {
                Some("ok") => stats.ok += 1,
                Some("violation") => stats.violation += 1,
                _ => stats.error += 1,
            }
            consumed += nl + 1;
            got += 1;
        }
    }
    buf.drain(..consumed);
    Ok(got)
}

/// Drive every script over its own connection from a single thread:
/// nonblocking sockets multiplexed with epoll, requests written as the
/// socket drains, replies tallied as they arrive. Scales to
/// thousand-connection sweeps without a thousand threads, and mixes
/// text- and binary-dialect connections freely in one run.
///
/// Each socket is registered once and its interest narrowed as it
/// progresses (write side dropped when the script is fully sent,
/// deregistered when the last reply lands), so a wakeup costs
/// O(ready connections) — the `poll(2)` version of this driver
/// re-scanned every unfinished socket per call, which at 1024
/// connections cost more than the server being measured.
///
/// # Errors
/// Fails on connect/write/read errors, malformed reply frames, or a
/// connection closing before its reply count is met.
pub fn drive_tcp_mux(
    addr: impl ToSocketAddrs,
    scripts: &[MuxScript],
) -> std::io::Result<TcpDriveStats> {
    use polling::{Epoll, EpollEvent, EPOLLIN, EPOLLOUT};
    use std::os::fd::AsRawFd;

    struct ConnState {
        stream: TcpStream,
        wpos: usize,
        inbuf: Vec<u8>,
        got: usize,
        /// Currently registered epoll interest; 0 = finished and
        /// deregistered.
        interest: u32,
    }
    let eof = || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed early");
    let want_of = |c: &ConnState, s: &MuxScript| {
        let mut want = 0;
        if c.wpos < s.bytes.len() {
            want |= EPOLLOUT;
        }
        if c.got < s.expected {
            want |= EPOLLIN;
        }
        want
    };

    // Connect every socket up front so slow accept ramps are not billed
    // to the first measured request.
    let addr = addr.to_socket_addrs()?.next().ok_or_else(eof)?;
    let mut conns = Vec::with_capacity(scripts.len());
    for _ in scripts {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        conns.push(ConnState { stream, wpos: 0, inbuf: Vec::new(), got: 0, interest: 0 });
    }

    let ep = Epoll::new()?;
    let mut remaining = 0usize;
    for (i, (c, s)) in conns.iter_mut().zip(scripts).enumerate() {
        let want = want_of(c, s);
        if want == 0 {
            continue; // empty script owed no replies
        }
        ep.add(c.stream.as_raw_fd(), want, i as u64)?;
        c.interest = want;
        remaining += 1;
    }

    let mut stats = TcpDriveStats::default();
    let mut events = vec![EpollEvent::zeroed(); 1024];
    while remaining > 0 {
        let n = ep.wait(&mut events, -1)?;
        for &e in &events[..n] {
            let i = e.token() as usize;
            let c = &mut conns[i];
            let s = &scripts[i];
            if c.interest == 0 {
                continue;
            }
            if e.ready(EPOLLOUT) && c.wpos < s.bytes.len() {
                loop {
                    match (&c.stream).write(&s.bytes[c.wpos..]) {
                        Ok(0) => return Err(eof()),
                        Ok(n) => {
                            c.wpos += n;
                            if c.wpos == s.bytes.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            if e.ready(EPOLLIN) || e.failed() {
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match (&c.stream).read(&mut chunk) {
                        Ok(0) => {
                            if c.got < s.expected {
                                return Err(eof());
                            }
                            break;
                        }
                        Ok(n) => c.inbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                c.got += drain_replies(&mut c.inbuf, s.binary, &mut stats)?;
                if c.got > s.expected {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "more replies than requests on one connection",
                    ));
                }
            }
            // Narrow the registration as the connection progresses;
            // a connection owed nothing more leaves the set entirely.
            let want = want_of(c, s);
            if want == 0 {
                ep.delete(c.stream.as_raw_fd())?;
                c.interest = 0;
                remaining -= 1;
            } else if want != c.interest {
                ep.modify(c.stream.as_raw_fd(), want, i as u64)?;
                c.interest = want;
            }
        }
    }
    Ok(stats)
}

/// Ask a serving endpoint to drain and exit (the `shutdown` verb);
/// returns the server's reply line.
///
/// # Errors
/// Fails on connect/write/read errors.
pub fn shutdown_server(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let conn = TcpStream::connect(addr)?;
    let mut writer = conn.try_clone()?;
    writer.write_all(b"shutdown\n")?;
    let mut reply = String::new();
    BufReader::new(conn).read_line(&mut reply)?;
    Ok(reply.trim().to_owned())
}

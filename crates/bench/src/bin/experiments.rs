//! Regenerate every experiment row of EXPERIMENTS.md.
//!
//! Usage: `cargo run -p migratory-bench --bin experiments --release [-- <id>]`
//! with ids: fig1-2, ex3.4, thm3.2, cor3.3, thm4.3, ex4.1, thm5.1,
//! baseline, enforce, enforce-large, sat-heavy, batch-admit, persist,
//! repl, serve, smoke, tail-smoke, flow, all (default).
//!
//! `enforce-large` additionally writes `BENCH_enforce.json` (throughput /
//! latency trajectory of the delta monitor vs the reference monitor,
//! the indexed-vs-scan `sat_heavy` comparison, and the sharded
//! `batch_admit` comparison, on 10k–1M-object databases) to the current
//! directory. `persist` writes `BENCH_persist.json` (time-to-recover
//! from the checkpoint chain + WAL tail vs full history replay at
//! 10k–1M objects, the admission-path checkpoint stall — O(dirty)
//! incremental capture vs the old full-snapshot encode pause — and
//! queued-ingress vs direct batch admission throughput).
//! `sat-heavy` and `batch-admit` print their rows without touching any
//! file; `smoke` runs tiny versions of all of them (the CI bench-smoke
//! entry point).

use migratory_bench::*;
use migratory_chomsky::turing::machines;
use migratory_core::tm_compile::{compile_tm, drive_word, standard_tm_schema, TmSpec};
use migratory_core::{
    analyze_families, decide_with_families, explore, AnalyzeOptions, ExploreConfig, Inventory,
    PatternKind,
};
use migratory_lang::Assignment;
use migratory_model::Instance;
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let all = which == "all";
    if all || which == "fig1-2" {
        fig1_2();
    }
    if all || which == "ex3.4" || which == "thm3.2" {
        thm3_2();
    }
    if all || which == "cor3.3" || which == "baseline" {
        cor3_3_baseline();
    }
    if all || which == "thm4.3" {
        thm4_3();
    }
    if all || which == "ex4.1" {
        ex4_1();
    }
    if all || which == "thm5.1" {
        thm5_1();
    }
    if all || which == "enforce" {
        enforce_row();
    }
    if all || which == "enforce-large" {
        enforce_large_row();
    }
    if which == "sat-heavy" {
        sat_heavy_rows(&[(100_000, 2_000, 100), (1_000_000, 2_000, 20)]);
    }
    if which == "batch-admit" {
        batch_admit_rows(&[(100_000, 1_024)]);
    }
    if which == "redefine-latency" {
        redefine_latency_rows(&[(10_000, 64), (100_000, 64), (1_000_000, 64)]);
    }
    if all || which == "persist" {
        // History scales with the store: a checkpointed monitor recovers
        // in O(snapshot + tail) no matter how long the run was, while
        // "recovery by replay" pays for every letter ever admitted.
        persist_row(
            &[(10_000, 16_384, 512), (100_000, 32_768, 512), (1_000_000, 131_072, 512)],
            &[(4_096, 16_384, 4)],
            &[(250_000, 16_384, 4)],
            &[(4_096, 65_536)],
            &[1, 16, 256, 1_024],
        );
    }
    if which == "repl" {
        // Prints the BENCH_persist.json `repl` fragment for splicing.
        println!("{}", repl_rows(&[(250_000, 16_384, 4)]));
    }
    if which == "serve" {
        serve_rows(&[(4_096, 65_536)], &[1, 16, 256, 1_024]);
    }
    if which == "tail-smoke" {
        tail_smoke();
    }
    if which == "smoke" {
        // Tiny versions of the new workloads — the CI bench-smoke entry.
        sat_heavy_rows(&[(2_000, 400, 50)]);
        batch_admit_rows(&[(2_000, 256)]);
        redefine_latency_rows(&[(2_000, 16)]);
        recover_rows(&[(2_000, 200, 64)]);
        ingress_rows(&[(512, 2_048, 4)]);
        repl_rows(&[(512, 2_048, 4)]);
        serve_rows(&[(256, 2_048)], &[1, 4]);
    }
    if all || which == "flow" {
        flow_families_row();
    }
}

fn enforce_row() {
    println!("== perf-enforce: runtime enforcement vs static certification ==");
    let (schema, alphabet, ts) = university();
    let inv =
        Inventory::parse_init(&schema, &alphabet, "∅* ([STUDENT]+ [GRAD_ASSIST]*)* ∅*").unwrap();
    let n = 64usize;
    let t1 = ts.get("T1").unwrap();
    let t2 = ts.get("T2").unwrap();
    let t3 = ts.get("T3").unwrap();
    let t4 = ts.get("T4").unwrap();
    let mut script: Vec<(&migratory_lang::Transaction, Assignment)> = Vec::new();
    for i in 0..n {
        use migratory_model::Value;
        let ssn = Value::str(&format!("s{i}"));
        script.push((
            t1,
            Assignment::new(vec![
                Value::str(&format!("n{i}")),
                ssn.clone(),
                Value::int(1990),
                Value::str("CS"),
            ]),
        ));
        script.push((
            t2,
            Assignment::new(vec![ssn.clone(), Value::int(50), Value::int(1), Value::str("D")]),
        ));
        script.push((t3, Assignment::new(vec![ssn.clone()])));
        script.push((t4, Assignment::new(vec![ssn])));
    }

    let t0 = Instant::now();
    let mut db = Instance::empty();
    for (t, args) in &script {
        migratory_lang::apply_transaction(&schema, &mut db, t, args).unwrap();
    }
    let raw = t0.elapsed();

    let t0 = Instant::now();
    let mut m = migratory_core::Monitor::new(&schema, &alphabet, &inv, PatternKind::All);
    for (t, args) in &script {
        m.try_apply(t, args).expect("conforming");
    }
    let checked = t0.elapsed();

    let t0 = Instant::now();
    let mut m = migratory_core::Monitor::new(&schema, &alphabet, &inv, PatternKind::All);
    assert!(m.certify(&ts).unwrap());
    let certify_once = t0.elapsed();
    let t0 = Instant::now();
    for (t, args) in &script {
        m.try_apply(t, args).expect("certified");
    }
    let certified = t0.elapsed();

    println!("  {} applications over {n} objects:", script.len());
    println!("{:>16}: {:>10.2?}", "raw interpreter", raw);
    println!(
        "{:>16}: {:>10.2?}  ({:.1}× raw)",
        "checked monitor",
        checked,
        checked.as_secs_f64() / raw.as_secs_f64()
    );
    println!(
        "{:>16}: {:>10.2?}  ({:.1}× raw; one-time certification {:?})",
        "certified",
        certified,
        certified.as_secs_f64() / raw.as_secs_f64(),
        certify_once
    );
    println!();
}

/// Large-database enforcement: bulk-load n objects in one step, then
/// measure steady-state single-object applications under (a) the raw
/// interpreter, (b) the delta/cohort monitor, (c) the reference monitor.
/// Writes `BENCH_enforce.json` with the throughput/latency trajectory.
fn enforce_large_row() {
    use migratory_core::enforce::Monitor;

    println!("== perf-enforce-large: O(touched) monitor vs whole-db rescan ==");
    let configs: [(usize, usize, usize); 3] =
        [(10_000, 400, 100), (100_000, 400, 60), (1_000_000, 200, 5)];
    let mut rows: Vec<String> = Vec::new();
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>9} {:>10} {:>10} {:>11}",
        "objects", "raw/s", "delta/s", "ref/s", "speedup", "p50 (µs)", "p99 (µs)", "p99.9 (µs)"
    );
    for &(n, steps_new, steps_ref) in &configs {
        let (schema, alphabet, _) = university();
        let inv =
            Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
        let ts = toggle_transactions(&schema);
        let bulk = bulk_create(&schema, n);
        let no_args = migratory_lang::Assignment::empty();

        // (a) Raw interpreter: the irreducible cost of the applications
        // themselves (sat-scan included) — no enforcement.
        let mut db = Instance::empty();
        migratory_lang::apply_transaction(&schema, &mut db, &bulk, &no_args).unwrap();
        let t0 = Instant::now();
        for i in 0..steps_new {
            let (name, args) = toggle_step(i, n);
            migratory_lang::apply_transaction(&schema, &mut db, ts.get(name).unwrap(), &args)
                .unwrap();
        }
        let raw_rate = steps_new as f64 / t0.elapsed().as_secs_f64();
        // Free the raw-path instance before timing (b): holding a dead
        // 1M-object heap across the bulk load inflates its allocation
        // costs ~2× and measures memory pressure, not the load path.
        drop(db);

        // (b) Delta/cohort monitor with per-step latencies.
        let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All);
        let t0 = Instant::now();
        m.try_apply(&bulk, &no_args).expect("bulk load conforms");
        let bulk_load = t0.elapsed();
        let mut lat: Vec<f64> = Vec::with_capacity(steps_new);
        let t_run = Instant::now();
        for i in 0..steps_new {
            let (name, args) = toggle_step(i, n);
            let t0 = Instant::now();
            m.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
            lat.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        let delta_rate = steps_new as f64 / t_run.elapsed().as_secs_f64();
        assert_eq!(m.last_touched(), Some(1), "steady-state steps touch one object");
        // Throughput trajectory over ten equal segments of the run: flat
        // means per-step cost does not grow with run length.
        let seg = (steps_new / 10).max(1);
        let trajectory: Vec<f64> =
            lat.chunks(seg).map(|c| c.len() as f64 / (c.iter().sum::<f64>() / 1e6)).collect();
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| sorted[(p * (sorted.len() - 1) as f64).round() as usize];
        let (p50, p99, p999) = (pct(0.50), pct(0.99), pct(0.999));

        // (c) Reference monitor (fewer steps: each one is O(|db|)).
        let mut r = Monitor::new_reference(&schema, &alphabet, &inv, PatternKind::All);
        r.try_apply(&bulk, &no_args).expect("bulk load conforms");
        let t0 = Instant::now();
        for i in 0..steps_ref {
            let (name, args) = toggle_step(i, n);
            r.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
        }
        let ref_rate = steps_ref as f64 / t0.elapsed().as_secs_f64();

        let speedup = delta_rate / ref_rate;
        println!(
            "{n:>10} {raw_rate:>12.0} {delta_rate:>12.0} {ref_rate:>12.1} {speedup:>8.1}× {p50:>10.1} {p99:>10.1} {p999:>11.1}"
        );
        let fmt_list =
            |v: &[f64]| v.iter().map(|x| format!("{x:.1}")).collect::<Vec<_>>().join(", ");
        rows.push(format!(
            r#"    {{
      "objects": {n},
      "bulk_load_ms": {:.2},
      "raw": {{ "steps": {steps_new}, "apps_per_sec": {raw_rate:.1} }},
      "delta": {{
        "steps": {steps_new},
        "apps_per_sec": {delta_rate:.1},
        "latency_us": {{ "p50": {p50:.1}, "p99": {p99:.1}, "p99.9": {p999:.1} }},
        "throughput_trajectory_apps_per_sec": [{}],
        "touched_per_step": 1
      }},
      "reference": {{ "steps": {steps_ref}, "apps_per_sec": {ref_rate:.1} }},
      "speedup_vs_reference": {speedup:.1}
    }}"#,
            bulk_load.as_secs_f64() * 1e3,
            fmt_list(&trajectory),
        ));
    }
    let sat_heavy = sat_heavy_rows(&[(100_000, 2_000, 100), (1_000_000, 2_000, 20)]);
    let batch_admit = batch_admit_rows(&[(100_000, 1_024)]);
    let redefine_latency = redefine_latency_rows(&[(10_000, 64), (100_000, 64), (1_000_000, 64)]);
    let json = format!(
        r#"{{
  "bench": "enforce_large_db",
  "workload": "bulk-load n persons in one step, then alternating single-object specialize/generalize toggles",
  "inventory": "∅* ([PERSON] ∪ [STUDENT])* ∅*",
  "kind": "all",
  "engines": {{
    "raw": "interpreter only, no enforcement (indexed Sat planning)",
    "delta": "Monitor::new — incremental delta/cohort engine",
    "reference": "Monitor::new_reference — whole-database rescan per application"
  }},
  "sizes": [
{}
  ],
{sat_heavy},
{batch_admit},
{redefine_latency}
}}
"#,
        rows.join(",\n")
    );
    std::fs::write("BENCH_enforce.json", &json).expect("write BENCH_enforce.json");
    println!("  (wrote BENCH_enforce.json)");
    println!();
}

/// `sat_heavy`: point-condition `Sat` evaluation on a bulk-loaded store —
/// the index-backed planner vs the preserved full-scan oracle
/// ([`Instance::sat_scan`]) — plus the interpreter-level guarded-rename
/// throughput that rides on it. `(objects, indexed queries, scan queries)`
/// per config; returns the `sat_heavy` JSON fragment.
fn sat_heavy_rows(configs: &[(usize, usize, usize)]) -> String {
    println!("== perf-sat-heavy: indexed Sat planning vs full-scan baseline ==");
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>14}",
        "objects", "indexed µs/q", "scan µs/q", "speedup", "renames/s"
    );
    let mut rows = Vec::new();
    for &(n, q_indexed, q_scan) in configs {
        let (schema, _, _) = university();
        let bulk = bulk_create(&schema, n);
        let no_args = Assignment::empty();
        let mut db = Instance::empty();
        migratory_lang::apply_transaction(&schema, &mut db, &bulk, &no_args).unwrap();

        let queries = point_conditions(&schema, n, q_indexed);
        let t0 = Instant::now();
        let mut hits = 0usize;
        for (p, c) in &queries {
            hits += db.sat(*p, c).len();
        }
        let indexed_us = t0.elapsed().as_secs_f64() * 1e6 / q_indexed as f64;

        let t0 = Instant::now();
        let mut scan_hits = 0usize;
        for (p, c) in queries.iter().take(q_scan) {
            scan_hits += db.sat_scan(*p, c).len();
        }
        let scan_us = t0.elapsed().as_secs_f64() * 1e6 / q_scan as f64;
        // Same queries → same answers (the property suite proves it in
        // general; this guards the bench itself).
        assert_eq!(
            queries.iter().take(q_scan).map(|(p, c)| db.sat(*p, c).len()).sum::<usize>(),
            scan_hits
        );

        // Interpreter level: each guarded rename evaluates one guard
        // literal and one point select, both planned from the index.
        let ts = sat_heavy_transactions(&schema);
        let ren = ts.get("Ren").unwrap();
        let steps = q_indexed.min(2_000);
        let t0 = Instant::now();
        for i in 0..steps {
            let args = sat_heavy_step(i, n);
            migratory_lang::apply_transaction(&schema, &mut db, ren, &args).unwrap();
        }
        let renames = steps as f64 / t0.elapsed().as_secs_f64();

        let speedup = scan_us / indexed_us;
        println!("{n:>10} {indexed_us:>14.2} {scan_us:>14.1} {speedup:>8.0}× {renames:>14.0}");
        rows.push(format!(
            r#"      {{
        "objects": {n},
        "queries": {q_indexed},
        "hits": {hits},
        "indexed_us_per_query": {indexed_us:.2},
        "scan_us_per_query": {scan_us:.1},
        "speedup_vs_scan": {speedup:.1},
        "guarded_renames_per_sec": {renames:.0}
      }}"#
        ));
    }
    println!();
    format!(
        r#"  "sat_heavy": {{
    "workload": "point Sat conditions (indexed key hits, misses, eq+ne conjunctions) on a bulk-loaded store; guarded point renames on top",
    "engines": {{
      "indexed": "Instance::sat — planned from the condition via the value/class indexes",
      "scan": "Instance::sat_scan — the preserved full-heap-scan oracle"
    }},
    "sizes": [
{}
    ]
  }}"#,
        rows.join(
            ",
"
        )
    )
}

/// `batch_admit`: a deep "career ladder" inventory (`∅* ([PERSON]+
/// [STUDENT]+)^32 ∅*`, ~64 DFA states) over a bulk-loaded store, with
/// climber objects staggered across the ladder so the cohort table holds
/// ~60 live cohorts. Admission then pays a cohort sweep + re-key per
/// application — once per *application* on the PR 1 single-threaded
/// delta engine, once per *block* per shard under
/// `ShardedMonitor::try_apply_batch`. `(objects, steps)` per config;
/// returns the `batch_admit` JSON fragment. Engines are built, set up
/// and measured one at a time so no measurement inherits another's
/// allocator pressure.
fn batch_admit_rows(configs: &[(usize, usize)]) -> String {
    use migratory_core::enforce::{Monitor, ShardedMonitor};

    const PAIRS: usize = 32;
    const SPREAD: usize = 256;
    const MAX_DEPTH: usize = 56;

    println!("== perf-batch-admit: sharded batch admission vs per-application ==");
    println!(
        "{:>10} {:>8} {:>7} {:>7} {:>12} {:>12} {:>9}",
        "objects", "cohorts", "shards", "batch", "single/s", "batched/s", "speedup"
    );
    let mut rows = Vec::new();
    for &(n, steps) in configs {
        let (schema, alphabet, _) = university();
        let inv = Inventory::parse_init(&schema, &alphabet, &ladder_inventory_src(PAIRS))
            .expect("ladder inventory parses");
        let ts = toggle_transactions(&schema);
        let bulk = bulk_create(&schema, n);
        let no_args = Assignment::empty();
        let (setup, timed) = ladder_scripts(SPREAD, MAX_DEPTH, steps);
        let resolve = |script: &[(&'static str, Assignment)]| -> Vec<(String, Assignment)> {
            script.iter().map(|(name, a)| ((*name).to_owned(), a.clone())).collect()
        };
        let setup = resolve(&setup);
        let timed = resolve(&timed);

        // (a) PR 1 baseline: the single-threaded delta engine, one
        // admission (cohort sweep included) per application.
        let (single_rate, single_steps, single_objects, cohorts) = {
            let mut single = Monitor::new(&schema, &alphabet, &inv, PatternKind::All);
            single.try_apply(&bulk, &no_args).expect("bulk load conforms");
            for (name, args) in &setup {
                single.try_apply(ts.get(name).unwrap(), args).expect("setup conforms");
            }
            let t0 = Instant::now();
            for (name, args) in &timed {
                single.try_apply(ts.get(name).unwrap(), args).expect("toggle conforms");
            }
            let rate = steps as f64 / t0.elapsed().as_secs_f64();
            (rate, single.steps(), single.db().num_objects(), MAX_DEPTH)
        };

        // (b) Sharded batch admission at several shard/batch shapes,
        // each on a freshly built and set-up monitor.
        let mut batch_rows = Vec::new();
        for &shards in &[2usize, 4] {
            for &batch in &[64usize, 256] {
                let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, shards);
                m.try_apply(&bulk, &no_args).expect("bulk load conforms");
                for block in setup.chunks(batch) {
                    let (done, err) =
                        m.try_apply_batch(block.iter().map(|(name, a)| (ts.get(name).unwrap(), a)));
                    assert_eq!((done, err), (block.len(), None), "setup conforms");
                }
                let t0 = Instant::now();
                for block in timed.chunks(batch) {
                    let (done, err) =
                        m.try_apply_batch(block.iter().map(|(name, a)| (ts.get(name).unwrap(), a)));
                    assert_eq!((done, err), (block.len(), None), "toggle batch conforms");
                }
                let rate = steps as f64 / t0.elapsed().as_secs_f64();
                // Single-component schema → oid striping: every stripe
                // reads every letter, in lockstep with the single engine.
                assert!(m.clocks().iter().all(|&c| c == single_steps), "same letters everywhere");
                assert_eq!(m.db().num_objects(), single_objects);
                let speedup = rate / single_rate;
                println!(
                    "{n:>10} {cohorts:>8} {shards:>7} {batch:>7} {single_rate:>12.0} {rate:>12.0} {speedup:>8.2}×"
                );
                batch_rows.push(format!(
                    r#"        {{ "shards": {shards}, "batch": {batch}, "apps_per_sec": {rate:.0}, "speedup_vs_single": {speedup:.2} }}"#
                ));
            }
        }
        rows.push(format!(
            r#"      {{
        "objects": {n},
        "steps": {steps},
        "ladder_pairs": {PAIRS},
        "staggered_climbers": {SPREAD},
        "single_delta_apps_per_sec": {single_rate:.0},
        "batched": [
{}
        ]
      }}"#,
            batch_rows.join(",\n")
        ));
    }
    println!();
    format!(
        r#"  "batch_admit": {{
    "workload": "deep career-ladder inventory (∅* ([PERSON]+ [STUDENT]+)^32 ∅*) over a bulk-loaded store, climbers staggered across ~56 ladder depths; single-object toggles admitted one-by-one (PR 1 engine, one cohort sweep per application) vs in blocks (sharded monitor, one cohort sweep per shard per block)",
    "sizes": [
{}
    ]
  }}"#,
        rows.join(",\n")
    )
}

/// `redefine-latency`: online constraint evolution on a bulk-loaded
/// store. Each measured step is one `Monitor::redefine` under live
/// toggle traffic, alternating between the base inventory and one that
/// appends a `[GRAD_ASSIST]*` retirement segment. The extra strings of
/// the wider language sit in their own DFA state that no live cohort
/// occupies, so every cohort stays viable in *both* directions (residue
/// 0) and the database keeps being checked across epochs. (A plain
/// superset like `([PERSON] ∪ [STUDENT] ∪ [GRAD_ASSIST])*` would NOT
/// work: tightening back merges grad-assist histories into the same
/// cohort state as the real population, and the conservative product
/// analysis quarantines everyone.) The cost of a redefinition is a
/// product construction over the *cohorts*, never a rescan of the
/// database — so the 1M-object p99 must stay within 10× of the
/// 10k-object p99. `(objects, redefines)` per config; returns the
/// `redefine_latency` JSON fragment.
fn redefine_latency_rows(configs: &[(usize, usize)]) -> String {
    use migratory_core::enforce::{Monitor, ResiduePolicy};

    println!("== perf-redefine: epoch-stamped redefinition under live traffic ==");
    println!(
        "{:>10} {:>10} {:>8} {:>10} {:>10}",
        "objects", "redefines", "epoch", "p50 (µs)", "p99 (µs)"
    );
    let mut rows = Vec::new();
    let mut p99_by_n: Vec<(usize, f64)> = Vec::new();
    for &(n, redefines) in configs {
        let (schema, alphabet, _) = university();
        let inv_a =
            Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
        let inv_b = Inventory::parse_init(
            &schema,
            &alphabet,
            "∅* ([PERSON] ∪ [STUDENT])* [GRAD_ASSIST]* ∅*",
        )
        .unwrap();
        let ts = toggle_transactions(&schema);
        let bulk = bulk_create(&schema, n);
        let no_args = Assignment::empty();
        let mut m = Monitor::new(&schema, &alphabet, &inv_a, PatternKind::All);
        m.try_apply(&bulk, &no_args).expect("bulk load conforms");
        // Spread the population across a few cohorts before evolving.
        for i in 0..64.min(n) {
            let (name, args) = toggle_step(i, n);
            m.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
        }
        let mut lat: Vec<f64> = Vec::with_capacity(redefines);
        for r in 0..redefines {
            let target = if r % 2 == 0 { &inv_b } else { &inv_a };
            let t0 = Instant::now();
            let out = m.redefine(target, ResiduePolicy::Quarantine).expect("alternation admits");
            lat.push(t0.elapsed().as_secs_f64() * 1e6);
            assert_eq!(out.residue, 0, "both directions keep every cohort viable");
            // Live traffic between redefinitions: the monitor keeps
            // admitting (and checking) under the epoch just installed.
            for i in 0..4.min(n) {
                let (name, args) = toggle_step(i, n);
                m.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
            }
        }
        assert_eq!(m.epoch(), redefines as u64, "one epoch per redefinition");
        assert_eq!(m.quarantined_total(), 0, "nothing fell out of the inventory");
        let mut sorted = lat.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| sorted[(p * (sorted.len() - 1) as f64).round() as usize];
        let (p50, p99) = (pct(0.50), pct(0.99));
        p99_by_n.push((n, p99));
        println!("{n:>10} {redefines:>10} {:>8} {p50:>10.1} {p99:>10.1}", m.epoch());
        rows.push(format!(
            r#"      {{ "objects": {n}, "redefines": {redefines}, "residue": 0, "latency_us": {{ "p50": {p50:.1}, "p99": {p99:.1} }} }}"#
        ));
    }
    let ratio = match (
        p99_by_n.iter().find(|&&(n, _)| n == 10_000),
        p99_by_n.iter().find(|&&(n, _)| n == 1_000_000),
    ) {
        (Some(&(_, small)), Some(&(_, large))) => {
            let ratio = large / small;
            assert!(
                ratio < 10.0,
                "1M-object redefine p99 ({large:.1}µs) exceeds 10× the 10k p99 ({small:.1}µs) \
                 — redefinition must be O(cohorts), never O(db)"
            );
            println!("  1M/10k p99 ratio: {ratio:.2}× (bound: 10×)");
            format!(",\n    \"p99_ratio_1m_vs_10k\": {ratio:.2}")
        }
        _ => String::new(),
    };
    println!();
    format!(
        r#"  "redefine_latency": {{
    "workload": "bulk-load n persons, spread 64 toggles, then alternate `redefine` between ∅* ([PERSON] ∪ [STUDENT])* ∅* and ∅* ([PERSON] ∪ [STUDENT])* [GRAD_ASSIST]* ∅* under live toggle traffic — every cohort viable in both directions, residue 0, one epoch per swap",
    "policy": "quarantine",
    "bound": "1M-object p99 within 10× of the 10k p99: redefinition is a product construction over cohorts, never a database rescan",
    "sizes": [
{}
    ]{ratio}
  }}"#,
        rows.join(",\n")
    )
}

/// `persist`: the durability ablation — writes `BENCH_persist.json`
/// with the `recover` (snapshot + WAL tail vs full history replay),
/// `ingress` (queued vs direct admission) and `serve` (admission over
/// TCP vs in-process ingress) comparisons.
fn persist_row(
    recover_cfgs: &[(usize, usize, usize)],
    ingress_cfgs: &[(usize, usize, usize)],
    repl_cfgs: &[(usize, usize, usize)],
    serve_cfgs: &[(usize, usize)],
    serve_conns: &[usize],
) {
    let recover = recover_rows(recover_cfgs);
    let ingress = ingress_rows(ingress_cfgs);
    let repl = repl_rows(repl_cfgs);
    let serve = serve_rows(serve_cfgs, serve_conns);
    let json = format!(
        r#"{{
  "bench": "persist",
{recover},
{ingress},
{repl},
{serve}
}}
"#
    );
    std::fs::write("BENCH_persist.json", &json).expect("write BENCH_persist.json");
    println!("  (wrote BENCH_persist.json)");
    println!();
}

/// `recover`: bulk-load n objects into a file-WAL-backed monitor, take
/// a **background** base checkpoint (the admission thread pays only the
/// state capture + log rotation), run `history` toggle letters, take a
/// **background incremental** checkpoint (O(dirty) capture), run `tail`
/// more letters, "crash", then time `Wal::load` + `Monitor::recover`
/// (folding the checkpoint chain and replaying only the tail) against
/// re-running the entire transaction history through a fresh monitor.
/// Recovered state must be byte-identical (canonical snapshot encoding)
/// to the crashed monitor's. The headline durability number is
/// `checkpoint_stall_ms`: the time the admission path is blocked to
/// produce the steady-state (incremental) checkpoint that gates WAL
/// truncation — formerly the full-snapshot encode pause.
/// `(objects, history, tail)` per config; returns the `recover` JSON
/// fragment.
fn recover_rows(configs: &[(usize, usize, usize)]) -> String {
    use migratory_core::enforce::{CheckpointData, Monitor, Snapshotter, Wal};
    use std::sync::{Arc, Mutex};

    println!("== perf-recover: checkpoint chain + wal tail vs full history replay ==");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "objects",
        "letters",
        "snap MB",
        "encode ms",
        "ckpt stall",
        "seal ms",
        "recover ms",
        "replay ms",
        "speedup"
    );
    let mut rows = Vec::new();
    for &(n, history, tail) in configs {
        let (schema, alphabet, _) = university();
        let inv =
            Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
        let ts = toggle_transactions(&schema);
        let bulk = bulk_create(&schema, n);
        let no_args = Assignment::empty();

        let dir = std::env::temp_dir()
            .join(format!("migratory-bench-recover-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Arc::new(Mutex::new(Wal::open(&dir).expect("wal dir")));
        let mut snapshotter = Snapshotter::spawn();
        let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All)
            .with_sink(wal.clone() as migratory_core::enforce::SharedSink);
        live.try_apply(&bulk, &no_args).expect("bulk load conforms");
        // Base checkpoint, backgrounded: the admission thread pays the
        // full-state capture (clone) + log rotation, not the encode.
        let snap = live.checkpoint_full();
        let snap_bytes_len = {
            // The old admission-path cost, for contrast: encoding the
            // full snapshot inline.
            let t0 = Instant::now();
            let bytes = snap.encode();
            let encode_ms = t0.elapsed().as_secs_f64() * 1e3;
            (bytes.len(), encode_ms)
        };
        let (snap_bytes, encode_ms) = snap_bytes_len;
        let job = wal
            .lock()
            .unwrap()
            .begin_checkpoint(CheckpointData::Full(snap))
            .expect("stage base checkpoint");
        snapshotter.submit(job).expect("snapshotter accepts");
        for i in 0..history {
            let (name, args) = toggle_step(i, n);
            live.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
        }
        // The steady-state checkpoint that gates WAL truncation: an
        // O(dirty) capture + a log rotation on the admission path,
        // encode/fsync/prune on the snapshotter thread.
        let t0 = Instant::now();
        let delta = live.checkpoint_delta();
        let dirty = delta.num_dirty_objects();
        let capture_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let job = wal
            .lock()
            .unwrap()
            .begin_checkpoint(CheckpointData::Incremental(delta))
            .expect("stage incremental checkpoint");
        let seal_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stall_ms = capture_ms + seal_ms;
        snapshotter.submit(job).expect("snapshotter accepts");
        for i in history..history + tail {
            let (name, args) = toggle_step(i, n);
            live.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
        }
        let crash_state = live.snapshot().encode();
        snapshotter.finish().expect("background checkpoints durable");
        drop(wal); // crash

        // Recover: fold the checkpoint chain, replay only the WAL tail.
        let t0 = Instant::now();
        let (snap, blocks) = Wal::load(&dir).expect("load wal directory");
        let recovered = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, blocks)
            .expect("recovery succeeds");
        let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            recovered.snapshot().encode(),
            crash_state,
            "recovered state must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);

        // The alternative: replay the full transaction history.
        let t0 = Instant::now();
        let mut replayed = Monitor::new(&schema, &alphabet, &inv, PatternKind::All);
        replayed.try_apply(&bulk, &no_args).expect("bulk load conforms");
        for i in 0..history + tail {
            let (name, args) = toggle_step(i, n);
            replayed.try_apply(ts.get(name).unwrap(), &args).expect("toggle conforms");
        }
        let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(replayed.snapshot().encode(), crash_state, "replay is deterministic");

        let letters = 1 + history + tail;
        let speedup = replay_ms / recover_ms;
        let mb = snap_bytes as f64 / (1024.0 * 1024.0);
        println!(
            "{n:>10} {letters:>10} {mb:>12.2} {encode_ms:>12.2} {stall_ms:>12.2} {seal_ms:>12.3} {recover_ms:>12.2} {replay_ms:>12.2} {speedup:>8.1}×"
        );
        rows.push(format!(
            r#"      {{
        "objects": {n},
        "letters": {letters},
        "wal_tail_letters": {tail},
        "snapshot_bytes": {snap_bytes},
        "full_snapshot_encode_ms": {encode_ms:.2},
        "checkpoint_stall_ms": {stall_ms:.2},
        "checkpoint_capture_ms": {capture_ms:.2},
        "checkpoint_seal_ms": {seal_ms:.3},
        "checkpoint_dirty_objects": {dirty},
        "recover_ms": {recover_ms:.2},
        "full_replay_ms": {replay_ms:.2},
        "speedup_vs_replay": {speedup:.1},
        "byte_identical": true
      }}"#
        ));
    }
    println!();
    format!(
        r#"  "recover": {{
    "workload": "bulk-load n persons into a file-WAL monitor, background base checkpoint, toggle history, background O(dirty) incremental checkpoint (checkpoint_stall_ms = admission-path blockage = capture_ms, the O(dirty) state clone, + seal_ms, the begin_checkpoint log rotation, amortized by the pre-created spare segment; encode/fsync run on the Snapshotter thread), toggle a tail, crash; Wal::load + Monitor::recover (fold chain, replay tail) vs re-running every transaction through a fresh monitor; both must reproduce the crashed state byte-identically",
    "sizes": [
{}
    ]
  }}"#,
        rows.join(",\n")
    )
}

/// `ingress`: queued concurrent admission (`enforce::ingress`, per-shard
/// lanes, emergent batching, group commit) vs direct single-caller
/// batch admission on the four-component fleet workload.
/// `(objects per component, ops, producers)` per config; returns the
/// `ingress` JSON fragment.
fn ingress_rows(configs: &[(usize, usize, usize)]) -> String {
    use migratory_core::enforce::{
        ingress, AdmissionMetrics, DurabilityPolicy, FsyncPolicy, Health, Histogram, IngressConfig,
        ShardedMonitor, StepPolicy, Wal,
    };
    use std::sync::{Arc, Mutex};

    println!("== perf-ingress: queued concurrent admission vs direct batches ==");
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>14} {:>14} {:>7}",
        "objects",
        "ops",
        "producers",
        "direct/s",
        "queued/s",
        "durable q/s",
        "pipelined/s",
        "blocks"
    );
    let mut rows = Vec::new();
    for &(per, ops, producers) in configs {
        let (schema, alphabet, ts) = fleet();
        let inv = Inventory::parse_init(&schema, &alphabet, FLEET_INVENTORY).unwrap();
        let day = fleet_ops(ops, per);
        let load = |m: &mut ShardedMonitor<'_>| {
            for (mk, prefix) in
                [("BuyTruck", "t"), ("HireDriver", "d"), ("OpenRoute", "r"), ("BuildDepot", "p")]
            {
                let t = ts.get(mk).unwrap();
                let bulk: Vec<(&migratory_lang::Transaction, Assignment)> = (0..per)
                    .map(|i| {
                        (
                            t,
                            Assignment::new(vec![migratory_model::Value::str(&format!(
                                "{prefix}{i}"
                            ))]),
                        )
                    })
                    .collect();
                let (done, err) = m.try_apply_batch(bulk.iter().map(|(t, a)| (*t, a)));
                assert_eq!((done, err), (per, None), "bulk load conforms");
            }
        };

        // (a) Direct: one caller feeding try_apply_batch blocks of 256.
        let direct_rate = {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 4)
                .with_policy(StepPolicy::OnlyChanging);
            load(&mut m);
            let t0 = Instant::now();
            for chunk in day.chunks(256) {
                let (done, err) =
                    m.try_apply_batch(chunk.iter().map(|(name, a)| (ts.get(name).unwrap(), a)));
                assert_eq!((done, err), (chunk.len(), None), "day conforms");
            }
            ops as f64 / t0.elapsed().as_secs_f64()
        };

        // (b/c) Queued: `producers` pipelining callers over per-shard
        // lanes, volatile and WAL-durable.
        let queued = |sink: Option<migratory_core::enforce::SharedSink>| -> (f64, usize) {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 4)
                .with_policy(StepPolicy::OnlyChanging);
            if let Some(s) = sink {
                m = m.with_sink(s);
            }
            load(&mut m);
            let cfg = IngressConfig { queue_capacity: 1024, max_block: 256 };
            let t0 = Instant::now();
            let ((), stats) = ingress::serve(&mut m, &cfg, |client| {
                std::thread::scope(|scope| {
                    for p in 0..producers {
                        let day = &day;
                        let ts = &ts;
                        scope.spawn(move || {
                            let tickets: Vec<_> = day
                                .iter()
                                .skip(p)
                                .step_by(producers)
                                .map(|(name, a)| client.post(ts.get(name).unwrap(), a.clone()))
                                .collect();
                            for t in tickets {
                                t.wait().expect("day conforms");
                            }
                        });
                    }
                });
            });
            assert_eq!(stats.admitted, ops);
            (ops as f64 / t0.elapsed().as_secs_f64(), stats.blocks)
        };
        let (queued_rate, blocks) = queued(None);
        let wal_dir =
            std::env::temp_dir().join(format!("migratory-bench-wal-{}-{per}", std::process::id()));
        let _ = std::fs::remove_dir_all(&wal_dir);
        let wal = Wal::open(&wal_dir).expect("wal dir");
        let (durable_rate, _) = queued(Some(Arc::new(Mutex::new(wal))));
        let _ = std::fs::remove_dir_all(&wal_dir);

        // (d) Pipelined group commit: same producers, but the WAL
        // append + one-fsync-per-batch run on the committer thread and
        // acks are released only once durable (`FsyncPolicy::Batch`).
        // The (c) run above is the before-shape: append + sync inline
        // on the admission worker, serialized into every block.
        let (pipelined_rate, p50, p99, p999, amortization) = {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 4)
                .with_policy(StepPolicy::OnlyChanging);
            load(&mut m);
            let pipe_dir = std::env::temp_dir()
                .join(format!("migratory-bench-pipe-{}-{per}", std::process::id()));
            let _ = std::fs::remove_dir_all(&pipe_dir);
            let wal = Arc::new(Mutex::new(
                Wal::open(&pipe_dir).expect("wal dir").with_fsync(FsyncPolicy::Batch),
            ));
            let metrics = AdmissionMetrics::new(4);
            let health = Health::new();
            let cfg = IngressConfig { queue_capacity: 1024, max_block: 256 };
            let t0 = Instant::now();
            let ((), stats) = ingress::serve_pipelined(
                &mut m,
                &cfg,
                &DurabilityPolicy::default(),
                &health,
                wal,
                Some(&metrics),
                0,
                |_| {},
                |client| {
                    std::thread::scope(|scope| {
                        for p in 0..producers {
                            let day = &day;
                            let ts = &ts;
                            scope.spawn(move || {
                                let tickets: Vec<_> = day
                                    .iter()
                                    .skip(p)
                                    .step_by(producers)
                                    .map(|(name, a)| client.post(ts.get(name).unwrap(), a.clone()))
                                    .collect();
                                for t in tickets {
                                    t.wait().expect("day conforms");
                                }
                            });
                        }
                    });
                },
            );
            assert_eq!(stats.admitted, ops);
            let rate = ops as f64 / t0.elapsed().as_secs_f64();
            let _ = std::fs::remove_dir_all(&pipe_dir);
            let agg = Histogram::new();
            for h in &metrics.commit_latency_us {
                agg.merge(h);
            }
            let batches = metrics.fsync_batch.count().max(1);
            #[allow(clippy::cast_precision_loss)]
            let amortization = metrics.fsync_batch.sum() as f64 / batches as f64;
            (
                rate,
                agg.quantile_bound(0.50),
                agg.quantile_bound(0.99),
                agg.quantile_bound(0.999),
                amortization,
            )
        };

        let objects = per * 4;
        println!(
            "{objects:>10} {ops:>8} {producers:>10} {direct_rate:>12.0} {queued_rate:>12.0} {durable_rate:>14.0} {pipelined_rate:>14.0} {blocks:>7}"
        );
        println!(
            "  pipelined commit latency ≤ p50 {p50}µs / p99 {p99}µs / p99.9 {p999}µs, \
             {amortization:.1} block(s)/sync"
        );
        rows.push(format!(
            r#"      {{
        "objects": {objects},
        "ops": {ops},
        "producers": {producers},
        "direct_batch_apps_per_sec": {direct_rate:.0},
        "queued_apps_per_sec": {queued_rate:.0},
        "queued_durable_apps_per_sec": {durable_rate:.0},
        "pipelined_durable_apps_per_sec": {pipelined_rate:.0},
        "pipelined_blocks_per_sync": {amortization:.1},
        "pipelined_commit_latency_us": {{ "p50": {p50}, "p99": {p99}, "p99.9": {p999} }},
        "queued_blocks": {blocks}
      }}"#
        ));
    }
    println!();
    format!(
        r#"  "ingress": {{
    "workload": "four-component fleet; a day of single-object ops admitted (a) by one caller in direct 256-blocks, (b) by N pipelining producers through the bounded per-shard ingress lanes (emergent batching), (c) same with a file WAL appended + synced inline on the admission worker, (d) same WAL behind the two-stage pipeline (committer thread, one fsync per batch, acks after durability; commit_latency_us = drain-to-durable-release, log2 bucket upper bounds)",
    "sizes": [
{}
    ]
  }}"#,
        rows.join(",\n")
    )
}

/// `repl`: the ack-policy dial — the same pipelined fleet day, with a
/// live replica attached over loopback TCP (snapshot bootstrap, then
/// every committed batch teed down the socket). `ack-on-local-fsync`
/// ships asynchronously (an ok promises the local fsync only, the
/// replica trails by its apply lag); `ack-on-replica-1` holds each
/// batch's tickets until the standby has applied the bytes and made
/// them durable in its own WAL — the ok now covers the survivor, and
/// the round trip shows up in `ship_wait_us`. Both runs end with the
/// replica's live state byte-identical to the primary's.
/// `(objects per component, ops, producers)` per config; returns the
/// `repl` JSON fragment.
fn repl_rows(configs: &[(usize, usize, usize)]) -> String {
    use migratory_core::enforce::repl::{acceptor, puller};
    use migratory_core::enforce::{
        ingress, AckPolicy, AdmissionMetrics, DurabilityPolicy, FsyncPolicy, Health, Histogram,
        IngressConfig, ReplicaCtl, Replicator, ShardedMonitor, StepPolicy, Wal,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    println!("== perf-repl: the replication ack-policy dial ==");
    println!(
        "{:>10} {:>8} {:>10} {:>14} {:>14}",
        "objects", "ops", "producers", "local-fsync/s", "replica-1/s"
    );

    struct Run {
        rate: f64,
        commit_p50: u64,
        ship_p50: u64,
    }
    let run = |per: usize, ops: usize, producers: usize, policy: AckPolicy, tag: &str| -> Run {
        let (schema, alphabet, ts) = fleet();
        let inv = Inventory::parse_init(&schema, &alphabet, FLEET_INVENTORY).unwrap();
        let day = fleet_ops(ops + 1, per);
        let (warm, day) = day.split_first().expect("day is non-empty");
        let pid = std::process::id();
        let dir_p = std::env::temp_dir().join(format!("migratory-bench-repl-p-{pid}-{per}-{tag}"));
        let dir_r = std::env::temp_dir().join(format!("migratory-bench-repl-r-{pid}-{per}-{tag}"));
        let _ = std::fs::remove_dir_all(&dir_p);
        let _ = std::fs::remove_dir_all(&dir_r);
        let wal_p = Arc::new(Mutex::new(
            Wal::open(&dir_p).expect("primary wal").with_fsync(FsyncPolicy::Batch),
        ));
        let wal_r = Arc::new(Mutex::new(
            Wal::open(&dir_r).expect("replica wal").with_fsync(FsyncPolicy::Batch),
        ));
        let metrics = Arc::new(AdmissionMetrics::new(4));
        let repl = Arc::new(
            Replicator::bind("127.0.0.1:0")
                .expect("bind replicator")
                .with_policy(policy)
                .with_ack_timeout(Duration::from_secs(60))
                .with_metrics(metrics.clone()),
        );
        let repl_addr = repl.local_addr().to_string();
        let ctl = Arc::new(ReplicaCtl::new(&repl_addr));
        let stop_accept = AtomicBool::new(false);
        let cfg = IngressConfig { queue_capacity: 1024, max_block: 256 };
        let elapsed = Mutex::new(0f64);

        let (primary_snap, replica_snap) = std::thread::scope(|scope| {
            let replica = scope.spawn(|| {
                let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 4)
                    .with_policy(StepPolicy::OnlyChanging);
                let health = Health::new();
                ingress::serve_pipelined(
                    &mut m,
                    &cfg,
                    &DurabilityPolicy::default(),
                    &health,
                    wal_r.clone(),
                    None,
                    0,
                    |_| {},
                    |client| {
                        std::thread::scope(|ps| {
                            ps.spawn(|| puller(&repl_addr, &ctl, &wal_r, client, None));
                            while !ctl.stopped() {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        });
                    },
                );
                assert!(!health.is_degraded(), "replica degraded: {}", health.reason());
                m.snapshot().encode()
            });

            // The primary: bulk-load the fleet, base-checkpoint it (the
            // bootstrap snapshot ships from a barrier, so the replica
            // starts from exactly this state), then run the day.
            let mut pm = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 4)
                .with_policy(StepPolicy::OnlyChanging);
            for (mk, prefix) in
                [("BuyTruck", "t"), ("HireDriver", "d"), ("OpenRoute", "r"), ("BuildDepot", "p")]
            {
                let t = ts.get(mk).unwrap();
                let bulk: Vec<(&migratory_lang::Transaction, Assignment)> = (0..per)
                    .map(|i| {
                        (
                            t,
                            Assignment::new(vec![migratory_model::Value::str(&format!(
                                "{prefix}{i}"
                            ))]),
                        )
                    })
                    .collect();
                let (done, err) = pm.try_apply_batch(bulk.iter().map(|(t, a)| (*t, a)));
                assert_eq!((done, err), (per, None), "bulk load conforms");
            }
            wal_p.lock().unwrap().write_snapshot(&pm.checkpoint_full()).expect("base checkpoint");
            let health = Health::new();
            ingress::serve_pipelined_repl(
                &mut pm,
                &cfg,
                &DurabilityPolicy::default(),
                &health,
                wal_p.clone(),
                Some(&*metrics),
                Some(repl.clone()),
                0,
                |_| {},
                |client| {
                    std::thread::scope(|ps| {
                        ps.spawn(|| acceptor(&repl, client, &stop_accept));
                        while repl.live_replicas() < 1 {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        // Warm-up: one op through the full tee, then
                        // drain the standby to the shipped horizon —
                        // the timed day below sees a warm, attached
                        // replica, not its bootstrap snapshot fold.
                        // (That fold is the warm-up batch's wait; it
                        // owns the histograms' max, so the row reports
                        // the p50 bound only.)
                        client
                            .post(ts.get(warm.0).unwrap(), warm.1.clone())
                            .wait()
                            .expect("warm-up conforms");
                        while ctl.stream_horizon() < repl.horizon() {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        let t0 = Instant::now();
                        std::thread::scope(|drivers| {
                            for p in 0..producers {
                                let (day, ts) = (&day, &ts);
                                drivers.spawn(move || {
                                    let tickets: Vec<_> = day
                                        .iter()
                                        .skip(p)
                                        .step_by(producers)
                                        .map(|(name, a)| {
                                            client.post(ts.get(name).unwrap(), a.clone())
                                        })
                                        .collect();
                                    for t in tickets {
                                        t.wait().expect("day conforms");
                                    }
                                });
                            }
                        });
                        *elapsed.lock().unwrap() = t0.elapsed().as_secs_f64();
                        // Let the standby drain to the shipped horizon
                        // (a no-op under replica-1, where every ack
                        // already covered it) so both live states can
                        // be compared byte for byte.
                        while ctl.stream_horizon() < repl.horizon() {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        ctl.request_stop();
                        stop_accept.store(true, Ordering::SeqCst);
                    });
                },
            );
            repl.close();
            assert!(!health.is_degraded(), "primary degraded: {}", health.reason());
            (pm.snapshot().encode(), replica.join().expect("replica thread"))
        });
        assert_eq!(primary_snap, replica_snap, "replica trails into byte-identity");
        let _ = std::fs::remove_dir_all(&dir_p);
        let _ = std::fs::remove_dir_all(&dir_r);

        let commit = Histogram::new();
        for h in &metrics.commit_latency_us {
            commit.merge(h);
        }
        let secs = *elapsed.lock().unwrap();
        Run {
            rate: ops as f64 / secs,
            commit_p50: commit.quantile_bound(0.50),
            ship_p50: metrics.repl_ship_wait_us.quantile_bound(0.50),
        }
    };

    let mut rows = Vec::new();
    for &(per, ops, producers) in configs {
        let local = run(per, ops, producers, AckPolicy::LocalFsync, "local");
        let replica1 = run(per, ops, producers, AckPolicy::ReplicaK(1), "replica1");
        let objects = per * 4;
        println!(
            "{objects:>10} {ops:>8} {producers:>10} {:>14.0} {:>14.0}",
            local.rate, replica1.rate
        );
        println!(
            "  replica-1 batch commit latency ≤ p50 {}µs (ship wait ≤ p50 {}µs)",
            replica1.commit_p50, replica1.ship_p50
        );
        rows.push(format!(
            r#"      {{
        "objects": {objects},
        "ops": {ops},
        "producers": {producers},
        "ack_local_fsync": {{ "apps_per_sec": {:.0}, "commit_latency_us_p50": {} }},
        "ack_replica_1": {{ "apps_per_sec": {:.0}, "commit_latency_us_p50": {}, "ship_wait_us_p50": {} }},
        "replica_byte_identical": true
      }}"#,
            local.rate,
            local.commit_p50,
            replica1.rate,
            replica1.commit_p50,
            replica1.ship_p50,
        ));
    }
    println!();
    format!(
        r#"  "repl": {{
    "workload": "four-component fleet behind the pipelined committer with a live replica attached over loopback TCP (snapshot bootstrap at a barrier, committed batches teed down the socket); a day of single-object ops from N pipelining producers, acked under ack-on-local-fsync (tee is asynchronous, ok promises the local fsync only) vs ack-on-replica-1 (tickets held until the standby applied the batch and made it durable in its own WAL; ship_wait_us = committer-side wait for the cumulative ack horizon, log2 bucket upper bound; p50 only — the dial's cost amortizes across a handful of emergent megabatches, so tails are single-sample noise and the warm-up batch, which pays the standby's bootstrap fold, owns the max); timed after a warm-up op + drain to the shipped horizon, and both runs end with the standby byte-identical to the primary",
    "sizes": [
{}
    ]
  }}"#,
        rows.join(",\n")
    )
}

/// `serve`: admission over the TCP wire front end (`enforce::net`,
/// `migctl serve`'s engine) vs the in-process ingress — the cost of
/// moving from linked callers to network-shaped callers that share
/// nothing with the engine but the protocol. `(objects per component,
/// ops)` per config; each config is measured at every connection count
/// in `conn_counts`, in both wire dialects (text `invoke` lines and
/// length-prefixed binary frames, `migratory-bench`'s epoll-multiplexed
/// [`drive_tcp_mux`] driver), plus one WAL-durable run at the middle
/// connection count. Returns the `serve` JSON fragment.
fn serve_rows(configs: &[(usize, usize)], conn_counts: &[usize]) -> String {
    use migratory_core::enforce::{
        net, AdmissionMetrics, FsyncPolicy, Histogram, IngressConfig, ShardedMonitor, StepPolicy,
        Wal,
    };
    use std::net::TcpListener;
    use std::sync::{mpsc, Arc, Mutex};

    println!("== perf-serve: admission over TCP vs in-process ingress ==");
    println!(
        "{:>10} {:>8} {:>6} {:>12} {:>12} {:>12}",
        "objects", "ops", "conns", "inproc/s", "tcp/s", "tcp bin/s"
    );
    let mut rows = Vec::new();
    for &(per, ops) in configs {
        let (schema, alphabet, ts) = fleet();
        let inv = Inventory::parse_init(&schema, &alphabet, FLEET_INVENTORY).unwrap();
        let day = fleet_ops(ops, per);
        let load = |m: &mut ShardedMonitor<'_>| {
            for (mk, prefix) in
                [("BuyTruck", "t"), ("HireDriver", "d"), ("OpenRoute", "r"), ("BuildDepot", "p")]
            {
                let t = ts.get(mk).unwrap();
                let bulk: Vec<(&migratory_lang::Transaction, Assignment)> = (0..per)
                    .map(|i| {
                        (
                            t,
                            Assignment::new(vec![migratory_model::Value::str(&format!(
                                "{prefix}{i}"
                            ))]),
                        )
                    })
                    .collect();
                let (done, err) = m.try_apply_batch(bulk.iter().map(|(t, a)| (*t, a)));
                assert_eq!((done, err), (per, None), "bulk load conforms");
            }
        };
        let cfg = IngressConfig { queue_capacity: 1024, max_block: 256 };

        // (a) In-process baseline: 4 pipelining producer threads over
        // the same lanes — the "callers link the crate" world.
        let inproc_rate = {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 4)
                .with_policy(StepPolicy::OnlyChanging);
            load(&mut m);
            let t0 = Instant::now();
            let ((), stats) = migratory_core::enforce::ingress::serve(&mut m, &cfg, |client| {
                std::thread::scope(|scope| {
                    for p in 0..4 {
                        let day = &day;
                        let ts = &ts;
                        scope.spawn(move || {
                            let tickets: Vec<_> = day
                                .iter()
                                .skip(p)
                                .step_by(4)
                                .map(|(name, a)| client.post(ts.get(name).unwrap(), a.clone()))
                                .collect();
                            for t in tickets {
                                t.wait().expect("day conforms");
                            }
                        });
                    }
                });
            });
            assert_eq!(stats.admitted, ops);
            ops as f64 / t0.elapsed().as_secs_f64()
        };

        // (b) Over the wire, volatile and durable: stand the server up
        // in-process on an ephemeral port, drive it with `connections`
        // multiplexed nonblocking TCP clients in either dialect, shut
        // it down gracefully. A durable run hands the WAL to the
        // server config, which routes admission through the two-stage
        // pipeline (committer thread, one fsync per batch under
        // `FsyncPolicy::Batch`) and stamps the shared metrics.
        let serve_once = |connections: usize,
                          binary: bool,
                          durable: Option<(Arc<Mutex<Wal>>, Arc<AdmissionMetrics>)>|
         -> (f64, migratory_core::enforce::net::NetStats) {
            let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
            // Deepen the accept backlog before the driver exists:
            // `serve` re-arms it too, but on one core the connect burst
            // can outrun the server thread's first instruction, and any
            // SYN the default 128-deep queue drops costs a full second
            // of retransmit — the difference between a sweep that is
            // flat to 1024 connections and one that collapses.
            {
                use std::os::fd::AsRawFd;
                polling::set_backlog(listener.as_raw_fd(), 4096).expect("re-listen");
            }
            let addr = listener.local_addr().expect("bound address");
            let scripts = if binary {
                mux_binary_scripts(&day, connections)
            } else {
                mux_text_scripts(&day, connections)
            };
            let (ready_tx, ready_rx) = mpsc::channel();
            std::thread::scope(|scope| {
                let server = scope.spawn(|| {
                    let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 4)
                        .with_policy(StepPolicy::OnlyChanging);
                    load(&mut m);
                    ready_tx.send(()).expect("driver listens");
                    let (wal, metrics) = match durable {
                        Some((w, mx)) => (Some(w), Some(mx)),
                        None => (None, None),
                    };
                    let config =
                        net::ServerConfig { ingress: cfg, wal, metrics, ..Default::default() };
                    net::serve(listener, &mut m, &ts, &config, |_| {}).expect("serve")
                });
                ready_rx.recv().expect("server loads");
                let t0 = Instant::now();
                let stats = drive_tcp_mux(addr, &scripts).expect("tcp drive");
                let rate = ops as f64 / t0.elapsed().as_secs_f64();
                assert_eq!(stats.ok, ops, "the whole day admits over the wire");
                assert_eq!(shutdown_server(addr).expect("shutdown"), "ok draining");
                (rate, server.join().expect("server thread"))
            })
        };

        let mut tcp_rows = Vec::new();
        let durable_conns = conn_counts[conn_counts.len() / 2];
        for &conns in conn_counts {
            let (rate, nstats) = serve_once(conns, false, None);
            assert_eq!(nstats.admitted, ops);
            let (binary_rate, bstats) = serve_once(conns, true, None);
            assert_eq!(bstats.admitted, ops);
            println!(
                "{:>10} {ops:>8} {conns:>6} {inproc_rate:>12.0} {rate:>12.0} {binary_rate:>12.0}",
                per * 4
            );
            tcp_rows.push(format!(
                r#"          {{ "connections": {conns}, "apps_per_sec": {rate:.0}, "binary_apps_per_sec": {binary_rate:.0} }}"#
            ));
        }

        // Durable runs through the two-stage pipeline at the middle
        // connection count, one per fsync policy: `batch` (one
        // fdatasync per committer batch — the group-commit headline)
        // vs `always` (one per record — the price of the old
        // sync-per-block shape). Admission latency percentiles come
        // from the server-side commit histograms (drain → durable
        // release), not from client timestamps: the driver pipelines
        // everything up front, so client-side timing would measure its
        // own queueing.
        let mut durable_rows = Vec::new();
        for policy in [FsyncPolicy::Batch, FsyncPolicy::Always] {
            let wal_dir = std::env::temp_dir()
                .join(format!("migratory-bench-serve-{}-{per}-{policy}", std::process::id()));
            let _ = std::fs::remove_dir_all(&wal_dir);
            let wal =
                Arc::new(Mutex::new(Wal::open(&wal_dir).expect("wal dir").with_fsync(policy)));
            let metrics = Arc::new(AdmissionMetrics::new(4));
            let (rate, _) = serve_once(durable_conns, false, Some((wal, metrics.clone())));
            let _ = std::fs::remove_dir_all(&wal_dir);
            let agg = Histogram::new();
            for h in &metrics.commit_latency_us {
                agg.merge(h);
            }
            let (p50, p99, p999) =
                (agg.quantile_bound(0.50), agg.quantile_bound(0.99), agg.quantile_bound(0.999));
            let batches = metrics.fsync_batch.count().max(1);
            #[allow(clippy::cast_precision_loss)]
            let amortization = metrics.fsync_batch.sum() as f64 / batches as f64;
            println!(
                "  durable fsync={policy} @ {durable_conns} conns: {rate:.0}/s, commit latency \
                 ≤ p50 {p50}µs / p99 {p99}µs / p99.9 {p999}µs, {amortization:.1} block(s)/sync"
            );
            durable_rows.push(format!(
                r#"          {{ "fsync": "{policy}", "connections": {durable_conns}, "apps_per_sec": {rate:.0}, "blocks_per_sync": {amortization:.1}, "commit_latency_us": {{ "p50": {p50}, "p99": {p99}, "p99.9": {p999} }} }}"#
            ));
        }
        rows.push(format!(
            r#"      {{
        "objects": {},
        "ops": {ops},
        "inprocess_4producer_apps_per_sec": {inproc_rate:.0},
        "tcp": [
{}
        ],
        "tcp_durable": [
{}
        ]
      }}"#,
            per * 4,
            tcp_rows.join(",\n"),
            durable_rows.join(",\n")
        ));
    }
    println!();
    format!(
        r#"  "serve": {{
    "workload": "four-component fleet behind `enforce::net` on an ephemeral TCP port; a day of single-object ops pipelined by N concurrent connections from one epoll-multiplexed driver (migratory-bench drive_tcp_mux), every reply awaited — apps_per_sec = text `invoke` lines, binary_apps_per_sec = length-prefixed binary frames; vs the same day through the in-process ingress with 4 pipelining producers; tcp_durable rows = text dialect through the two-stage pipeline (admission worker + committer thread), acks released only after the batch fsync; commit_latency_us = server-side drain-to-durable-release histograms (log2 bucket upper bounds)",
    "sizes": [
{}
    ]
  }}"#,
        rows.join(",\n")
    )
}

/// `tail-smoke`: the CI tail-latency regression gate. Runs a fixed
/// small fleet day over TCP through the two-stage durable pipeline
/// (`FsyncPolicy::Batch`, the `--fsync batch` server shape), reads the
/// committed baseline from `ci/tail_baseline.json`, and exits nonzero
/// when the measured p99.9 commit latency exceeds 3× the baseline.
/// The budget is intentionally generous: quantiles are log2 bucket
/// upper bounds, so 3× only trips when the tail moves by at least two
/// buckets — machine noise does not, a reintroduced inline fsync or a
/// serialized committer does.
fn tail_smoke() {
    use migratory_core::enforce::{
        net, AdmissionMetrics, FsyncPolicy, Histogram, IngressConfig, ShardedMonitor, StepPolicy,
        Wal,
    };
    use std::net::TcpListener;
    use std::sync::{mpsc, Arc, Mutex};

    const PER: usize = 256;
    const OPS: usize = 8192;
    const CONNS: usize = 4;
    println!("== tail-smoke: p99.9 commit-latency regression gate ==");
    let (schema, alphabet, ts) = fleet();
    let inv = Inventory::parse_init(&schema, &alphabet, FLEET_INVENTORY).unwrap();
    let day = fleet_ops(OPS, PER);
    let scripts = mux_text_scripts(&day, CONNS);
    let wal_dir = std::env::temp_dir().join(format!("migratory-tail-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let wal =
        Arc::new(Mutex::new(Wal::open(&wal_dir).expect("wal dir").with_fsync(FsyncPolicy::Batch)));
    let metrics = Arc::new(AdmissionMetrics::new(4));
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    let (ready_tx, ready_rx) = mpsc::channel();
    let config = net::ServerConfig {
        ingress: IngressConfig { queue_capacity: 1024, max_block: 256 },
        wal: Some(wal.clone()),
        metrics: Some(metrics.clone()),
        ..Default::default()
    };
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 4)
                .with_policy(StepPolicy::OnlyChanging);
            for (mk, prefix) in
                [("BuyTruck", "t"), ("HireDriver", "d"), ("OpenRoute", "r"), ("BuildDepot", "p")]
            {
                let t = ts.get(mk).unwrap();
                let bulk: Vec<(&migratory_lang::Transaction, Assignment)> = (0..PER)
                    .map(|i| {
                        (
                            t,
                            Assignment::new(vec![migratory_model::Value::str(&format!(
                                "{prefix}{i}"
                            ))]),
                        )
                    })
                    .collect();
                let (done, err) = m.try_apply_batch(bulk.iter().map(|(t, a)| (*t, a)));
                assert_eq!((done, err), (PER, None), "bulk load conforms");
            }
            ready_tx.send(()).expect("driver listens");
            net::serve(listener, &mut m, &ts, &config, |_| {}).expect("serve")
        });
        ready_rx.recv().expect("server loads");
        let stats = drive_tcp_mux(addr, &scripts).expect("tcp drive");
        assert_eq!(stats.ok, OPS, "the whole day admits over the wire");
        assert_eq!(shutdown_server(addr).expect("shutdown"), "ok draining");
        server.join().expect("server thread")
    });
    let _ = std::fs::remove_dir_all(&wal_dir);

    let agg = Histogram::new();
    for h in &metrics.commit_latency_us {
        agg.merge(h);
    }
    // One sample per admitted block (every op in a block observes its
    // block's drain-to-durable-release latency); max_block = 256 floors
    // the block count.
    assert!(agg.count() >= (OPS / 256) as u64, "commit histograms were stamped: {}", agg.count());
    let p999 = agg.quantile_bound(0.999);
    let baseline = read_tail_baseline("ci/tail_baseline.json");
    println!(
        "  p99.9 commit latency ≤ {p999}µs over {} samples (committed baseline {baseline}µs, \
         budget 3×)",
        agg.count()
    );
    if p999 > baseline.saturating_mul(3) {
        eprintln!(
            "tail-smoke FAILED: p99.9 commit latency ≤ {p999}µs exceeds 3× the committed \
             baseline ({baseline}µs) — the durable ack tail regressed"
        );
        std::process::exit(1);
    }
    println!("  tail-smoke OK");
    println!();
}

/// Parse `"commit_latency_p999_us": <n>` out of the committed baseline
/// file (no JSON dependency in the workspace — the key is extracted
/// textually).
fn read_tail_baseline(path: &str) -> u64 {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {path}: {e} (run from the repository root)"));
    let key = "\"commit_latency_p999_us\":";
    let at = text.find(key).unwrap_or_else(|| panic!("{path} lacks {key}"));
    text[at + key.len()..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("baseline is a bare integer")
}

fn flow_families_row() {
    println!("== §5 remark / flow: inflow families stay regular and only restrict ==");
    let (schema, alphabet, ts) = slim_chain();
    let (_, plain) = analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
    let ordered = vec![("Mk", "Up"), ("Up", "Up"), ("Up", "Rm")];
    println!("{:>10} {:>6} {:>10}  patterns of length ≤ k, k = 0..6", "relation", "kind", "|DFA|");
    for (rel, flow) in [
        (
            "complete",
            migratory_behavior::FlowSchema::complete(
                ts.clone(),
                migratory_behavior::FlowKind::Inflow,
            ),
        ),
        (
            "ordered",
            migratory_behavior::FlowSchema::new(
                ts.clone(),
                &ordered,
                migratory_behavior::FlowKind::Inflow,
            )
            .unwrap(),
        ),
    ] {
        let fams = migratory_behavior::flow_families(
            &schema,
            &alphabet,
            &flow,
            &AnalyzeOptions::default(),
        )
        .unwrap();
        for kind in PatternKind::ALL {
            let dfa = fams.of(kind);
            assert!(dfa.is_subset_of(plain.of(kind)), "ordering only restricts");
            let counts = dfa.count_words(6);
            let series: Vec<u64> = (0..=6).map(|k| counts.iter().take(k + 1).sum()).collect();
            println!("{rel:>10} {kind:>6} {:>10}  {series:?}", dfa.num_states());
        }
    }
    println!("  (every family ⊆ the plain Theorem 3.2(1) family — asserted above)");
    println!();
}

fn fig1_2() {
    println!("== fig1-2 / perf-interp: interpreter throughput vs database size ==");
    println!("{:>10} {:>14} {:>16}", "objects", "apply (µs)", "applies/sec");
    for &n in &[100usize, 1_000, 10_000, 30_000] {
        let (schema, ts, db) = populated_university(n);
        let rounds = 20usize;
        let start = Instant::now();
        for i in 0..rounds {
            let mut db2 = db.clone();
            apply_round(&schema, &ts, &mut db2, i);
        }
        let per = start.elapsed().as_secs_f64() / rounds as f64;
        println!("{:>10} {:>14.1} {:>16.0}", n, per * 1e6, 1.0 / per);
    }
    println!();
}

fn thm3_2() {
    println!("== thm3.2(1) / ex3.4: separator analysis of Example 3.4 ==");
    let (schema, alphabet, ts) = university();
    for (mode, opts) in [
        ("reachable+seq", AnalyzeOptions::default()),
        ("reachable+par", AnalyzeOptions { parallel: true, ..Default::default() }),
    ] {
        let start = Instant::now();
        let (analysis, fams) = analyze_families(&schema, &alphabet, &ts, &opts).unwrap();
        let dt = start.elapsed();
        println!(
            "{mode:>14}: {:>5} vertices {:>6} edges {:>9} runs  {:>8.2?}  |imm DFA| = {}",
            analysis.stats.vertices,
            analysis.stats.edges,
            analysis.stats.runs,
            dt,
            fams.imm.num_states(),
        );
    }
    let (schema, alphabet, ts) = slim_chain();
    println!("-- ablation (slim chain): reachable-only vs full separator space --");
    for (mode, opts) in [
        ("reachable", AnalyzeOptions::default()),
        ("full-space", AnalyzeOptions { full_space: true, ..Default::default() }),
    ] {
        let start = Instant::now();
        let (analysis, _) = analyze_families(&schema, &alphabet, &ts, &opts).unwrap();
        println!(
            "{mode:>14}: {:>5} vertices {:>6} edges {:>9} runs  {:>8.2?}",
            analysis.stats.vertices,
            analysis.stats.edges,
            analysis.stats.runs,
            start.elapsed(),
        );
    }
    println!();
}

fn cor3_3_baseline() {
    println!("== cor3.3 / perf-baseline: graph decision vs bounded exploration ==");
    let (schema, alphabet, ts) = slim_chain();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [P]* [S]* ([G] ∪ [S])* ∅*").unwrap();
    let start = Instant::now();
    let (_, fams) = analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
    let d = decide_with_families(&fams, &inv, PatternKind::All);
    println!(
        "{:>22}: verdict(satisfies)={:<5} {:>10.2?}  (complete, sound)",
        "graph decision",
        d.satisfies.holds(),
        start.elapsed()
    );
    for depth in [2usize, 3, 4] {
        let start = Instant::now();
        let sets = explore(
            &schema,
            &alphabet,
            &ts,
            &ExploreConfig { max_steps: depth, ..Default::default() },
        );
        let refuted = sets.all.iter().any(|w| !inv.contains(w));
        println!(
            "{:>18} d={depth}: refuted={refuted:<5} {:>10.2?}  ({} patterns; bound-limited)",
            "explorer",
            start.elapsed(),
            sets.all.len()
        );
    }
    println!();
}

fn thm4_3() {
    println!("== thm4.3: TM-in-CSL⁺ simulation (aⁿbⁿ) ==");
    let (schema, alphabet, s_class, roles) = standard_tm_schema(2).unwrap();
    let tm = machines::anbn();
    let spec = TmSpec {
        letter_of: vec![Some(roles[0]), Some(roles[1]), Some(roles[0]), Some(roles[1]), None],
    };
    let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &spec).unwrap();
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12}",
        "n", "TM steps", "script len", "native (µs)", "CSL (µs)"
    );
    for n in [2usize, 4, 6, 8] {
        let mut word = vec![0u32; n];
        word.extend(vec![1u32; n]);
        let t0 = Instant::now();
        let outcome = tm.run(&word, 1_000_000);
        let native = t0.elapsed();
        let steps = match outcome {
            migratory_chomsky::Outcome::Accepted { steps, .. } => steps,
            _ => unreachable!("aⁿbⁿ accepted"),
        };
        let script = drive_word(&tm, &word, 1_000_000).unwrap();
        let t0 = Instant::now();
        let mut db = Instance::empty();
        for (name, args) in &script {
            let t = compiled.transactions.get(name).unwrap();
            migratory_lang::apply_transaction(&schema, &mut db, t, &Assignment::new(args.clone()))
                .unwrap();
        }
        let csl = t0.elapsed();
        println!(
            "{:>6} {:>12} {:>12} {:>14.1} {:>12.1}",
            n,
            steps,
            script.len(),
            native.as_secs_f64() * 1e6,
            csl.as_secs_f64() * 1e6
        );
    }
    println!();
}

fn ex4_1() {
    println!("== ex4.1 / thm4.8: CFG derivation machine (aⁱbⁱ) ==");
    let grammar = migratory_chomsky::cfg::grammars::anbn();
    let (schema, alphabet, s_class, roles) = migratory_core::standard_cfg_schema(2).unwrap();
    let compiled =
        migratory_core::compile_cfg(&schema, &alphabet, s_class, &grammar, &roles).unwrap();
    println!("GNF productions: {}", compiled.gnf.prods.len());
    println!("{:>6} {:>12} {:>12}", "n", "script len", "CSL (µs)");
    for n in [1usize, 2, 4, 8] {
        let mut word = vec![0u32; n];
        word.extend(vec![1u32; n]);
        let script = migratory_core::cfg_compile::drive_word(&compiled, &word).unwrap();
        let t0 = Instant::now();
        let mut db = Instance::empty();
        for (name, args) in &script {
            let t = compiled.transactions.get(name).unwrap();
            migratory_lang::apply_transaction(&schema, &mut db, t, &Assignment::new(args.clone()))
                .unwrap();
        }
        println!("{:>6} {:>12} {:>12.1}", n, script.len(), t0.elapsed().as_secs_f64() * 1e6);
    }
    println!();
}

fn thm5_1() {
    println!("== thm5.1/5.2: reachability decision ==");
    let (schema, alphabet, ts) = slim_chain();
    let src = migratory_behavior::Assertion::trivial(schema.class_id("P").unwrap());
    let tgt = migratory_behavior::Assertion::trivial(schema.class_id("G").unwrap());
    for (name, kind) in [
        ("inflow", migratory_behavior::FlowKind::Inflow),
        ("script", migratory_behavior::FlowKind::Script),
    ] {
        for (rel, edges) in
            [("complete", None), ("ordered", Some(vec![("Mk", "Up"), ("Up", "Up"), ("Up", "Rm")]))]
        {
            let flow = match &edges {
                None => migratory_behavior::FlowSchema::complete(ts.clone(), kind),
                Some(e) => migratory_behavior::FlowSchema::new(ts.clone(), e, kind).unwrap(),
            };
            let t0 = Instant::now();
            let r = migratory_behavior::decide_reachability(&schema, &alphabet, &flow, &src, &tgt)
                .unwrap();
            println!(
                "{name:>8} {rel:>9}: reach {}/{} sources  {:>9.2?}",
                r.reachable_sources,
                r.sources,
                t0.elapsed()
            );
        }
    }
    println!();
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal wall-clock harness with criterion's bench-definition API:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timings are median-of-samples wall-clock
//! numbers printed to stdout — good enough to read scaling shape, with
//! none of upstream's statistics, plotting, or baseline storage.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one bench within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Runs one measured closure repeatedly and records the per-iteration
/// wall-clock time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`, discarding a warm-up iteration, then timing
    /// `sample_size` iterations individually.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        std_black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std_black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    println!("bench {label:<40} median {:>12.2?}  ({} samples)", b.median(), b.sample_size);
}

/// A named set of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per bench in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Accepted for source compatibility; unused by this shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Bench `f` under `id` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.effective_sample_size(), |b| f(b, input));
        self
    }

    /// Bench `f` under a plain name.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.effective_sample_size(), f);
        self
    }

    /// End the group (no-op beyond matching upstream's API).
    pub fn finish(self) {}
}

/// The bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Upstream defaults to 100 samples; wall-clock shim keeps runs
        // short — the benches here measure milliseconds-scale bodies.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of measured iterations per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: None }
    }

    /// Bench a standalone function.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), self.sample_size, f);
        self
    }
}

/// Define a bench group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($bench_fn(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        for &n in &[2u64, 4] {
            g.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
        }
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny slice of `rand` it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`], xoshiro256\*\*), the [`Rng`] source trait,
//! and the [`RngExt`] extension providing `random_range` over half-open
//! integer ranges. Distribution quality matches the upstream intent for
//! test/bench workloads (uniform via rejection sampling); it is **not** a
//! cryptographic generator.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random `u64`s.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widen to `u64` relative to `lo` (the caller guarantees `self >= lo`).
    fn offset_from(self, lo: Self) -> u64;
    /// Inverse of [`SampleUniform::offset_from`].
    fn offset_add(lo: Self, off: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn offset_from(self, lo: Self) -> u64 {
                (self as i128 - lo as i128) as u64
            }
            fn offset_add(lo: Self, off: u64) -> Self {
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience draws on top of any [`Rng`] (mirrors `rand`'s extension
/// trait split).
pub trait RngExt: Rng {
    /// Uniform draw from `range` (half-open, must be non-empty).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = range.end.offset_from(range.start);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return T::offset_add(range.start, v % span);
            }
        }
    }

    /// A uniform boolean.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> StdRng {
            // splitmix64 expansion of the seed, as upstream xoshiro does.
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_state(seed)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.random_range(0u32..17);
            assert_eq!(x, b.random_range(0u32..17));
            assert!(x < 17);
        }
    }

    #[test]
    fn covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

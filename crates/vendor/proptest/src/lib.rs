//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, strategies for constants ([`Just`]),
//! integer ranges, tuples, [`collection::vec`], [`string::string_regex`],
//! [`any`], the [`prop_oneof!`] union, and the [`proptest!`] test macro.
//!
//! Differences from upstream, deliberate for an offline test shim:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   left to the assertion message; cases are deterministic (seeded from
//!   the test name), so failures reproduce exactly under `cargo test`.
//! * **No persistence files**, no forking, no timeout handling.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;
use std::rc::Rc;

/// The deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Uniform draw from a half-open integer range.
    pub fn range<T: rand::SampleUniform>(&mut self, r: Range<T>) -> T {
        self.0.random_range(r)
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.0.random_bool()
    }
}

/// Deterministic per-test RNG, seeded from the test's name.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng(StdRng::seed_from_u64(h))
}

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused by this shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

/// A generator of test values.
///
/// Unlike upstream there is no value tree: `generate` directly yields a
/// value, and failing cases are not shrunk.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// sub-level and returns the strategy for one level up; `depth` bounds
    /// the nesting. The size-tuning parameters of upstream are accepted
    /// but only `depth` is honoured.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // Mix the leaf back in at every level so generated sizes stay
            // small (upstream controls this probabilistically).
            cur = Union::new(vec![self.clone().boxed(), deeper]).boxed();
        }
        cur
    }
}

/// A type-erased strategy (clone-shared, no shrinking state).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: rand::SampleUniform + Clone> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Uniform choice between type-erased alternatives (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (at least one).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical strategy (only what the workspace needs).
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy of a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for [`Arbitrary`] booleans.
#[derive(Clone, Debug, Default)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specifications accepted by [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub trait IntoSizeRange {
        /// `(lo, hi)` half-open bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range");
        VecStrategy { element, lo, hi }
    }

    /// The result of [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.lo + 1 == self.hi { self.lo } else { rng.range(self.lo..self.hi) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// String strategies.
pub mod string {
    use super::{Strategy, TestRng};

    /// Error from [`string_regex`].
    #[derive(Clone, Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported generator regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Strategy generating strings matching a character-class regex of the
    /// shape `[class]{min,max}` — the only form the workspace uses.
    /// Supports `\`-escapes and `a-z` ranges inside the class.
    pub fn string_regex(pattern: &str) -> Result<StringRegexStrategy, Error> {
        let err = |m: &str| Err(Error(format!("{m} in {pattern:?}")));
        let mut chars = pattern.chars().peekable();
        if chars.next() != Some('[') {
            return err("expected leading [");
        }
        let mut class: Vec<char> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let Some(c) = chars.next() else { return err("unterminated class") };
            let literal = match c {
                ']' => break,
                '\\' => match chars.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(e) => e,
                    None => return err("dangling escape"),
                },
                '-' if pending.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = pending.take().expect("checked");
                    let hi = match chars.next() {
                        Some('\\') => chars.next().ok_or(Error("dangling escape".into()))?,
                        Some(h) => h,
                        None => return err("unterminated range"),
                    };
                    if (lo as u32) > (hi as u32) {
                        return err("reversed range");
                    }
                    for p in lo as u32..=hi as u32 {
                        class.extend(char::from_u32(p));
                    }
                    continue;
                }
                other => other,
            };
            class.extend(pending.replace(literal));
        }
        class.extend(pending);
        if class.is_empty() {
            return err("empty class");
        }
        let rest: String = chars.collect();
        let (min, max) = if rest.is_empty() {
            (1, 1)
        } else {
            let inner = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .ok_or(Error(format!("expected {{min,max}} after class, got {rest:?}")))?;
            let (lo, hi) =
                inner.split_once(',').ok_or(Error(format!("expected min,max in {inner:?}")))?;
            let lo: usize = lo.trim().parse().map_err(|e| Error(format!("{e}")))?;
            let hi: usize = hi.trim().parse().map_err(|e| Error(format!("{e}")))?;
            if lo > hi {
                return err("reversed repetition");
            }
            (lo, hi)
        };
        Ok(StringRegexStrategy { class, min, max })
    }

    /// The result of [`string_regex`].
    #[derive(Clone, Debug)]
    pub struct StringRegexStrategy {
        class: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Strategy for StringRegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len =
                if self.min == self.max { self.min } else { rng.range(self.min..self.max + 1) };
            (0..len).map(|_| self.class[rng.range(0..self.class.len())]).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The `prop::` module tree (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
    )*};
}

/// Define property tests: each generated case binds the patterns from
/// their strategies and runs the body. Cases are deterministic (seeded
/// from the test path); there is no shrinking.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(u32),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..5, 10usize..12), flip in any::<bool>()) {
            prop_assert!(a < 5);
            prop_assert!((10..12).contains(&b));
            let _ = flip;
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..3, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn recursion_is_bounded(t in Just(Tree::Leaf(0)).prop_recursive(3, 8, 2, |inner| {
            prop_oneof![
                (0u32..9).prop_map(Tree::Leaf),
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node),
            ]
        })) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn string_regex_generates_in_class() {
        let s = prop::string::string_regex("[a-c0\\-]{0,5}").unwrap();
        let mut rng = crate::test_rng("string_regex");
        for _ in 0..100 {
            let w = s.generate(&mut rng);
            assert!(w.len() <= 5);
            assert!(w.chars().all(|c| "abc0-".contains(c)), "{w:?}");
        }
    }

    #[test]
    fn determinism() {
        let s = prop::collection::vec(0u32..100, 3..9);
        let a: Vec<_> = {
            let mut rng = crate::test_rng("k");
            (0..20).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::test_rng("k");
            (0..20).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}

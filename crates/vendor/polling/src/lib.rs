//! Offline stand-in for the `polling` crate.
//!
//! The build environment has no network access, so instead of pulling a
//! readiness-polling crate from crates.io this workspace vendors the tiny
//! slice of functionality it actually needs: a safe wrapper over `poll(2)`,
//! an [`Epoll`] wrapper, and a self-pipe [`Waker`] for cross-thread
//! wakeups. All are raw FFI bindings to symbols `std` already links
//! (libc), so no new link-time dependency is introduced.
//!
//! **Linux-only.** The epoll bindings, and the `O_NONBLOCK`/`fcntl`
//! constants baked in below, are the Linux ABI; the crate refuses to
//! build elsewhere rather than miscompile silently. A port to another
//! Unix would keep [`PollFd`]/[`wait`] and reimplement [`Epoll`] over
//! `kqueue` (or fall back to `poll(2)`).
//!
//! The API is intentionally minimal and level-triggered:
//!
//! - [`PollFd`] mirrors `struct pollfd`; callers build a `Vec<PollFd>`
//!   per iteration and inspect `revents` afterwards.
//! - [`poll`] blocks until any descriptor is ready or the timeout lapses,
//!   mapping `EINTR` to a zero-event return so callers just loop.
//! - [`Epoll`] wraps `epoll(7)` for callers whose descriptor sets are
//!   large and mostly idle: interest is registered once and each wait
//!   costs O(ready), where `poll(2)` costs a kernel scan of the whole
//!   set per call — the difference between a connection sweep that
//!   stays flat at a thousand sockets and one that drowns in fd scans.
//! - [`Waker`] is a nonblocking pipe: any thread may call
//!   [`Waker::wake`], and the event thread includes [`Waker::fd`] in its
//!   poll or epoll set with read interest, calling [`Waker::drain`]
//!   when it fires.

use std::io;

#[cfg(not(target_os = "linux"))]
compile_error!(
    "the vendored `polling` shim binds the Linux syscall ABI (epoll, Linux fcntl/O_NONBLOCK \
     constants); port Epoll to this target's readiness API before building"
);

// The symbols below come from the platform C library that `std` links
// anyway; binding them directly keeps this crate dependency-free.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn listen(sockfd: i32, backlog: i32) -> i32;
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
}

/// Readiness: there is data to read (or a pending connection to accept).
pub const POLLIN: i16 = 0x001;
/// Readiness: writing now would not block.
pub const POLLOUT: i16 = 0x004;
/// Result-only: an error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// Result-only: the peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Result-only: the descriptor is not open.
pub const POLLNVAL: i16 = 0x020;

const F_SETFD: i32 = 2;
const F_SETFL: i32 = 4;
const FD_CLOEXEC: i32 = 1;
const O_NONBLOCK: i32 = 0x800;

/// One entry in a poll set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch (a raw fd from `AsRawFd`).
    pub fd: i32,
    /// Requested events (`POLLIN` and/or `POLLOUT`).
    pub events: i16,
    /// Returned events, filled in by [`wait`].
    pub revents: i16,
}

impl PollFd {
    /// A poll entry for `fd` with the given interest set.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// True when any of `mask`'s bits came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// True when the kernel reported an error/hangup condition.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Block until a descriptor in `fds` is ready or `timeout_ms` lapses.
///
/// `timeout_ms < 0` means wait indefinitely; `0` polls without blocking.
/// Returns the number of entries with nonzero `revents`. `EINTR` is
/// reported as `Ok(0)` — callers re-evaluate deadlines and poll again,
/// which is what a signal-interrupted loop should do anyway.
pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively borrowed slice of repr(C)
    // pollfd-compatible structs for the duration of the call.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}

/// Readiness bit for [`Epoll`]: data to read / connection to accept.
pub const EPOLLIN: u32 = 0x001;
/// Readiness bit for [`Epoll`]: writing now would not block.
pub const EPOLLOUT: u32 = 0x004;
/// Result-only [`Epoll`] bit: error condition (always reported).
pub const EPOLLERR: u32 = 0x008;
/// Result-only [`Epoll`] bit: peer hung up (always reported).
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CLOEXEC: i32 = 0x8_0000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

/// One `struct epoll_event`: readiness bits plus the caller's 64-bit
/// token identifying the descriptor. The kernel packs this struct on
/// x86-64 only (`include/uapi/linux/eventpoll.h` guards the packing
/// with `__x86_64__`); every other architecture uses the natural C
/// layout — 4-byte `events`, 4 bytes of padding, 8-byte `data`, 16
/// bytes total. Mirroring that split exactly matters: with the wrong
/// layout `epoll_wait` writes 16-byte entries into a buffer sized for
/// 12-byte ones (heap corruption) and `epoll_ctl` reads a garbled
/// token.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Debug)]
pub struct EpollEvent {
    events: u32,
    token: u64,
}

// Pin the struct to the kernel ABI size for the target at compile
// time: 12 bytes packed on x86-64, 16 bytes naturally aligned
// everywhere else.
const _: () = assert!(
    std::mem::size_of::<EpollEvent>() == if cfg!(target_arch = "x86_64") { 12 } else { 16 },
    "EpollEvent layout does not match the kernel's epoll_event ABI for this architecture"
);

impl EpollEvent {
    /// An empty slot for a wait buffer.
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, token: 0 }
    }

    /// The token this descriptor was registered with.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// True when any of `mask`'s bits came back.
    pub fn ready(&self, mask: u32) -> bool {
        self.events & mask != 0
    }

    /// True when the kernel reported an error/hangup condition.
    pub fn failed(&self) -> bool {
        self.events & (EPOLLERR | EPOLLHUP) != 0
    }
}

/// A level-triggered `epoll(7)` instance: register descriptors once
/// (with a token), update interest only when it changes, and each
/// [`Epoll::wait`] returns just the ready ones.
pub struct Epoll {
    fd: i32,
}

// SAFETY: the epoll fd may be used from any thread; the kernel
// serializes ctl/wait on it.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

impl Epoll {
    /// Create an epoll instance (close-on-exec).
    ///
    /// # Errors
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall returning a new descriptor or -1.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: interest, token };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call (ignored entirely for DEL).
        if unsafe { epoll_ctl(self.fd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest bits and token.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. the fd is already added).
    pub fn add(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change a registered descriptor's interest (0 keeps it registered
    /// for error/hangup reporting only).
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. the fd was never added).
    pub fn modify(&self, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister a descriptor. (Closing the fd deregisters it
    /// implicitly; this is for removing interest in a still-open one.)
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until a registered descriptor is ready or `timeout_ms`
    /// lapses (`< 0` waits indefinitely), filling `events` from the
    /// front. Returns the ready count; `EINTR` is `Ok(0)`, like
    /// [`wait`].
    ///
    /// # Errors
    /// Propagates `epoll_wait` failure.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a valid, exclusively borrowed slice of
        // repr(C) epoll_event-compatible structs; the kernel writes at
        // most `events.len()` entries.
        let rc =
            unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: the struct owns the descriptor and is being dropped.
        unsafe {
            close(self.fd);
        }
    }
}

/// Re-arm a listening socket's accept backlog: `listen(2)` on an
/// already-listening socket updates its queue depth (capped by the
/// kernel at `net.core.somaxconn`). `std`'s `TcpListener::bind`
/// hardcodes a backlog of 128, so a burst of more than ~128 connects
/// overflows the queue and the excess SYNs sit out whole retransmit
/// timeouts — seconds of stall for milliseconds of accepting.
///
/// # Errors
/// Fails when `fd` is not a listening socket.
pub fn set_backlog(fd: i32, backlog: i32) -> io::Result<()> {
    // SAFETY: listen(2) on a caller-provided descriptor mutates no
    // caller memory; a bad fd is reported via the error return.
    if unsafe { listen(fd, backlog) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// A cross-thread wakeup channel built on a nonblocking self-pipe.
///
/// The owning event thread polls [`Waker::fd`] for `POLLIN`; any other
/// thread calls [`Waker::wake`] to make that poll return. Wakeups
/// coalesce: a full pipe already guarantees the poller will wake, so
/// `EAGAIN` on the write side is success.
pub struct Waker {
    read_fd: i32,
    write_fd: i32,
}

// SAFETY: both fields are plain fds; read/write/close on distinct ends
// from different threads is the self-pipe trick's whole point.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Create the pipe pair, nonblocking and close-on-exec on both ends.
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid 2-element array for pipe(2) to fill.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            // SAFETY: `fd` is a fresh descriptor owned by this function.
            unsafe {
                fcntl(fd, F_SETFL, O_NONBLOCK);
                fcntl(fd, F_SETFD, FD_CLOEXEC);
            }
        }
        Ok(Waker { read_fd: fds[0], write_fd: fds[1] })
    }

    /// The descriptor to include in the poll set with [`POLLIN`].
    pub fn fd(&self) -> i32 {
        self.read_fd
    }

    /// Wake the polling thread. Callable from any thread; never blocks.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: writing one byte from a live stack buffer to an fd this
        // struct owns. EAGAIN (pipe full) means a wakeup is already
        // pending, which is all we need.
        unsafe {
            let _ = write(self.write_fd, byte.as_ptr(), 1);
        }
    }

    /// Consume pending wakeup bytes after the poll reported readiness.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        // SAFETY: reading into a live stack buffer from an fd this struct
        // owns; the fd is nonblocking so the loop terminates on EAGAIN.
        while unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: the struct owns both descriptors and is being dropped.
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            w2.wake();
        });
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        let start = std::time::Instant::now();
        // Indefinite timeout: only the waker can end this wait.
        let n = wait(&mut fds, -1).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        waker.drain();
        // Drained: an immediate poll now reports nothing.
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 0).unwrap(), 0);
        t.join().unwrap();
    }

    #[test]
    fn wake_is_idempotent_and_never_blocks() {
        let waker = Waker::new().unwrap();
        for _ in 0..100_000 {
            waker.wake(); // fills the pipe; later calls hit EAGAIN
        }
        let mut fds = [PollFd::new(waker.fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 0).unwrap(), 1);
        waker.drain();
    }

    #[test]
    fn epoll_reports_readiness_by_token_and_respects_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN, 7).unwrap();
        let mut evs = [EpollEvent::zeroed(); 8];

        // Nothing readable yet: a 20ms wait times out empty.
        assert_eq!(ep.wait(&mut evs, 20).unwrap(), 0);

        client.write_all(b"x").unwrap();
        assert_eq!(ep.wait(&mut evs, 1000).unwrap(), 1);
        assert_eq!(evs[0].token(), 7);
        assert!(evs[0].ready(EPOLLIN));
        let mut byte = [0u8; 1];
        server.read_exact(&mut byte).unwrap();

        // Swap interest to writability: an idle socket reports it
        // immediately, under the same token.
        ep.modify(server.as_raw_fd(), EPOLLOUT, 9).unwrap();
        assert_eq!(ep.wait(&mut evs, 1000).unwrap(), 1);
        assert_eq!(evs[0].token(), 9);
        assert!(evs[0].ready(EPOLLOUT));

        // Zero interest: an orderly peer close (FIN) is readable EOF,
        // not a hangup, so it stays invisible until read interest
        // returns — exactly the "parked connections learn at their next
        // write" contract the event core relies on.
        ep.modify(server.as_raw_fd(), 0, 9).unwrap();
        assert_eq!(ep.wait(&mut evs, 20).unwrap(), 0);
        drop(client);
        assert_eq!(ep.wait(&mut evs, 20).unwrap(), 0);
        ep.modify(server.as_raw_fd(), EPOLLIN, 9).unwrap();
        assert_eq!(ep.wait(&mut evs, 1000).unwrap(), 1);
        assert!(evs[0].ready(EPOLLIN));

        // Deregistered: silence, even though the socket is hung up.
        ep.delete(server.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut evs, 20).unwrap(), 0);
    }

    #[test]
    fn epoll_wakes_on_a_waker_pipe() {
        let ep = Epoll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        ep.add(waker.fd(), EPOLLIN, 1).unwrap();
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            w2.wake();
        });
        let mut evs = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut evs, -1).unwrap(), 1);
        assert_eq!(evs[0].token(), 1);
        waker.drain();
        assert_eq!(ep.wait(&mut evs, 0).unwrap(), 0);
        t.join().unwrap();
    }

    #[test]
    fn set_backlog_rearms_a_listener_and_rejects_non_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        set_backlog(listener.as_raw_fd(), 1024).unwrap();
        // Still accepting after the re-arm.
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        listener.accept().unwrap();
        // A pipe end is not a listening socket.
        let waker = Waker::new().unwrap();
        assert!(set_backlog(waker.fd(), 1024).is_err());
    }

    #[test]
    fn poll_reports_socket_readiness_and_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        // Nothing to read yet: a 20ms poll times out empty.
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 20).unwrap(), 0);

        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].ready(POLLIN));
        let mut byte = [0u8; 1];
        server.read_exact(&mut byte).unwrap();
        assert_eq!(&byte, b"x");

        // A writable idle socket reports POLLOUT immediately.
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLOUT)];
        assert_eq!(wait(&mut fds, 0).unwrap(), 1);
        assert!(fds[0].ready(POLLOUT));

        // Peer hangup surfaces as an error/hup condition.
        drop(client);
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(wait(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].ready(POLLIN)); // EOF is readable
    }
}

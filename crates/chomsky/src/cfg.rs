//! Context-free grammars.
//!
//! Theorem 4.8 of the paper compiles any *context-free* migration
//! inventory into a CSL⁺ transaction schema, going through Greibach
//! normal form ("there is a context-free grammar G_L in Greibach normal
//! form with 𝓛(G_L) = L \\[21\\]"). This module provides the grammar type and
//! bounded language generation; the normal-form pipeline lives in
//! [`crate::normal`].

use crate::error::ChomskyError;
use std::collections::BTreeSet;

/// A grammar symbol: terminal or nonterminal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sym {
    /// Terminal `0..num_terminals`.
    T(u32),
    /// Nonterminal `0..num_nonterminals`.
    N(u32),
}

/// A production `lhs → rhs`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Production {
    /// Left-hand nonterminal.
    pub lhs: u32,
    /// Body (empty = ε-production).
    pub rhs: Vec<Sym>,
}

/// A context-free grammar over terminals `0..num_terminals`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cfg {
    /// Terminal alphabet size.
    pub num_terminals: u32,
    /// Nonterminal count.
    pub num_nonterminals: u32,
    /// Start nonterminal.
    pub start: u32,
    /// Productions.
    pub prods: Vec<Production>,
}

impl Cfg {
    /// A grammar with no productions.
    pub fn new(
        num_terminals: u32,
        num_nonterminals: u32,
        start: u32,
    ) -> Result<Self, ChomskyError> {
        if start >= num_nonterminals {
            return Err(ChomskyError::BadNonterminal(start));
        }
        Ok(Cfg { num_terminals, num_nonterminals, start, prods: Vec::new() })
    }

    /// Add a production.
    pub fn add(&mut self, lhs: u32, rhs: Vec<Sym>) -> Result<(), ChomskyError> {
        if lhs >= self.num_nonterminals {
            return Err(ChomskyError::BadNonterminal(lhs));
        }
        for s in &rhs {
            match *s {
                Sym::T(t) if t >= self.num_terminals => return Err(ChomskyError::BadSymbol(t)),
                Sym::N(n) if n >= self.num_nonterminals => {
                    return Err(ChomskyError::BadNonterminal(n))
                }
                _ => {}
            }
        }
        let p = Production { lhs, rhs };
        if !self.prods.contains(&p) {
            self.prods.push(p);
        }
        Ok(())
    }

    /// Mint a fresh nonterminal.
    pub fn fresh_nonterminal(&mut self) -> u32 {
        let n = self.num_nonterminals;
        self.num_nonterminals += 1;
        n
    }

    /// The set of *nullable* nonterminals (deriving ε).
    #[must_use]
    pub fn nullable(&self) -> Vec<bool> {
        let mut nullable = vec![false; self.num_nonterminals as usize];
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.prods {
                if !nullable[p.lhs as usize]
                    && p.rhs.iter().all(|s| match s {
                        Sym::T(_) => false,
                        Sym::N(n) => nullable[*n as usize],
                    })
                {
                    nullable[p.lhs as usize] = true;
                    changed = true;
                }
            }
        }
        nullable
    }

    /// The length of a shortest terminal word derivable from each
    /// nonterminal (`usize::MAX` when none) — used to prune generation.
    #[must_use]
    pub fn min_lengths(&self) -> Vec<usize> {
        let mut min = vec![usize::MAX; self.num_nonterminals as usize];
        let mut changed = true;
        while changed {
            changed = false;
            for p in &self.prods {
                let mut total: usize = 0;
                let mut ok = true;
                for s in &p.rhs {
                    match s {
                        Sym::T(_) => total += 1,
                        Sym::N(n) => {
                            let m = min[*n as usize];
                            if m == usize::MAX {
                                ok = false;
                                break;
                            }
                            total += m;
                        }
                    }
                }
                if ok && total < min[p.lhs as usize] {
                    min[p.lhs as usize] = total;
                    changed = true;
                }
            }
        }
        min
    }

    /// Generate all terminal words of length ≤ `max_len` (at most `limit`
    /// distinct words), by leftmost derivation with min-length pruning.
    /// Exact for any grammar whose nonterminals all derive something.
    #[must_use]
    pub fn generate(&self, max_len: usize, limit: usize) -> BTreeSet<Vec<u32>> {
        let min = self.min_lengths();
        let mut out = BTreeSet::new();
        if min[self.start as usize] == usize::MAX {
            return out;
        }
        // Sentential form: produced terminals + remaining symbols.
        let mut stack: Vec<(Vec<u32>, Vec<Sym>)> = vec![(Vec::new(), vec![Sym::N(self.start)])];
        let mut seen: BTreeSet<(Vec<u32>, Vec<Sym>)> = BTreeSet::new();
        while let Some((done, rest)) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            // Consume leading terminals.
            let mut done = done;
            let mut rest = rest;
            while let Some(Sym::T(t)) = rest.first().copied() {
                done.push(t);
                rest.remove(0);
            }
            if done.len() > max_len {
                continue;
            }
            let lower: usize = done.len()
                + rest
                    .iter()
                    .map(|s| match s {
                        Sym::T(_) => 1,
                        Sym::N(n) => min[*n as usize],
                    })
                    .try_fold(0usize, usize::checked_add)
                    .unwrap_or(usize::MAX);
            if lower > max_len {
                continue;
            }
            match rest.first().copied() {
                None => {
                    out.insert(done);
                }
                Some(Sym::N(n)) => {
                    for p in self.prods.iter().filter(|p| p.lhs == n) {
                        let mut rest2: Vec<Sym> = p.rhs.clone();
                        rest2.extend_from_slice(&rest[1..]);
                        let key = (done.clone(), rest2.clone());
                        if seen.insert(key) {
                            stack.push((done.clone(), rest2));
                        }
                    }
                }
                Some(Sym::T(_)) => unreachable!("terminals consumed above"),
            }
        }
        out
    }

    /// Productions of a nonterminal.
    pub fn prods_of(&self, n: u32) -> impl Iterator<Item = &Production> {
        self.prods.iter().filter(move |p| p.lhs == n)
    }
}

/// Stock grammars used by tests, examples and benches.
pub mod grammars {
    use super::{Cfg, Sym};

    /// `{aⁱbⁱ | i ≥ 0}` with a = 0, b = 1 (the language of Example 4.1).
    #[must_use]
    pub fn anbn() -> Cfg {
        let mut g = Cfg::new(2, 1, 0).expect("valid");
        g.add(0, vec![]).expect("valid");
        g.add(0, vec![Sym::T(0), Sym::N(0), Sym::T(1)]).expect("valid");
        g
    }

    /// Balanced parentheses (Dyck-1) with `( = 0`, `) = 1`.
    #[must_use]
    pub fn dyck() -> Cfg {
        let mut g = Cfg::new(2, 1, 0).expect("valid");
        g.add(0, vec![]).expect("valid");
        g.add(0, vec![Sym::T(0), Sym::N(0), Sym::T(1), Sym::N(0)]).expect("valid");
        g
    }

    /// Even-length palindromes over `{0, 1}`.
    #[must_use]
    pub fn even_palindromes() -> Cfg {
        let mut g = Cfg::new(2, 1, 0).expect("valid");
        g.add(0, vec![]).expect("valid");
        g.add(0, vec![Sym::T(0), Sym::N(0), Sym::T(0)]).expect("valid");
        g.add(0, vec![Sym::T(1), Sym::N(0), Sym::T(1)]).expect("valid");
        g
    }

    /// A regular-ish grammar: `(01)*` with unit and ε productions, for
    /// exercising the normal-form pipeline.
    #[must_use]
    pub fn zero_one_star() -> Cfg {
        let mut g = Cfg::new(2, 2, 0).expect("valid");
        g.add(0, vec![Sym::N(1)]).expect("valid"); // S → A (unit)
        g.add(1, vec![]).expect("valid"); // A → ε
        g.add(1, vec![Sym::T(0), Sym::T(1), Sym::N(1)]).expect("valid"); // A → 01A
        g
    }
}

#[cfg(test)]
mod tests {
    use super::grammars::*;
    use super::*;

    #[test]
    fn anbn_generates_matched_words() {
        let g = anbn();
        let words = g.generate(6, 1000);
        let expected: BTreeSet<Vec<u32>> = (0..=3)
            .map(|n| {
                let mut w = vec![0; n];
                w.extend(vec![1; n]);
                w
            })
            .collect();
        assert_eq!(words, expected);
    }

    #[test]
    fn dyck_generation() {
        let g = dyck();
        let words = g.generate(4, 1000);
        assert!(words.contains(&vec![]));
        assert!(words.contains(&vec![0, 1]));
        assert!(words.contains(&vec![0, 1, 0, 1]));
        assert!(words.contains(&vec![0, 0, 1, 1]));
        assert!(!words.contains(&vec![1, 0]));
        assert_eq!(words.len(), 4);
    }

    #[test]
    fn nullable_and_min_lengths() {
        let g = anbn();
        assert_eq!(g.nullable(), vec![true]);
        assert_eq!(g.min_lengths(), vec![0]);
        let mut g2 = Cfg::new(1, 2, 0).unwrap();
        g2.add(0, vec![Sym::T(0), Sym::N(1)]).unwrap();
        // N(1) has no productions: derives nothing.
        assert_eq!(g2.min_lengths(), vec![usize::MAX, usize::MAX]);
        assert!(g2.generate(5, 10).is_empty());
    }

    #[test]
    fn generation_respects_limit() {
        let g = dyck();
        let words = g.generate(10, 3);
        assert_eq!(words.len(), 3);
    }

    #[test]
    fn bad_indices_rejected() {
        assert!(Cfg::new(1, 1, 5).is_err());
        let mut g = Cfg::new(1, 1, 0).unwrap();
        assert!(g.add(5, vec![]).is_err());
        assert!(g.add(0, vec![Sym::T(9)]).is_err());
        assert!(g.add(0, vec![Sym::N(9)]).is_err());
    }

    #[test]
    fn duplicate_productions_collapse() {
        let mut g = Cfg::new(1, 1, 0).unwrap();
        g.add(0, vec![Sym::T(0)]).unwrap();
        g.add(0, vec![Sym::T(0)]).unwrap();
        assert_eq!(g.prods.len(), 1);
    }

    #[test]
    fn palindromes_are_palindromic() {
        let g = even_palindromes();
        for w in g.generate(6, 1000) {
            let mut r = w.clone();
            r.reverse();
            assert_eq!(w, r);
            assert_eq!(w.len() % 2, 0);
        }
    }
}

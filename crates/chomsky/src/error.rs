//! Error types for the computability substrate.

/// Errors raised while constructing Turing machines or grammars.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ChomskyError {
    /// A state index out of range.
    BadState(u32),
    /// A tape or terminal symbol out of range.
    BadSymbol(u32),
    /// A nonterminal index out of range.
    BadNonterminal(u32),
    /// Two transitions from the same (state, symbol) pair in a
    /// deterministic machine.
    NondeterministicTransition {
        /// The conflicting state.
        state: u32,
        /// The conflicting read symbol.
        symbol: u32,
    },
    /// A grammar transformation precondition failed.
    NotInNormalForm(&'static str),
}

impl std::fmt::Display for ChomskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChomskyError::BadState(q) => write!(f, "state {q} out of range"),
            ChomskyError::BadSymbol(s) => write!(f, "symbol {s} out of range"),
            ChomskyError::BadNonterminal(n) => write!(f, "nonterminal {n} out of range"),
            ChomskyError::NondeterministicTransition { state, symbol } => {
                write!(f, "duplicate transition from (q{state}, {symbol})")
            }
            ChomskyError::NotInNormalForm(what) => {
                write!(f, "grammar not in required normal form: {what}")
            }
        }
    }
}

impl std::error::Error for ChomskyError {}

#[cfg(test)]
mod tests {
    #[test]
    fn display() {
        use super::ChomskyError;
        assert!(ChomskyError::BadState(3).to_string().contains('3'));
        assert!(ChomskyError::NondeterministicTransition { state: 1, symbol: 2 }
            .to_string()
            .contains("q1"));
    }
}

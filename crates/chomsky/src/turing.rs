//! Deterministic single-tape Turing machines with a right-infinite tape —
//! the machine model of the paper's Theorem 4.3 appendix ("we assume the
//! terminology for Turing machines \\[21\\]").
//!
//! The appendix additionally assumes the machine *does not erase the input
//! word* (every input square, once written, keeps a symbol that still
//! identifies the original letter). Machines used with the CSL compiler
//! satisfy this by marking letters with primed variants rather than
//! overwriting them; the compiler is told which tape symbols stand for
//! which input letters.

use crate::error::ChomskyError;
use std::collections::HashMap;

/// Head movement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    /// One square left (no-op at the left end of the right-infinite tape).
    Left,
    /// One square right.
    Right,
    /// Stay.
    Stay,
}

/// Outcome of a bounded run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Reached the accepting state; carries the step count and the final
    /// tape contents (trailing blanks trimmed).
    Accepted {
        /// Steps executed.
        steps: usize,
        /// Final tape (trailing blanks removed).
        tape: Vec<u32>,
    },
    /// Halted in a non-accepting configuration (no applicable transition).
    Rejected {
        /// Steps executed.
        steps: usize,
    },
    /// The step bound was exhausted first.
    OutOfFuel,
}

impl Outcome {
    /// Whether the run accepted.
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        matches!(self, Outcome::Accepted { .. })
    }
}

/// A deterministic Turing machine over tape alphabet `0..num_symbols`
/// (symbol 0 is conventionally usable as a letter; the blank is explicit).
#[derive(Clone, Debug)]
pub struct TuringMachine {
    num_states: u32,
    num_symbols: u32,
    blank: u32,
    start: u32,
    accept: u32,
    delta: HashMap<(u32, u32), (u32, u32, Move)>,
}

impl TuringMachine {
    /// Create a machine shell; add transitions with
    /// [`TuringMachine::add_transition`].
    pub fn new(
        num_states: u32,
        num_symbols: u32,
        blank: u32,
        start: u32,
        accept: u32,
    ) -> Result<Self, ChomskyError> {
        if blank >= num_symbols {
            return Err(ChomskyError::BadSymbol(blank));
        }
        if start >= num_states {
            return Err(ChomskyError::BadState(start));
        }
        if accept >= num_states {
            return Err(ChomskyError::BadState(accept));
        }
        Ok(TuringMachine { num_states, num_symbols, blank, start, accept, delta: HashMap::new() })
    }

    /// Add `δ(from, read) = (to, write, dir)`.
    pub fn add_transition(
        &mut self,
        from: u32,
        read: u32,
        to: u32,
        write: u32,
        dir: Move,
    ) -> Result<(), ChomskyError> {
        if from >= self.num_states || to >= self.num_states {
            return Err(ChomskyError::BadState(from.max(to)));
        }
        if read >= self.num_symbols || write >= self.num_symbols {
            return Err(ChomskyError::BadSymbol(read.max(write)));
        }
        if self.delta.insert((from, read), (to, write, dir)).is_some() {
            return Err(ChomskyError::NondeterministicTransition { state: from, symbol: read });
        }
        Ok(())
    }

    /// Number of control states.
    #[must_use]
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// Tape alphabet size.
    #[must_use]
    pub fn num_symbols(&self) -> u32 {
        self.num_symbols
    }

    /// The blank symbol.
    #[must_use]
    pub fn blank(&self) -> u32 {
        self.blank
    }

    /// The start state.
    #[must_use]
    pub fn start_state(&self) -> u32 {
        self.start
    }

    /// The accepting (halting) state.
    #[must_use]
    pub fn accept_state(&self) -> u32 {
        self.accept
    }

    /// Iterate all transitions `((from, read), (to, write, dir))` in a
    /// deterministic order.
    pub fn transitions(&self) -> impl Iterator<Item = ((u32, u32), (u32, u32, Move))> + '_ {
        let mut keys: Vec<_> = self.delta.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(move |k| (k, self.delta[&k]))
    }

    /// The transition from `(state, symbol)`, if any.
    #[must_use]
    pub fn step_of(&self, state: u32, symbol: u32) -> Option<(u32, u32, Move)> {
        self.delta.get(&(state, symbol)).copied()
    }

    /// Run on `input` for at most `max_steps` steps.
    #[must_use]
    pub fn run(&self, input: &[u32], max_steps: usize) -> Outcome {
        let mut tape: Vec<u32> = input.to_vec();
        let mut head: usize = 0;
        let mut state = self.start;
        for steps in 0..max_steps {
            if state == self.accept {
                while tape.last() == Some(&self.blank) {
                    tape.pop();
                }
                return Outcome::Accepted { steps, tape };
            }
            let read = tape.get(head).copied().unwrap_or(self.blank);
            let Some((to, write, dir)) = self.delta.get(&(state, read)).copied() else {
                return Outcome::Rejected { steps };
            };
            if head >= tape.len() {
                tape.resize(head + 1, self.blank);
            }
            tape[head] = write;
            state = to;
            match dir {
                Move::Left => head = head.saturating_sub(1),
                Move::Right => head += 1,
                Move::Stay => {}
            }
        }
        if state == self.accept {
            while tape.last() == Some(&self.blank) {
                tape.pop();
            }
            return Outcome::Accepted { steps: max_steps, tape };
        }
        Outcome::OutOfFuel
    }

    /// Whether the machine accepts `input` within `max_steps` steps
    /// (`None` when the bound is hit — undecidability shows up as
    /// `None`, never as a wrong answer).
    #[must_use]
    pub fn accepts(&self, input: &[u32], max_steps: usize) -> Option<bool> {
        match self.run(input, max_steps) {
            Outcome::Accepted { .. } => Some(true),
            Outcome::Rejected { .. } => Some(false),
            Outcome::OutOfFuel => None,
        }
    }
}

/// Stock machines used by tests, examples and benches.
pub mod machines {
    use super::{Move, TuringMachine};

    /// Tape symbols of [`anbn`]: `a=0, b=1, A=2 (marked a), B=3 (marked b),
    /// blank=4`. The marked variants preserve the input letters, as the
    /// compiler of Theorem 4.3 requires.
    pub const ANBN_A: u32 = 0;
    /// `b` for [`anbn`].
    pub const ANBN_B: u32 = 1;
    /// Marked `a`.
    pub const ANBN_MA: u32 = 2;
    /// Marked `b`.
    pub const ANBN_MB: u32 = 3;
    /// Blank for [`anbn`].
    pub const ANBN_BLANK: u32 = 4;

    /// The classical marker machine for `{aⁿbⁿ | n ≥ 0}`, input preserved
    /// up to marking.
    ///
    /// States: 0 = scan-for-a (start), 1 = seek-unmarked-b, 2 = rewind,
    /// 3 = verify-rest-marked, 4 = accept.
    #[must_use]
    pub fn anbn() -> TuringMachine {
        let (a, b, ma, mb, blank) = (ANBN_A, ANBN_B, ANBN_MA, ANBN_MB, ANBN_BLANK);
        let mut m = TuringMachine::new(5, 5, blank, 0, 4).expect("valid shell");
        let mut t = |f, r, to, w, d| m.add_transition(f, r, to, w, d).expect("fresh");
        // q0: at leftmost unmarked symbol.
        t(0, a, 1, ma, Move::Right); // mark an a, go find a b
        t(0, mb, 3, mb, Move::Right); // all a's consumed: verify tail
        t(0, blank, 4, blank, Move::Stay); // empty word: accept
                                           // q1: scan right for an unmarked b.
        t(1, a, 1, a, Move::Right);
        t(1, mb, 1, mb, Move::Right);
        t(1, b, 2, mb, Move::Left); // mark it, rewind
                                    // q2: rewind to the leftmost unmarked symbol.
        t(2, a, 2, a, Move::Left);
        t(2, mb, 2, mb, Move::Left);
        t(2, ma, 0, ma, Move::Right);
        // q3: everything remaining must be marked b's.
        t(3, mb, 3, mb, Move::Right);
        t(3, blank, 4, blank, Move::Stay);
        m
    }

    /// Read-only machine accepting words of even length over `{0, 1}`
    /// (blank = 2).
    #[must_use]
    pub fn even_length() -> TuringMachine {
        let blank = 2;
        let mut m = TuringMachine::new(3, 3, blank, 0, 2).expect("valid shell");
        let mut t = |f, r, to, w, d| m.add_transition(f, r, to, w, d).expect("fresh");
        for s in 0..2 {
            t(0, s, 1, s, Move::Right);
            t(1, s, 0, s, Move::Right);
        }
        t(0, blank, 2, blank, Move::Stay);
        m
    }

    /// Machine accepting every word over `{0}` immediately (blank = 1).
    #[must_use]
    pub fn accept_all() -> TuringMachine {
        let mut m = TuringMachine::new(2, 2, 1, 0, 1).expect("valid shell");
        m.add_transition(0, 0, 1, 0, Move::Stay).expect("fresh");
        m.add_transition(0, 1, 1, 1, Move::Stay).expect("fresh");
        m
    }

    /// A machine that loops forever on every input (for bound-exhaustion
    /// tests; blank = 1).
    #[must_use]
    pub fn loop_forever() -> TuringMachine {
        let mut m = TuringMachine::new(2, 2, 1, 0, 1).expect("valid shell");
        m.add_transition(0, 0, 0, 0, Move::Stay).expect("fresh");
        m.add_transition(0, 1, 0, 1, Move::Stay).expect("fresh");
        m
    }
}

#[cfg(test)]
mod tests {
    use super::machines::*;
    use super::*;

    #[test]
    fn anbn_accepts_exactly_matched_words() {
        let m = anbn();
        for n in 0..6 {
            let mut w = vec![ANBN_A; n];
            w.extend(vec![ANBN_B; n]);
            assert_eq!(m.accepts(&w, 10_000), Some(true), "a^{n} b^{n}");
        }
        for w in [
            vec![ANBN_A],
            vec![ANBN_B],
            vec![ANBN_A, ANBN_B, ANBN_B],
            vec![ANBN_A, ANBN_A, ANBN_B],
            vec![ANBN_B, ANBN_A],
            vec![ANBN_A, ANBN_B, ANBN_A, ANBN_B],
        ] {
            assert_eq!(m.accepts(&w, 10_000), Some(false), "{w:?}");
        }
    }

    #[test]
    fn anbn_preserves_input_up_to_marking() {
        let m = anbn();
        let w = vec![ANBN_A, ANBN_A, ANBN_B, ANBN_B];
        match m.run(&w, 10_000) {
            Outcome::Accepted { tape, .. } => {
                assert_eq!(tape, vec![ANBN_MA, ANBN_MA, ANBN_MB, ANBN_MB]);
            }
            other => panic!("expected acceptance, got {other:?}"),
        }
    }

    #[test]
    fn even_length_machine() {
        let m = even_length();
        assert_eq!(m.accepts(&[], 100), Some(true));
        assert_eq!(m.accepts(&[0], 100), Some(false));
        assert_eq!(m.accepts(&[0, 1], 100), Some(true));
        assert_eq!(m.accepts(&[1, 1, 0], 100), Some(false));
    }

    #[test]
    fn loop_forever_exhausts_fuel() {
        let m = loop_forever();
        assert_eq!(m.accepts(&[0], 1000), None);
        assert_eq!(m.run(&[0], 5), Outcome::OutOfFuel);
    }

    #[test]
    fn determinism_enforced() {
        let mut m = TuringMachine::new(2, 2, 1, 0, 1).unwrap();
        m.add_transition(0, 0, 1, 0, Move::Stay).unwrap();
        assert!(matches!(
            m.add_transition(0, 0, 0, 0, Move::Left),
            Err(ChomskyError::NondeterministicTransition { .. })
        ));
    }

    #[test]
    fn bounds_checked() {
        assert!(TuringMachine::new(2, 2, 5, 0, 1).is_err());
        assert!(TuringMachine::new(2, 2, 1, 5, 1).is_err());
        let mut m = TuringMachine::new(2, 2, 1, 0, 1).unwrap();
        assert!(m.add_transition(0, 9, 1, 0, Move::Stay).is_err());
        assert!(m.add_transition(9, 0, 1, 0, Move::Stay).is_err());
    }

    #[test]
    fn left_boundary_is_sticky() {
        // A machine that tries to move left from square 0 stays put.
        let mut m = TuringMachine::new(3, 2, 1, 0, 2).unwrap();
        m.add_transition(0, 0, 1, 0, Move::Left).unwrap();
        m.add_transition(1, 0, 2, 0, Move::Stay).unwrap();
        assert_eq!(m.accepts(&[0], 10), Some(true));
    }

    #[test]
    fn transitions_iterate_deterministically() {
        let m = anbn();
        let t1: Vec<_> = m.transitions().collect();
        let t2: Vec<_> = m.transitions().collect();
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 11);
    }
}

//! CYK membership for grammars in Chomsky normal form.

use crate::cfg::{Cfg, Sym};
use crate::error::ChomskyError;
use crate::normal::{check_cnf, to_cnf, NormalForm};

/// A compiled CYK recognizer.
#[derive(Clone, Debug)]
pub struct CykRecognizer {
    num_nonterminals: usize,
    start: usize,
    derives_lambda: bool,
    /// `unary[t]` = nonterminals with `A → t`.
    unary: Vec<Vec<u32>>,
    /// Binary rules `A → B C` as `(a, b, c)`.
    binary: Vec<(u32, u32, u32)>,
}

impl CykRecognizer {
    /// Compile a recognizer from an arbitrary CFG (normalized internally).
    #[must_use]
    pub fn from_cfg(g: &Cfg) -> CykRecognizer {
        let NormalForm { cfg, derives_lambda } = to_cnf(g);
        Self::from_cnf(&cfg, derives_lambda).expect("to_cnf produces CNF")
    }

    /// Compile from a grammar already in CNF.
    pub fn from_cnf(g: &Cfg, derives_lambda: bool) -> Result<CykRecognizer, ChomskyError> {
        check_cnf(g)?;
        let mut unary = vec![Vec::new(); g.num_terminals as usize];
        let mut binary = Vec::new();
        for p in &g.prods {
            match p.rhs.as_slice() {
                [Sym::T(t)] => unary[*t as usize].push(p.lhs),
                [Sym::N(b), Sym::N(c)] => binary.push((p.lhs, *b, *c)),
                _ => unreachable!("checked CNF"),
            }
        }
        Ok(CykRecognizer {
            num_nonterminals: g.num_nonterminals as usize,
            start: g.start as usize,
            derives_lambda,
            unary,
            binary,
        })
    }

    /// Whether the word belongs to the language.
    #[must_use]
    pub fn recognizes(&self, word: &[u32]) -> bool {
        let n = word.len();
        if n == 0 {
            return self.derives_lambda;
        }
        let nn = self.num_nonterminals;
        // table[i][len-1] = bitset of nonterminals deriving word[i..i+len].
        let idx = |i: usize, l: usize| i * n + (l - 1);
        let mut table = vec![false; n * n * nn];
        let cell = |t: &[bool], i: usize, l: usize, a: usize| t[(idx(i, l)) * nn + a];
        for (i, &t) in word.iter().enumerate() {
            if (t as usize) < self.unary.len() {
                for &a in &self.unary[t as usize] {
                    table[idx(i, 1) * nn + a as usize] = true;
                }
            }
        }
        for l in 2..=n {
            for i in 0..=n - l {
                for split in 1..l {
                    for &(a, b, c) in &self.binary {
                        if cell(&table, i, split, b as usize)
                            && cell(&table, i + split, l - split, c as usize)
                        {
                            table[idx(i, l) * nn + a as usize] = true;
                        }
                    }
                }
            }
        }
        cell(&table, 0, n, self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::grammars;

    #[test]
    fn recognizes_anbn() {
        let r = CykRecognizer::from_cfg(&grammars::anbn());
        assert!(r.recognizes(&[]));
        assert!(r.recognizes(&[0, 1]));
        assert!(r.recognizes(&[0, 0, 0, 1, 1, 1]));
        assert!(!r.recognizes(&[0]));
        assert!(!r.recognizes(&[0, 1, 1]));
        assert!(!r.recognizes(&[1, 0]));
    }

    #[test]
    fn recognizes_dyck() {
        let r = CykRecognizer::from_cfg(&grammars::dyck());
        assert!(r.recognizes(&[0, 0, 1, 1, 0, 1]));
        assert!(!r.recognizes(&[0, 1, 1, 0]));
    }

    #[test]
    fn agrees_with_generation() {
        for g in [grammars::anbn(), grammars::dyck(), grammars::even_palindromes()] {
            let r = CykRecognizer::from_cfg(&g);
            let words = g.generate(6, 100_000);
            // Everything generated is recognized; everything recognized of
            // length ≤ 6 is generated.
            for w in &words {
                assert!(r.recognizes(w), "{w:?} generated but rejected");
            }
            let alphabet = g.num_terminals;
            let mut all: Vec<Vec<u32>> = vec![vec![]];
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &all {
                    for t in 0..alphabet {
                        let mut w2 = w.clone();
                        w2.push(t);
                        next.push(w2);
                    }
                }
                for w in &next {
                    assert_eq!(
                        r.recognizes(w),
                        words.contains(w),
                        "CYK disagrees with generation on {w:?}"
                    );
                }
                all = next;
            }
        }
    }

    #[test]
    fn out_of_alphabet_symbols_rejected() {
        let r = CykRecognizer::from_cfg(&grammars::anbn());
        assert!(!r.recognizes(&[7]));
    }
}

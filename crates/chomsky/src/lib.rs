//! # migratory-chomsky — computability substrate
//!
//! The CSL/CSL⁺ expressiveness results of Su, *Dynamic Constraints and
//! Object Migration* (VLDB 1991 / TCS 1997) are proved by simulating
//! Turing machines inside transaction schemas (Theorem 4.3) and by
//! compiling Greibach-normal-form grammars into chain-counter schemas
//! (Theorem 4.8, Example 4.1). This crate supplies those ingredients:
//!
//! * [`TuringMachine`] — deterministic single-tape machines with a
//!   right-infinite tape, bounded execution (undecidability surfaces as
//!   "out of fuel", never as a wrong answer), and stock machines
//!   ([`turing::machines`]) including an input-preserving `aⁿbⁿ` acceptor;
//! * [`Cfg`] — context-free grammars with bounded generation and stock
//!   grammars ([`cfg::grammars`]);
//! * [`normal`] — ε/unit/useless removal, Chomsky and **Greibach** normal
//!   forms;
//! * [`CykRecognizer`] — CYK membership.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod cyk;
pub mod error;
pub mod normal;
pub mod turing;

pub use cfg::{Cfg, Production, Sym};
pub use cyk::CykRecognizer;
pub use error::ChomskyError;
pub use normal::{is_gnf, to_cnf, to_gnf, NormalForm};
pub use turing::{Move, Outcome, TuringMachine};

//! Grammar normal forms: ε-removal, unit-removal, useless-symbol removal,
//! Chomsky normal form, and **Greibach normal form** — the form Theorem
//! 4.8's CSL⁺ compiler consumes ("every production rule has the form
//! N → cα where c is a terminal and α a string of nonterminals").
//!
//! Since GNF cannot produce the empty word, transformations carry a
//! `derives_lambda` flag alongside; the compiler of Theorem 4.8 handles λ
//! through prefix closure anyway (`Init(L)` always contains λ).

use crate::cfg::{Cfg, Production, Sym};
use crate::error::ChomskyError;

/// A grammar paired with the fact whether the original language contained
/// the empty word (normal forms below never produce λ themselves).
#[derive(Clone, Debug)]
pub struct NormalForm {
    /// The transformed grammar.
    pub cfg: Cfg,
    /// Whether λ was in the original language.
    pub derives_lambda: bool,
}

/// Remove ε-productions (except the information that λ was derivable,
/// returned in the flag).
#[must_use]
pub fn remove_epsilon(g: &Cfg) -> NormalForm {
    let nullable = g.nullable();
    let derives_lambda = nullable[g.start as usize];
    let mut out = Cfg { prods: Vec::new(), ..g.clone() };
    for p in &g.prods {
        // For every subset of nullable occurrences, emit the body with
        // that subset deleted (skip the fully-empty result).
        let positions: Vec<usize> = p
            .rhs
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Sym::N(n) if nullable[*n as usize]))
            .map(|(i, _)| i)
            .collect();
        let k = positions.len();
        debug_assert!(k < 24, "pathological nullable production");
        for mask in 0..(1u32 << k) {
            let drop: Vec<usize> = positions
                .iter()
                .enumerate()
                .filter(|(j, _)| mask & (1 << j) != 0)
                .map(|(_, &i)| i)
                .collect();
            let body: Vec<Sym> = p
                .rhs
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, s)| *s)
                .collect();
            if !body.is_empty() {
                out.add(p.lhs, body).expect("indices preserved");
            }
        }
    }
    NormalForm { cfg: out, derives_lambda }
}

/// Remove unit productions `A → B` (assumes ε-free input).
#[must_use]
pub fn remove_units(g: &Cfg) -> Cfg {
    let n = g.num_nonterminals as usize;
    // unit_reach[a][b]: A ⇒* B via unit productions.
    let mut reach = vec![vec![false; n]; n];
    for (i, row) in reach.iter_mut().enumerate() {
        row[i] = true;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for p in &g.prods {
            if let [Sym::N(b)] = p.rhs.as_slice() {
                for row in reach.iter_mut() {
                    if row[p.lhs as usize] && !row[*b as usize] {
                        row[*b as usize] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    let mut out = Cfg { prods: Vec::new(), ..g.clone() };
    #[allow(clippy::needless_range_loop)] // reach is a 2-D matrix
    for a in 0..n {
        for b in 0..n {
            if !reach[a][b] {
                continue;
            }
            for p in g.prods.iter().filter(|p| p.lhs == b as u32) {
                if matches!(p.rhs.as_slice(), [Sym::N(_)]) {
                    continue; // unit production — skipped
                }
                out.add(a as u32, p.rhs.clone()).expect("indices preserved");
            }
        }
    }
    out
}

/// Remove non-generating and unreachable nonterminals (useless symbols).
/// Nonterminal indices are preserved (productions are just dropped), so
/// callers need not remap.
#[must_use]
pub fn remove_useless(g: &Cfg) -> Cfg {
    // Generating fixpoint.
    let mut generating = vec![false; g.num_nonterminals as usize];
    let mut changed = true;
    while changed {
        changed = false;
        for p in &g.prods {
            if !generating[p.lhs as usize]
                && p.rhs.iter().all(|s| match s {
                    Sym::T(_) => true,
                    Sym::N(n) => generating[*n as usize],
                })
            {
                generating[p.lhs as usize] = true;
                changed = true;
            }
        }
    }
    // Reachable fixpoint (through generating productions only).
    let mut reachable = vec![false; g.num_nonterminals as usize];
    reachable[g.start as usize] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for p in &g.prods {
            if !reachable[p.lhs as usize] {
                continue;
            }
            if !p.rhs.iter().all(|s| match s {
                Sym::T(_) => true,
                Sym::N(n) => generating[*n as usize],
            }) {
                continue;
            }
            for s in &p.rhs {
                if let Sym::N(n) = s {
                    if !reachable[*n as usize] {
                        reachable[*n as usize] = true;
                        changed = true;
                    }
                }
            }
        }
    }
    let keep = |n: u32| generating[n as usize] && reachable[n as usize];
    let mut out = Cfg { prods: Vec::new(), ..g.clone() };
    for p in &g.prods {
        if keep(p.lhs)
            && p.rhs.iter().all(|s| match s {
                Sym::T(_) => true,
                Sym::N(n) => keep(*n),
            })
        {
            out.add(p.lhs, p.rhs.clone()).expect("indices preserved");
        }
    }
    out
}

/// Chomsky normal form: every production is `A → BC` or `A → a`
/// (ε- and unit-free input produced internally; λ carried in the flag).
#[must_use]
pub fn to_cnf(g: &Cfg) -> NormalForm {
    let NormalForm { cfg, derives_lambda } = remove_epsilon(g);
    let cfg = remove_units(&cfg);
    let mut cfg = remove_useless(&cfg);

    // TERM: replace terminals inside long bodies by fresh nonterminals.
    let mut term_nt: Vec<Option<u32>> = vec![None; cfg.num_terminals as usize];
    let prods = std::mem::take(&mut cfg.prods);
    let mut staged: Vec<Production> = Vec::new();
    for p in prods {
        if p.rhs.len() >= 2 {
            let body: Vec<Sym> = p
                .rhs
                .iter()
                .map(|s| match *s {
                    Sym::T(t) => {
                        let nt = *term_nt[t as usize].get_or_insert_with(|| {
                            let fresh = cfg.num_nonterminals;
                            cfg.num_nonterminals += 1;
                            fresh
                        });
                        Sym::N(nt)
                    }
                    n => n,
                })
                .collect();
            staged.push(Production { lhs: p.lhs, rhs: body });
        } else {
            staged.push(p);
        }
    }
    for (t, nt) in term_nt.iter().enumerate() {
        if let Some(nt) = nt {
            staged.push(Production { lhs: *nt, rhs: vec![Sym::T(t as u32)] });
        }
    }

    // BIN: split bodies longer than 2.
    let mut final_prods: Vec<Production> = Vec::new();
    for p in staged {
        if p.rhs.len() <= 2 {
            final_prods.push(p);
            continue;
        }
        let mut lhs = p.lhs;
        let body = p.rhs;
        for &sym in &body[..body.len() - 2] {
            let fresh = cfg.num_nonterminals;
            cfg.num_nonterminals += 1;
            final_prods.push(Production { lhs, rhs: vec![sym, Sym::N(fresh)] });
            lhs = fresh;
        }
        final_prods.push(Production { lhs, rhs: vec![body[body.len() - 2], body[body.len() - 1]] });
    }
    for p in final_prods {
        cfg.add(p.lhs, p.rhs).expect("fresh indices allocated");
    }
    NormalForm { cfg, derives_lambda }
}

/// Whether every production has the Greibach shape `A → a N₁ … Nₖ`.
#[must_use]
pub fn is_gnf(g: &Cfg) -> bool {
    g.prods.iter().all(|p| {
        matches!(p.rhs.first(), Some(Sym::T(_)))
            && p.rhs[1..].iter().all(|s| matches!(s, Sym::N(_)))
    })
}

/// Greibach normal form via the classical CNF-based algorithm
/// (Hopcroft & Ullman): order nonterminals, substitute lower-numbered
/// leading nonterminals, remove immediate left recursion with fresh "B"
/// nonterminals, then back-substitute.
#[must_use]
pub fn to_gnf(g: &Cfg) -> NormalForm {
    let NormalForm { cfg, derives_lambda } = to_cnf(g);
    let mut cfg = cfg;
    let base = cfg.num_nonterminals; // A-nonterminals: 0..base

    // Work tables: prods_of[a] = bodies.
    let mut bodies: Vec<Vec<Vec<Sym>>> = vec![Vec::new(); base as usize];
    for p in &cfg.prods {
        bodies[p.lhs as usize].push(p.rhs.clone());
    }
    let mut b_bodies: Vec<(u32, Vec<Vec<Sym>>)> = Vec::new(); // (B-nonterminal id, bodies)

    for i in 0..base {
        // Substitute Ai → Aj γ for j < i.
        loop {
            let mut replaced = false;
            let mut next: Vec<Vec<Sym>> = Vec::new();
            for body in std::mem::take(&mut bodies[i as usize]) {
                match body.first() {
                    Some(&Sym::N(j)) if j < i => {
                        for jb in bodies[j as usize].clone() {
                            let mut nb = jb;
                            nb.extend_from_slice(&body[1..]);
                            next.push(nb);
                        }
                        replaced = true;
                    }
                    _ => next.push(body),
                }
            }
            bodies[i as usize] = next;
            if !replaced {
                break;
            }
        }
        // Remove immediate left recursion Ai → Ai α.
        let (rec, nonrec): (Vec<Vec<Sym>>, Vec<Vec<Sym>>) = bodies[i as usize]
            .drain(..)
            .partition(|b| matches!(b.first(), Some(&Sym::N(j)) if j == i));
        if rec.is_empty() {
            bodies[i as usize] = nonrec;
        } else {
            let b_id = cfg.num_nonterminals;
            cfg.num_nonterminals += 1;
            let mut new_bodies = Vec::new();
            for b in &nonrec {
                new_bodies.push(b.clone());
                let mut with_b = b.clone();
                with_b.push(Sym::N(b_id));
                new_bodies.push(with_b);
            }
            bodies[i as usize] = new_bodies;
            let mut bb = Vec::new();
            for r in rec {
                let alpha = r[1..].to_vec();
                bb.push(alpha.clone());
                let mut with_b = alpha;
                with_b.push(Sym::N(b_id));
                bb.push(with_b);
            }
            b_bodies.push((b_id, bb));
        }
    }

    // Back-substitution: Ai bodies starting with Aj (j > i) get expanded,
    // from the highest index down. After this every A-body starts with a
    // terminal.
    for i in (0..base).rev() {
        let mut next = Vec::new();
        for body in std::mem::take(&mut bodies[i as usize]) {
            match body.first() {
                Some(&Sym::N(j)) if j < base && j > i => {
                    for jb in bodies[j as usize].clone() {
                        let mut nb = jb;
                        nb.extend_from_slice(&body[1..]);
                        next.push(nb);
                    }
                }
                _ => next.push(body),
            }
        }
        bodies[i as usize] = next;
    }

    // B-nonterminal bodies may start with an A-nonterminal — substitute.
    let mut final_b: Vec<(u32, Vec<Vec<Sym>>)> = Vec::new();
    for (b_id, bb) in b_bodies {
        let mut out = Vec::new();
        for body in bb {
            match body.first() {
                Some(&Sym::N(j)) if j < base => {
                    for jb in bodies[j as usize].clone() {
                        let mut nb = jb;
                        nb.extend_from_slice(&body[1..]);
                        out.push(nb);
                    }
                }
                _ => out.push(body),
            }
        }
        final_b.push((b_id, out));
    }

    let mut out = Cfg { prods: Vec::new(), ..cfg };
    for (i, bs) in bodies.iter().enumerate() {
        for b in bs {
            out.add(i as u32, b.clone()).expect("indices valid");
        }
    }
    for (b_id, bs) in final_b {
        for b in bs {
            out.add(b_id, b).expect("indices valid");
        }
    }
    let out = remove_useless(&out);
    debug_assert!(is_gnf(&out), "GNF construction left a non-Greibach production");
    NormalForm { cfg: out, derives_lambda }
}

/// Validate that a grammar is in CNF (`A → BC` | `A → a`).
pub fn check_cnf(g: &Cfg) -> Result<(), ChomskyError> {
    for p in &g.prods {
        let ok = matches!(p.rhs.as_slice(), [Sym::T(_)] | [Sym::N(_), Sym::N(_)]);
        if !ok {
            return Err(ChomskyError::NotInNormalForm("expected CNF"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::grammars;
    use std::collections::BTreeSet;

    fn same_language(a: &Cfg, b: &Cfg, b_lambda: bool, max_len: usize) {
        let wa = a.generate(max_len, 100_000);
        let mut wb: BTreeSet<Vec<u32>> = b.generate(max_len, 100_000);
        if b_lambda {
            wb.insert(vec![]);
        }
        assert_eq!(wa, wb, "language changed by transformation");
    }

    #[test]
    fn epsilon_removal_preserves_language() {
        for g in [grammars::anbn(), grammars::dyck(), grammars::zero_one_star()] {
            let nf = remove_epsilon(&g);
            assert!(nf.derives_lambda);
            assert!(nf.cfg.prods.iter().all(|p| !p.rhs.is_empty()));
            same_language(&g, &nf.cfg, nf.derives_lambda, 8);
        }
    }

    #[test]
    fn unit_removal_preserves_language() {
        let g = grammars::zero_one_star();
        let nf = remove_epsilon(&g);
        let g2 = remove_units(&nf.cfg);
        assert!(g2.prods.iter().all(|p| !matches!(p.rhs.as_slice(), [Sym::N(_)])));
        same_language(&g, &g2, nf.derives_lambda, 8);
    }

    #[test]
    fn cnf_has_cnf_shape_and_language() {
        for g in [grammars::anbn(), grammars::dyck(), grammars::even_palindromes()] {
            let nf = to_cnf(&g);
            check_cnf(&nf.cfg).unwrap();
            same_language(&g, &nf.cfg, nf.derives_lambda, 8);
        }
    }

    #[test]
    fn gnf_has_greibach_shape_and_language() {
        for g in [
            grammars::anbn(),
            grammars::dyck(),
            grammars::even_palindromes(),
            grammars::zero_one_star(),
        ] {
            let nf = to_gnf(&g);
            assert!(is_gnf(&nf.cfg), "not GNF: {:?}", nf.cfg.prods);
            same_language(&g, &nf.cfg, nf.derives_lambda, 8);
        }
    }

    #[test]
    fn gnf_of_left_recursive_grammar() {
        // E → E + a | a  (terminals: + = 0, a = 1), classic left recursion.
        let mut g = Cfg::new(2, 1, 0).unwrap();
        g.add(0, vec![Sym::N(0), Sym::T(0), Sym::T(1)]).unwrap();
        g.add(0, vec![Sym::T(1)]).unwrap();
        let nf = to_gnf(&g);
        assert!(is_gnf(&nf.cfg));
        assert!(!nf.derives_lambda);
        same_language(&g, &nf.cfg, nf.derives_lambda, 7);
    }

    #[test]
    fn useless_removal_drops_dead_rules() {
        let mut g = Cfg::new(1, 3, 0).unwrap();
        g.add(0, vec![Sym::T(0)]).unwrap();
        g.add(1, vec![Sym::T(0)]).unwrap(); // unreachable
        g.add(0, vec![Sym::N(2)]).unwrap(); // N2 non-generating
        let g2 = remove_useless(&g);
        assert_eq!(g2.prods.len(), 1);
        assert_eq!(g2.prods[0].lhs, 0);
    }

    #[test]
    fn cnf_check_rejects_non_cnf() {
        let g = grammars::anbn();
        assert!(check_cnf(&g).is_err());
    }
}

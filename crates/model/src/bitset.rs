//! Compact 128-bit sets of dense identifiers.
//!
//! Class hierarchies and attribute sets in the paper (and in every workload
//! we reproduce) are small; a schema is validated to at most 128 classes
//! and 128 attributes, so sets of either fit a single `u128` word. This
//! keeps role-set operations (Definition 3.1: closure under `isa`) and the
//! separator construction of Theorem 3.2 allocation-free.

use crate::ids::{AttrId, ClassId, DenseId};
use std::marker::PhantomData;

/// The maximum dense index storable in an [`IdSet`].
pub const MAX_DENSE: usize = 128;

/// A set of dense identifiers backed by a `u128` bitmask.
#[derive(PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdSet<T> {
    bits: u128,
    _marker: PhantomData<T>,
}

/// A set of classes (e.g. a role set's carrier, an isa up-closure).
pub type ClassSet = IdSet<ClassId>;
/// A set of attributes (e.g. `Att(Γ)`, `A*(P)`).
pub type AttrSet = IdSet<AttrId>;

// Manual impls so `T` need not be `Clone`/`Copy`/`Default`.
impl<T> Clone for IdSet<T> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for IdSet<T> {}
impl<T> Default for IdSet<T> {
    #[inline]
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> IdSet<T> {
    /// The empty set.
    #[inline]
    #[must_use]
    pub const fn empty() -> Self {
        IdSet { bits: 0, _marker: PhantomData }
    }

    /// Whether the set contains no elements.
    #[inline]
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.bits == 0
    }

    /// Number of elements.
    #[inline]
    #[must_use]
    pub const fn len(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// The raw bitmask (stable across identical element sets).
    #[inline]
    #[must_use]
    pub const fn raw(self) -> u128 {
        self.bits
    }

    /// Rebuild from a raw bitmask produced by [`IdSet::raw`].
    #[inline]
    #[must_use]
    pub const fn from_raw(bits: u128) -> Self {
        IdSet { bits, _marker: PhantomData }
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub const fn union(self, other: Self) -> Self {
        Self::from_raw(self.bits | other.bits)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub const fn intersection(self, other: Self) -> Self {
        Self::from_raw(self.bits & other.bits)
    }

    /// Set difference `self − other`.
    #[inline]
    #[must_use]
    pub const fn difference(self, other: Self) -> Self {
        Self::from_raw(self.bits & !other.bits)
    }

    /// Whether `self ⊆ other`.
    #[inline]
    #[must_use]
    pub const fn is_subset(self, other: Self) -> bool {
        self.bits & !other.bits == 0
    }

    /// Whether the two sets share no element.
    #[inline]
    #[must_use]
    pub const fn is_disjoint(self, other: Self) -> bool {
        self.bits & other.bits == 0
    }
}

impl<T: DenseId> IdSet<T> {
    /// The singleton set `{id}`.
    ///
    /// # Panics
    /// Panics if the dense index is ≥ [`MAX_DENSE`]; schemas validate this
    /// bound at construction.
    #[inline]
    #[must_use]
    pub fn singleton(id: T) -> Self {
        let mut s = Self::empty();
        s.insert(id);
        s
    }

    /// Insert an element, returning whether it was newly added.
    #[inline]
    pub fn insert(&mut self, id: T) -> bool {
        let i = id.index();
        assert!(i < MAX_DENSE, "dense index {i} exceeds IdSet capacity");
        let bit = 1u128 << i;
        let fresh = self.bits & bit == 0;
        self.bits |= bit;
        fresh
    }

    /// Remove an element, returning whether it was present.
    #[inline]
    pub fn remove(&mut self, id: T) -> bool {
        let i = id.index();
        if i >= MAX_DENSE {
            return false;
        }
        let bit = 1u128 << i;
        let present = self.bits & bit != 0;
        self.bits &= !bit;
        present
    }

    /// Membership test.
    #[inline]
    #[must_use]
    pub fn contains(self, id: T) -> bool {
        let i = id.index();
        i < MAX_DENSE && self.bits & (1u128 << i) != 0
    }

    /// Iterate elements in increasing dense-index order.
    pub fn iter(self) -> impl Iterator<Item = T> {
        let mut bits = self.bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(T::from_index(i))
            }
        })
    }

    /// The smallest element, if any.
    #[inline]
    #[must_use]
    pub fn first(self) -> Option<T> {
        if self.bits == 0 {
            None
        } else {
            Some(T::from_index(self.bits.trailing_zeros() as usize))
        }
    }
}

impl<T: DenseId> FromIterator<T> for IdSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = Self::empty();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

impl<T: DenseId> std::fmt::Debug for IdSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ClassSet {
        ids.iter().map(|&i| ClassId(i)).collect()
    }

    #[test]
    fn empty_set_properties() {
        let e = ClassSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.first(), None);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ClassSet::empty();
        assert!(s.insert(ClassId(3)));
        assert!(!s.insert(ClassId(3)));
        assert!(s.contains(ClassId(3)));
        assert!(!s.contains(ClassId(4)));
        assert!(s.remove(ClassId(3)));
        assert!(!s.remove(ClassId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn algebra_laws() {
        let a = set(&[0, 1, 5]);
        let b = set(&[1, 5, 9]);
        assert_eq!(a.union(b), set(&[0, 1, 5, 9]));
        assert_eq!(a.intersection(b), set(&[1, 5]));
        assert_eq!(a.difference(b), set(&[0]));
        assert!(a.intersection(b).is_subset(a));
        assert!(a.intersection(b).is_subset(b));
        assert!(!a.is_disjoint(b));
        assert!(set(&[0]).is_disjoint(set(&[9])));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = set(&[9, 0, 5, 127]);
        let v: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![0, 5, 9, 127]);
        assert_eq!(s.first(), Some(ClassId(0)));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn raw_roundtrip() {
        let s = set(&[2, 64, 100]);
        assert_eq!(ClassSet::from_raw(s.raw()), s);
    }

    #[test]
    #[should_panic(expected = "exceeds IdSet capacity")]
    fn overflow_panics() {
        let mut s = ClassSet::empty();
        s.insert(ClassId(128));
    }
}

//! Tuples over attribute sets.
//!
//! For a set of attributes `S`, a tuple is a total mapping `S → 𝒰`
//! (Section 2). The tuple *yielded by* an object `o` in a database `d` is
//! `ō(A) = a(o, A)` for each `A ∈ A*(P)`; objects are compared and
//! selected through their tuples.

use crate::bitset::AttrSet;
use crate::ids::AttrId;
use crate::value::Value;

/// A (partial) tuple: a finite mapping from attributes to constants.
///
/// "Total over S" is a property relative to an attribute set; use
/// [`Tuple::is_total_over`] to check it.
///
/// Stored as a vector sorted by attribute with unique keys: tuples are
/// tiny (a handful of attributes), so one exactly-sized allocation
/// beats a tree node per tuple — bulk loads allocate millions of
/// these. Iteration order, `Eq`, `Ord`, and the codec byte format are
/// identical to the former map representation (ascending attribute).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tuple {
    values: Vec<(AttrId, Value)>,
}

impl Tuple {
    /// The empty tuple (total over ∅).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from pairs. A repeated attribute keeps the last value.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (AttrId, Value)>) -> Self {
        let mut values: Vec<(AttrId, Value)> = pairs.into_iter().collect();
        values.sort_by_key(|&(a, _)| a); // stable: ties stay in insertion order
        values.reverse(); // last insertion first within each key run
        values.dedup_by_key(|&mut (a, _)| a); // keeps the first of each run
        values.reverse();
        Tuple { values }
    }

    fn index_of(&self, a: AttrId) -> Result<usize, usize> {
        self.values.binary_search_by_key(&a, |&(k, _)| k)
    }

    /// The value of attribute `a`, if present.
    #[must_use]
    pub fn get(&self, a: AttrId) -> Option<&Value> {
        self.index_of(a).ok().map(|i| &self.values[i].1)
    }

    /// Set the value of attribute `a`.
    pub fn set(&mut self, a: AttrId, v: Value) {
        match self.index_of(a) {
            Ok(i) => self.values[i].1 = v,
            Err(i) => self.values.insert(i, (a, v)),
        }
    }

    /// Remove the value of attribute `a`, returning it if present.
    pub fn unset(&mut self, a: AttrId) -> Option<Value> {
        self.index_of(a).ok().map(|i| self.values.remove(i).1)
    }

    /// Number of attributes with a value.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no attribute has a value.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(attribute, value)` pairs in attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.values.iter().map(|(a, v)| (*a, v))
    }

    /// Whether this tuple is total over `s` (defined on exactly… at least
    /// every attribute of `s`).
    #[must_use]
    pub fn is_total_over(&self, s: AttrSet) -> bool {
        s.iter().all(|a| self.index_of(a).is_ok())
    }

    /// The projection of this tuple onto `s`.
    #[must_use]
    pub fn project(&self, s: AttrSet) -> Tuple {
        // Filtering preserves sortedness and uniqueness.
        Tuple {
            values: self
                .values
                .iter()
                .filter(|(a, _)| s.contains(*a))
                .map(|(a, v)| (*a, v.clone()))
                .collect(),
        }
    }

    /// The attributes on which this tuple is defined.
    #[must_use]
    pub fn domain(&self) -> AttrSet {
        self.values.iter().map(|&(a, _)| a).collect()
    }
}

impl FromIterator<(AttrId, Value)> for Tuple {
    fn from_iter<I: IntoIterator<Item = (AttrId, Value)>>(iter: I) -> Self {
        Tuple::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn get_set_unset() {
        let mut t = Tuple::new();
        assert!(t.is_empty());
        t.set(a(1), Value::int(5));
        assert_eq!(t.get(a(1)), Some(&Value::int(5)));
        t.set(a(1), Value::int(6));
        assert_eq!(t.get(a(1)), Some(&Value::int(6)));
        assert_eq!(t.unset(a(1)), Some(Value::int(6)));
        assert_eq!(t.get(a(1)), None);
    }

    #[test]
    fn totality_and_projection() {
        let t = Tuple::from_pairs([(a(0), Value::int(0)), (a(1), Value::int(1))]);
        let s01: AttrSet = [a(0), a(1)].into_iter().collect();
        let s02: AttrSet = [a(0), a(2)].into_iter().collect();
        assert!(t.is_total_over(s01));
        assert!(!t.is_total_over(s02));
        let p = t.project([a(1)].into_iter().collect());
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(a(1)), Some(&Value::int(1)));
        assert_eq!(t.domain(), s01);
    }

    #[test]
    fn equality_is_value_based() {
        let t1 = Tuple::from_pairs([(a(0), Value::str("x"))]);
        let t2 = Tuple::from_pairs([(a(0), Value::str("x"))]);
        let t3 = Tuple::from_pairs([(a(0), Value::str("y"))]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }
}

//! Canonical binary encoding of model values — the shared substrate of
//! the persistence layer.
//!
//! The durable-store formats (transaction [`Delta`]s in `migratory-lang`,
//! [`Instance`] snapshots here, the enforcement WAL in `migratory-core`)
//! all bottom out in the primitives of this module: LEB128 varints,
//! length-prefixed strings, [`Value`]s, [`Tuple`]s and [`ClassSet`] /
//! [`AttrSet`] bitmasks. Two properties are contractual:
//!
//! * **Canonical** — encoding is a function of the abstract value alone
//!   (maps iterate in key order, sets in element order), so equal values
//!   produce identical bytes and byte comparison decides state equality.
//!   The recovery test suite leans on this: "recovered state ==
//!   uncrashed state" is checked as byte equality of re-encodings.
//! * **Self-delimiting** — every `decode_*` consumes exactly what the
//!   matching `encode_*` produced, so records compose by concatenation
//!   without external framing.
//!
//! Decoding is total: corrupt or truncated input yields
//! [`ModelError::Corrupt`], never a panic.
//!
//! [`Delta`]: https://docs.rs/migratory-lang
//! [`Instance`]: crate::Instance
//! [`Value`]: crate::Value
//! [`Tuple`]: crate::Tuple
//! [`ClassSet`]: crate::ClassSet
//! [`AttrSet`]: crate::AttrSet

use crate::bitset::IdSet;
use crate::error::ModelError;
use crate::ids::{AttrId, DenseId};
use crate::tuple::Tuple;
use crate::value::Value;

/// Append a LEB128 varint.
pub fn encode_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
pub fn encode_i64(out: &mut Vec<u8>, v: i64) {
    encode_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a LEB128 varint of a `u128` (bitmask payloads).
pub fn encode_u128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn encode_str(out: &mut Vec<u8>, s: &str) {
    encode_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Append a [`Value`]: one tag byte, then the payload.
pub fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            encode_i64(out, *i);
        }
        Value::Str(s) => {
            out.push(1);
            encode_str(out, s);
        }
        Value::Fresh(t) => {
            out.push(2);
            encode_u64(out, u64::from(*t));
        }
    }
}

/// Append a [`Tuple`]: entry count, then `(attr, value)` pairs in
/// attribute order (canonical — [`Tuple::iter`] is ordered).
pub fn encode_tuple(out: &mut Vec<u8>, t: &Tuple) {
    encode_u64(out, t.len() as u64);
    for (a, v) in t.iter() {
        encode_u64(out, a.index() as u64);
        encode_value(out, v);
    }
}

/// Append an [`IdSet`] as its raw bitmask.
pub fn encode_idset<T>(out: &mut Vec<u8>, s: IdSet<T>) {
    encode_u128(out, s.raw());
}

/// A cursor over an encoded byte slice. All reads are bounds-checked and
/// return [`ModelError::Corrupt`] on truncated or malformed input.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, starting at offset 0.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(what: &str) -> ModelError {
        ModelError::Corrupt(what.to_owned())
    }

    /// Read one raw byte.
    pub fn byte(&mut self) -> Result<u8, ModelError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| Self::corrupt("unexpected end"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, ModelError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(Self::corrupt("varint overlong"))
    }

    /// Read a zigzag-encoded signed varint.
    pub fn i64(&mut self) -> Result<i64, ModelError> {
        let v = self.u64()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read a LEB128 varint of a `u128`.
    pub fn u128(&mut self) -> Result<u128, ModelError> {
        let mut v = 0u128;
        for shift in (0..128).step_by(7) {
            let b = self.byte()?;
            v |= u128::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(Self::corrupt("u128 varint overlong"))
    }

    /// Read a `u64` varint, checked to fit a `usize` count bounded by the
    /// remaining input (so corrupt counts cannot trigger huge
    /// allocations).
    pub fn count(&mut self) -> Result<usize, ModelError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(Self::corrupt("count exceeds remaining input"));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, ModelError> {
        let len = self.count()?;
        let end = self.pos + len;
        let raw = self.bytes.get(self.pos..end).ok_or_else(|| Self::corrupt("string length"))?;
        self.pos = end;
        std::str::from_utf8(raw).map_err(|_| Self::corrupt("string is not UTF-8"))
    }

    /// Read a [`Value`].
    pub fn value(&mut self) -> Result<Value, ModelError> {
        match self.byte()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::str(self.str()?)),
            2 => {
                let t = self.u64()?;
                u32::try_from(t)
                    .map(Value::Fresh)
                    .map_err(|_| Self::corrupt("fresh tag out of range"))
            }
            t => Err(Self::corrupt(&format!("unknown value tag {t}"))),
        }
    }

    /// Read a [`Tuple`].
    pub fn tuple(&mut self) -> Result<Tuple, ModelError> {
        let n = self.count()?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let a = self.u64()?;
            let a = usize::try_from(a)
                .ok()
                .filter(|&i| i <= u32::MAX as usize)
                .map(AttrId::from_index)
                .ok_or_else(|| Self::corrupt("attribute index out of range"))?;
            pairs.push((a, self.value()?));
        }
        Ok(Tuple::from_pairs(pairs))
    }

    /// Read an [`IdSet`] bitmask.
    pub fn idset<T>(&mut self) -> Result<IdSet<T>, ModelError> {
        Ok(IdSet::from_raw(self.u128()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::ClassSet;
    use crate::ids::ClassId;

    #[test]
    fn varints_round_trip() {
        let mut out = Vec::new();
        let cases = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &cases {
            encode_u64(&mut out, v);
        }
        let signed = [0i64, -1, 1, i64::MIN, i64::MAX, -300];
        for &v in &signed {
            encode_i64(&mut out, v);
        }
        encode_u128(&mut out, u128::MAX);
        let mut r = Reader::new(&out);
        for &v in &cases {
            assert_eq!(r.u64().unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.i64().unwrap(), v);
        }
        assert_eq!(r.u128().unwrap(), u128::MAX);
        assert!(r.is_exhausted());
    }

    #[test]
    fn values_tuples_sets_round_trip() {
        let t = Tuple::from_pairs([
            (AttrId(0), Value::int(-42)),
            (AttrId(3), Value::str("héllo")),
            (AttrId(7), Value::fresh(9)),
        ]);
        let cs: ClassSet = [ClassId(0), ClassId(5), ClassId(127)].into_iter().collect();
        let mut out = Vec::new();
        encode_tuple(&mut out, &t);
        encode_idset(&mut out, cs);
        let mut r = Reader::new(&out);
        assert_eq!(r.tuple().unwrap(), t);
        assert_eq!(r.idset::<ClassId>().unwrap(), cs);
        assert!(r.is_exhausted());
    }

    #[test]
    fn corrupt_input_errors_not_panics() {
        // Truncated varint.
        assert!(Reader::new(&[0x80]).u64().is_err());
        // Overlong varint.
        assert!(Reader::new(&[0x80; 11]).u64().is_err());
        // String length beyond input.
        let mut out = Vec::new();
        encode_u64(&mut out, 100);
        out.push(b'x');
        assert!(Reader::new(&out).str().is_err());
        // Unknown value tag.
        assert!(Reader::new(&[9]).value().is_err());
        // Count larger than remaining input is rejected before allocation.
        let mut out = Vec::new();
        encode_u64(&mut out, u64::MAX);
        assert!(Reader::new(&out).count().is_err());
    }
}

//! # migratory-model — the object-based data model substrate
//!
//! This crate implements the "simple semantic data model" of Section 2 of
//! Jianwen Su, *Dynamic Constraints and Object Migration* (VLDB 1991; TCS
//! 184 (1997) 195–236): object identifiers, classes organised in
//! *specialization graphs* (rooted, acyclic inheritance hierarchies with
//! multiple inheritance), attributes ranging over an infinite domain of
//! printable constants, database instances, selection *conditions*, and
//! *role sets* (the isa-closed sets of classes an object may inhabit
//! simultaneously).
//!
//! The model is a proper subset of classical semantic models (IFO, SDM,
//! GSM, TAXIS); Definitions 2.1 and 2.2 of the paper are implemented
//! verbatim by [`Schema`] and [`Instance`], and Definition 3.1 / 4.5 by
//! [`RoleSet`].
//!
//! ## Indexed storage
//!
//! [`Instance`] is an *indexed* store: besides the per-object heap it
//! maintains a class-membership index (`o(P)` materialized, behind
//! [`Instance::objects_in`]) and an attribute-value index (objects per
//! `(attribute, value)` pair), both kept exactly consistent by every
//! mutation path and audited by [`Instance::check_invariants`]. The
//! selection semantics `Sat(Γ, d, P)` ([`Instance::sat`]) *plans* from
//! the condition — most selective indexed equality atom first, class
//! index as fallback — so point selects and guard-literal evaluation
//! cost O(candidates · log |d|) instead of a heap scan; the scan
//! survives as [`Instance::sat_scan`], the oracle for property tests and
//! the benchmark baseline (`sat_heavy` in `BENCH_enforce.json`).
//!
//! ## Quick tour
//!
//! ```
//! use migratory_model::{SchemaBuilder, Instance, Value};
//!
//! // Fig. 1 of the paper: the university schema.
//! let mut b = SchemaBuilder::new();
//! let person = b.class("PERSON", &["SSN", "Name"]).unwrap();
//! let employee = b.subclass("EMPLOYEE", &[person], &["Salary", "WorksIn"]).unwrap();
//! let student = b.subclass("STUDENT", &[person], &["Major", "FirstEnroll"]).unwrap();
//! let _ga = b.subclass("GRAD_ASSIST", &[employee, student], &["PcAppoint"]).unwrap();
//! let schema = b.build().unwrap();
//!
//! assert!(schema.is_isa_root(person));
//! assert_eq!(schema.attr_star(student).len(), 4); // SSN, Name, Major, FirstEnroll
//!
//! let mut db = Instance::empty();
//! let values = schema.attrs_of(person).iter()
//!     .map(|&a| (a, Value::from("x")))
//!     .collect();
//! let oid = db.create(schema.up_closure_of(person), values);
//! assert!(db.occurs(oid));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod codec;
pub mod condition;
pub mod display;
pub mod error;
pub mod ids;
pub mod instance;
pub mod roleset;
pub mod schema;
pub mod text;
pub mod tuple;
pub mod value;

pub use bitset::{AttrSet, ClassSet, IdSet};
pub use condition::{Atom, CmpOp, Condition, Term};
pub use error::ModelError;
pub use ids::{AttrId, ClassId, Oid, VarId};
pub use instance::Instance;
pub use roleset::RoleSet;
pub use schema::{Schema, SchemaBuilder};
pub use tuple::Tuple;
pub use value::Value;

//! Human-readable rendering of schemas and instances, in the style of
//! Figs. 1 and 2 of the paper.

use crate::instance::Instance;
use crate::schema::Schema;
use std::fmt::Write as _;

/// Render a schema in the text format accepted by
/// [`crate::text::parse_schema`] (round-trips).
#[must_use]
pub fn schema_to_text(schema: &Schema) -> String {
    let mut out = String::from("schema S {\n");
    for c in schema.classes() {
        let _ = write!(out, "  class {}", schema.class_name(c));
        let parents = schema.parents(c);
        if !parents.is_empty() {
            let names: Vec<&str> = parents.iter().map(|&p| schema.class_name(p)).collect();
            let _ = write!(out, " isa {}", names.join(", "));
        }
        let attrs = schema.attrs_of(c);
        if attrs.is_empty() {
            out.push_str(" { }\n");
        } else {
            let names: Vec<&str> = attrs.iter().map(|&a| schema.attr_name(a)).collect();
            let _ = writeln!(out, " {{ {} }}", names.join(", "));
        }
    }
    out.push('}');
    out
}

/// Render the class-membership map `o` of an instance, one line per class
/// (Fig. 2(a) style).
#[must_use]
pub fn membership_table(schema: &Schema, db: &Instance) -> String {
    let mut out = String::new();
    for c in schema.classes() {
        let objs: Vec<String> = db.objects_in(c).map(|o| o.to_string()).collect();
        let _ = writeln!(out, "o({}) = {{{}}}", schema.class_name(c), objs.join(", "));
    }
    let _ = write!(out, "next = {}", db.next_oid());
    out
}

/// Render the attribute assignment `a` of an instance as one table per
/// class (Fig. 2(b) style): a header row of attribute names (inherited
/// included) and one row per member object.
#[must_use]
pub fn attribute_tables(schema: &Schema, db: &Instance) -> String {
    let mut out = String::new();
    for c in schema.classes() {
        let members: Vec<_> = db.objects_in(c).collect();
        if members.is_empty() {
            continue;
        }
        let attrs: Vec<_> = schema.attr_star(c).iter().collect();
        let mut header: Vec<String> = vec!["oid".into()];
        header.extend(attrs.iter().map(|&a| schema.attr_name(a).to_owned()));
        let mut rows: Vec<Vec<String>> = vec![header];
        for &o in &members {
            let mut row = vec![o.to_string()];
            for &a in &attrs {
                row.push(db.value(o, a).map_or_else(|| "—".into(), ToString::to_string));
            }
            rows.push(row);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|i| rows.iter().map(|r| r[i].chars().count()).max().unwrap_or(0))
            .collect();
        let _ = writeln!(out, "{}:", schema.class_name(c));
        for (ri, row) in rows.iter().enumerate() {
            out.push_str("  ");
            for (i, cell) in row.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(out, "{cell}{} ", " ".repeat(pad));
            }
            out.push('\n');
            if ri == 0 {
                let total: usize = widths.iter().sum::<usize>() + widths.len();
                let _ = writeln!(out, "  {}", "-".repeat(total));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::ClassSet;
    use crate::schema::university_schema;
    use crate::text::parse_schema;
    use crate::value::Value;
    use std::collections::BTreeMap;

    #[test]
    fn schema_text_roundtrip() {
        let s = university_schema();
        let text = schema_to_text(&s);
        let s2 = parse_schema(&text).unwrap();
        assert_eq!(s.num_classes(), s2.num_classes());
        assert_eq!(s.num_attrs(), s2.num_attrs());
        for c in s.classes() {
            let c2 = s2.class_id(s.class_name(c)).unwrap();
            assert_eq!(s.parents(c).len(), s2.parents(c2).len());
        }
    }

    #[test]
    fn tables_render() {
        let s = university_schema();
        let mut db = Instance::empty();
        let person = s.class_id("PERSON").unwrap();
        let ssn = s.attr_id("SSN").unwrap();
        let name = s.attr_id("Name").unwrap();
        db.create(
            ClassSet::singleton(person),
            BTreeMap::from([(ssn, Value::str("0067")), (name, Value::str("Michelle"))]),
        );
        let m = membership_table(&s, &db);
        assert!(m.contains("o(PERSON) = {o1}"));
        assert!(m.contains("next = o2"));
        let t = attribute_tables(&s, &db);
        assert!(t.contains("Michelle"));
        assert!(t.contains("SSN"));
        // Classes without members render nothing.
        assert!(!t.contains("GRAD_ASSIST:"));
    }
}

//! The universal domain 𝒰 of constants.
//!
//! The paper assumes a single countably infinite domain of printable
//! constants (`a, b, c, …`) and notes the results generalise to multiple
//! domains. We realise 𝒰 as the disjoint union of
//!
//! * 64-bit integers (the paper freely uses ℕ ⊆ 𝒰, e.g. in the branching
//!   construction of Lemma 3.4),
//! * interned strings, and
//! * *fresh* values `⊥ₖ` — the `p₁…p_l` / `ν₁…ν_m` values that the proofs
//!   of Lemma 3.9 and Theorem 4.3 draw from outside the constants of a
//!   transaction schema. Keeping them in a separate variant makes
//!   "does not occur among the schema's constants" trivially true by
//!   construction.
//!
//! Equality is plain structural equality across the union; the domain is
//! totally ordered (ints < strings < fresh) so instances and canonical
//! databases have a deterministic form.

use std::fmt;
use std::sync::Arc;

/// A constant of the universal domain 𝒰.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A string constant (cheaply clonable).
    Str(Arc<str>),
    /// A fresh value minted by an algorithm, guaranteed distinct from every
    /// `Int`/`Str` constant and from every other `Fresh` with a different
    /// tag. Used for the `pⱼ` and `νᵢ` values of Lemma 3.9.
    Fresh(u32),
}

impl Value {
    /// String constant constructor.
    #[must_use]
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Integer constant constructor.
    #[must_use]
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// A fresh value with the given tag.
    #[must_use]
    pub const fn fresh(tag: u32) -> Self {
        Value::Fresh(tag)
    }

    /// Whether this is a fresh (algorithm-minted) value.
    #[must_use]
    pub const fn is_fresh(&self) -> bool {
        matches!(self, Value::Fresh(_))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Fresh(t) => write!(f, "⊥{t}"),
        }
    }
}

/// A deterministic source of fresh values, used by the analyzer and the
/// CSL compilers. Every value it yields is distinct from all previously
/// yielded ones.
#[derive(Clone, Debug, Default)]
pub struct FreshSource {
    next: u32,
}

impl FreshSource {
    /// A source starting at tag 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint the next fresh value.
    pub fn mint(&mut self) -> Value {
        let v = Value::Fresh(self.next);
        self.next += 1;
        v
    }

    /// Mint `n` fresh values.
    pub fn mint_n(&mut self, n: usize) -> Vec<Value> {
        (0..n).map(|_| self.mint()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_across_variants() {
        assert_eq!(Value::int(3), Value::from(3));
        assert_eq!(Value::str("ab"), Value::from("ab"));
        assert_ne!(Value::int(3), Value::str("3"));
        assert_ne!(Value::fresh(3), Value::int(3));
        assert_ne!(Value::fresh(0), Value::fresh(1));
    }

    #[test]
    fn ordering_is_total_and_stratified() {
        assert!(Value::int(i64::MAX) < Value::str(""));
        assert!(Value::str("zzz") < Value::fresh(0));
        assert!(Value::int(-1) < Value::int(0));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(-7).to_string(), "-7");
        assert_eq!(Value::str("Ann").to_string(), "Ann");
        assert_eq!(Value::fresh(2).to_string(), "⊥2");
    }

    #[test]
    fn fresh_source_never_repeats() {
        let mut src = FreshSource::new();
        let vs = src.mint_n(100);
        for (i, a) in vs.iter().enumerate() {
            for b in &vs[i + 1..] {
                assert_ne!(a, b);
            }
            assert!(a.is_fresh());
        }
    }
}

//! Database instances (Definition 2.2 of the paper), stored behind an
//! **indexed heap**.
//!
//! An instance of a schema `D` is a triple `d = (o, a, oᵢ)`:
//!
//! * `o` maps each class to a finite set of abstract objects, such that
//!   `o(P) ⊆ o(Q)` whenever `P isa Q` (membership is up-closed) and
//!   `o(P) ∩ o(Q) = ∅` for non-weakly-connected `P, Q` (an object lives in
//!   a single component);
//! * `a` assigns a constant to every `(object, attribute)` pair with the
//!   attribute defined on a class the object belongs to;
//! * `oᵢ` is the *next* abstract object — strictly larger than every
//!   object occurring in `d`, used when new objects are created. Because
//!   objects are only ever minted from this counter, each abstract object
//!   is created into the database **at most once**, as the model requires.
//!
//! # Storage layout
//!
//! The *heap* stores, per object, its class set (which is its role set
//! `Rs(o, d)`) and its attribute tuple; `BTreeMap`s give deterministic
//! `<ₒ`-ordered iteration, which the canonical-database machinery of
//! Theorem 3.2 relies on. Two secondary indexes are derived from the heap
//! and maintained **incrementally by every mutation path**
//! ([`Instance::create`], [`Instance::delete_object`],
//! [`Instance::add_classes`], [`Instance::remove_classes`],
//! [`Instance::set_values`], [`Instance::put_object`]; the bulk
//! constructors [`Instance::restrict`] and [`Instance::from_objects`]
//! rebuild them wholesale):
//!
//! * the **class index** — `o(P)` materialized per class, behind
//!   [`Instance::objects_in`];
//! * the **value index** — the objects holding each `(attribute, value)`
//!   pair, which turns the equality atoms of a selection condition into
//!   point lookups.
//!
//! [`Instance::sat`] plans from the condition: it drives from the most
//! selective indexed equality atom (falling back to the class index) and
//! verifies the remaining atoms per candidate, so `Sat(Γ, d, P)` costs
//! O(candidates · log |d|) instead of a full heap scan. The pre-index
//! full scan survives as [`Instance::sat_scan`] — the semantic oracle for
//! property tests and the benchmark baseline. Index/heap consistency is
//! part of [`Instance::check_invariants`].

use crate::bitset::ClassSet;
use crate::condition::{CmpOp, Condition, Term};
use crate::error::ModelError;
use crate::ids::{AttrId, ClassId, DenseId, Oid};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// A database instance `d = (o, a, oᵢ)`.
///
/// Equality, ordering and hashing are defined on the heap triple alone;
/// the indexes are derived data and never observable through comparisons.
#[derive(Clone)]
pub struct Instance {
    /// Class membership per occurring object — always a non-empty set.
    membership: BTreeMap<Oid, ClassSet>,
    /// Attribute values per occurring object.
    attrs: BTreeMap<Oid, Tuple>,
    /// Numeric part of the next abstract object `oᵢ`.
    next: u64,
    /// Class index: `o(P)` per dense class index (slots grow on demand).
    class_index: Vec<BTreeSet<Oid>>,
    /// Value index: objects holding each `(attribute, value)` pair.
    /// Entries are removed when their set drains, so `len` of an entry is
    /// an exact selectivity count.
    value_index: BTreeMap<(AttrId, Value), BTreeSet<Oid>>,
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.membership == other.membership && self.attrs == other.attrs && self.next == other.next
    }
}

impl Eq for Instance {}

impl PartialOrd for Instance {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Instance {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.membership, &self.attrs, self.next).cmp(&(
            &other.membership,
            &other.attrs,
            other.next,
        ))
    }
}

impl std::hash::Hash for Instance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.membership.hash(state);
        self.attrs.hash(state);
        self.next.hash(state);
    }
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("membership", &self.membership)
            .field("attrs", &self.attrs)
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

impl Default for Instance {
    fn default() -> Self {
        Self::empty()
    }
}

impl Instance {
    /// The empty database `d₀ = (∅, ∅, o₁)` — the starting point of every
    /// migration pattern (Section 3).
    #[must_use]
    pub fn empty() -> Self {
        Instance {
            membership: BTreeMap::new(),
            attrs: BTreeMap::new(),
            next: 1,
            class_index: Vec::new(),
            value_index: BTreeMap::new(),
        }
    }

    /// The next abstract object `oᵢ`.
    #[must_use]
    pub fn next_oid(&self) -> Oid {
        Oid(self.next)
    }

    /// Whether object `o` occurs in the database (belongs to some class).
    #[must_use]
    pub fn occurs(&self, o: Oid) -> bool {
        self.membership.contains_key(&o)
    }

    /// Number of occurring objects.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.membership.len()
    }

    /// Whether no object occurs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// `Rs(o, d)` — the role set of `o` as a raw class set (∅ if `o` does
    /// not occur).
    #[must_use]
    pub fn role_set(&self, o: Oid) -> ClassSet {
        self.membership.get(&o).copied().unwrap_or_default()
    }

    /// The attribute tuple `ō` yielded by `o` (empty if absent).
    #[must_use]
    pub fn tuple_of(&self, o: Oid) -> Tuple {
        self.attrs.get(&o).cloned().unwrap_or_default()
    }

    /// Borrow the attribute tuple of `o`, if it occurs.
    #[must_use]
    pub fn tuple_ref(&self, o: Oid) -> Option<&Tuple> {
        self.attrs.get(&o)
    }

    /// The value `a(o, A)`.
    #[must_use]
    pub fn value(&self, o: Oid, a: AttrId) -> Option<&Value> {
        self.attrs.get(&o).and_then(|t| t.get(a))
    }

    /// Iterate all occurring objects in `<ₒ` order.
    pub fn objects(&self) -> impl Iterator<Item = Oid> + '_ {
        self.membership.keys().copied()
    }

    /// Iterate objects of class `P` (the set `o(P)`) in `<ₒ` order —
    /// served from the class index, O(|o(P)|) instead of O(|d|).
    pub fn objects_in(&self, p: ClassId) -> impl Iterator<Item = Oid> + '_ {
        self.class_index.get(p.index()).into_iter().flatten().copied()
    }

    /// Number of objects of class `P` (index lookup, O(1)).
    #[must_use]
    pub fn num_objects_in(&self, p: ClassId) -> usize {
        self.class_index.get(p.index()).map_or(0, BTreeSet::len)
    }

    /// Number of objects holding the value `v` for attribute `a` (index
    /// lookup — the planner's selectivity estimate, which is exact).
    #[must_use]
    pub fn num_objects_with(&self, a: AttrId, v: &Value) -> usize {
        // Cheap key clone: `Value` is an integer, an `Arc<str>` or a tag.
        self.value_index.get(&(a, v.clone())).map_or(0, BTreeSet::len)
    }

    /// `Sat(Γ, d, P)` — the objects of `o(P)` whose tuples satisfy the
    /// **ground** condition `Γ` (Section 2), in `<ₒ` order.
    ///
    /// Planned from the condition: the driver is the most selective of
    /// the indexed equality atoms and the class index; the remaining
    /// atoms (and class membership, when driving from a value entry) are
    /// verified per candidate. The heap is never scanned. Semantically
    /// identical to [`Instance::sat_scan`].
    #[must_use]
    pub fn sat(&self, p: ClassId, gamma: &Condition) -> Vec<Oid> {
        match self.plan(p, gamma) {
            SatPlan::Empty => Vec::new(),
            SatPlan::ValueEntry(set) => set
                .iter()
                .copied()
                .filter(|&o| self.role_set(o).contains(p) && self.member_satisfies(o, gamma))
                .collect(),
            SatPlan::ClassEntry(set) => {
                set.iter().copied().filter(|&o| self.member_satisfies(o, gamma)).collect()
            }
        }
    }

    /// Whether `Sat(Γ, d, P)` is non-empty — same planner as
    /// [`Instance::sat`] with early exit, for guard-literal evaluation.
    #[must_use]
    pub fn sat_exists(&self, p: ClassId, gamma: &Condition) -> bool {
        match self.plan(p, gamma) {
            SatPlan::Empty => false,
            SatPlan::ValueEntry(set) => {
                set.iter().any(|&o| self.role_set(o).contains(p) && self.member_satisfies(o, gamma))
            }
            SatPlan::ClassEntry(set) => set.iter().any(|&o| self.member_satisfies(o, gamma)),
        }
    }

    /// `Sat(Γ, d, P)` by full heap scan — the pre-index implementation,
    /// kept verbatim as the semantic oracle for the index-backed
    /// [`Instance::sat`] (property tests) and as the benchmark baseline.
    #[must_use]
    pub fn sat_scan(&self, p: ClassId, gamma: &Condition) -> Vec<Oid> {
        self.membership
            .iter()
            .filter(|(o, cs)| {
                cs.contains(p) && gamma.satisfied_by(self.attrs.get(o).unwrap_or(&Tuple::default()))
            })
            .map(|(o, _)| *o)
            .collect()
    }

    /// Choose the cheapest driver for `Sat(Γ, d, P)`.
    fn plan<'s>(&'s self, p: ClassId, gamma: &Condition) -> SatPlan<'s> {
        let class_entry = self.class_index.get(p.index());
        let mut best: Option<&'s BTreeSet<Oid>> = None;
        for atom in gamma.atoms() {
            if atom.op != CmpOp::Eq {
                continue;
            }
            let Term::Const(v) = &atom.term else { continue };
            match self.value_index.get(&(atom.attr, v.clone())) {
                // An equality atom nobody satisfies: Sat is empty, full stop.
                None => return SatPlan::Empty,
                Some(set) => {
                    if best.is_none_or(|b| set.len() < b.len()) {
                        best = Some(set);
                    }
                }
            }
        }
        match (best, class_entry) {
            (None, None) => SatPlan::Empty,
            (None, Some(c)) => SatPlan::ClassEntry(c),
            (Some(v), None) => {
                // Value hits exist but the class has no members: empty —
                // but the per-candidate class check handles it uniformly.
                SatPlan::ValueEntry(v)
            }
            (Some(v), Some(c)) => {
                if c.len() <= v.len() {
                    SatPlan::ClassEntry(c)
                } else {
                    SatPlan::ValueEntry(v)
                }
            }
        }
    }

    /// Whether occurring object `o`'s tuple satisfies ground `gamma`.
    fn member_satisfies(&self, o: Oid, gamma: &Condition) -> bool {
        gamma.satisfied_by(self.attrs.get(&o).unwrap_or(&Tuple::default()))
    }

    /// All constants currently stored in the database.
    #[must_use]
    pub fn active_domain(&self) -> std::collections::BTreeSet<Value> {
        self.attrs.values().flat_map(|t| t.iter().map(|(_, v)| v.clone())).collect()
    }

    // ------------------------------------------------------------------
    // Index maintenance primitives.
    // ------------------------------------------------------------------

    fn index_classes_add(&mut self, o: Oid, cs: ClassSet) {
        for c in cs.iter() {
            if self.class_index.len() <= c.index() {
                self.class_index.resize_with(c.index() + 1, BTreeSet::new);
            }
            self.class_index[c.index()].insert(o);
        }
    }

    fn index_classes_remove(&mut self, o: Oid, cs: ClassSet) {
        for c in cs.iter() {
            if let Some(set) = self.class_index.get_mut(c.index()) {
                set.remove(&o);
            }
        }
    }

    fn index_value_add(&mut self, o: Oid, a: AttrId, v: &Value) {
        self.value_index.entry((a, v.clone())).or_default().insert(o);
    }

    fn index_value_remove(&mut self, o: Oid, a: AttrId, v: &Value) {
        if let std::collections::btree_map::Entry::Occupied(mut e) =
            self.value_index.entry((a, v.clone()))
        {
            e.get_mut().remove(&o);
            if e.get().is_empty() {
                e.remove();
            }
        }
    }

    /// Drop every index entry of `o`'s current heap state.
    fn deindex_object(&mut self, o: Oid) {
        if let Some(&cs) = self.membership.get(&o) {
            self.index_classes_remove(o, cs);
        }
        if let Some(t) = self.attrs.get(&o) {
            let pairs: Vec<(AttrId, Value)> = t.iter().map(|(a, v)| (a, v.clone())).collect();
            for (a, v) in pairs {
                self.index_value_remove(o, a, &v);
            }
        }
    }

    // ------------------------------------------------------------------
    // Mutation primitives. These are the *mechanical* operations the
    // language layer's operational semantics (Definition 2.5) is built
    // from; they do not themselves validate conditions. Every one keeps
    // the class and value indexes exactly synchronized with the heap.
    // ------------------------------------------------------------------

    /// Create a new object with the given class memberships and attribute
    /// values, consuming the next abstract object. Returns its identifier.
    pub fn create(&mut self, classes: ClassSet, values: BTreeMap<AttrId, Value>) -> Oid {
        debug_assert!(!classes.is_empty(), "created objects must belong to a class");
        let oid = Oid(self.next);
        self.next += 1;
        self.index_classes_add(oid, classes);
        for (&a, v) in &values {
            self.index_value_add(oid, a, v);
        }
        self.membership.insert(oid, classes);
        self.attrs.insert(oid, Tuple::from_pairs(values));
        oid
    }

    /// Create a batch of objects at once, minting consecutive ascending
    /// identifiers from the next-object counter. Returns the first minted
    /// identifier (row `i` became `Oid(first.0 + i)`).
    ///
    /// Semantically identical to calling [`Instance::create`] once per
    /// row, but the heap maps and both secondary indexes are merged in
    /// bulk — O(existing + new) via sorted-merge rebuilds instead of
    /// O(new · log(existing)) individual inserts — which is what makes
    /// million-object bulk loads cheap. Because every minted identifier
    /// is larger than every existing one, the new heap entries append
    /// past the current maximum and the merges never interleave.
    pub fn bulk_create(&mut self, rows: &[(ClassSet, Tuple)]) -> Oid {
        let first = Oid(self.next);
        self.next += rows.len() as u64;
        let oid = |i: usize| Oid(first.0 + i as u64);
        // Class index: per class the minted oids arrive ascending, and all
        // are larger than any indexed oid — append in bulk per class.
        let mut per_class: Vec<Vec<Oid>> = Vec::new();
        for (i, (cs, _)) in rows.iter().enumerate() {
            debug_assert!(!cs.is_empty(), "created objects must belong to a class");
            for c in cs.iter() {
                if per_class.len() <= c.index() {
                    per_class.resize_with(c.index() + 1, Vec::new);
                }
                per_class[c.index()].push(oid(i));
            }
        }
        if self.class_index.len() < per_class.len() {
            self.class_index.resize_with(per_class.len(), BTreeSet::new);
        }
        for (ci, oids) in per_class.into_iter().enumerate() {
            if !oids.is_empty() {
                let mut add = BTreeSet::from_iter(oids);
                self.class_index[ci].append(&mut add);
            }
        }
        // Value index: sort all new (key, oid) facts once, group runs,
        // then merge groups — extending sets of keys already present and
        // bulk-appending the (typically dominant) fresh keys.
        let mut pairs: Vec<((AttrId, Value), Oid)> = rows
            .iter()
            .enumerate()
            .flat_map(|(i, (_, t))| t.iter().map(move |(a, v)| ((a, v.clone()), oid(i))))
            .collect();
        pairs.sort_unstable();
        let mut fresh: Vec<((AttrId, Value), BTreeSet<Oid>)> = Vec::new();
        let mut run: Option<((AttrId, Value), BTreeSet<Oid>)> = None;
        let mut flush = |index: &mut BTreeMap<(AttrId, Value), BTreeSet<Oid>>,
                         group: ((AttrId, Value), BTreeSet<Oid>)| {
            match index.get_mut(&group.0) {
                Some(existing) => existing.extend(group.1),
                None => fresh.push(group),
            }
        };
        for (key, o) in pairs {
            match &mut run {
                Some((k, set)) if *k == key => {
                    set.insert(o);
                }
                _ => {
                    if let Some(group) = run.take() {
                        flush(&mut self.value_index, group);
                    }
                    run = Some((key, BTreeSet::from([o])));
                }
            }
        }
        if let Some(group) = run {
            flush(&mut self.value_index, group);
        }
        let mut fresh: BTreeMap<(AttrId, Value), BTreeSet<Oid>> = fresh.into_iter().collect();
        self.value_index.append(&mut fresh);
        // Heap: new keys are strictly above the existing range, so the
        // sorted-merge append degenerates to concatenation.
        let mut membership: BTreeMap<Oid, ClassSet> =
            rows.iter().enumerate().map(|(i, (cs, _))| (oid(i), *cs)).collect();
        let mut attrs: BTreeMap<Oid, Tuple> =
            rows.iter().enumerate().map(|(i, (_, t))| (oid(i), t.clone())).collect();
        self.membership.append(&mut membership);
        self.attrs.append(&mut attrs);
        debug_assert!(self.check_index_invariants().is_ok(), "bulk_create desynced the indexes");
        first
    }

    /// Remove an object entirely (class memberships and attribute values).
    pub fn delete_object(&mut self, o: Oid) {
        self.deindex_object(o);
        self.membership.remove(&o);
        self.attrs.remove(&o);
    }

    /// Remove the classes of `remove` from `o`'s membership and clear the
    /// attribute values of `clear_attrs`. If the membership becomes empty
    /// the object is removed entirely (cannot happen through `generalize`,
    /// which never removes root classes, but kept total for safety).
    pub fn remove_classes(
        &mut self,
        o: Oid,
        remove: ClassSet,
        clear_attrs: impl IntoIterator<Item = AttrId>,
    ) {
        let Some(&cur) = self.membership.get(&o) else { return };
        let dropped = cur.intersection(remove);
        let rest = cur.difference(remove);
        self.index_classes_remove(o, dropped);
        self.membership.insert(o, rest);
        if self.attrs.contains_key(&o) {
            for a in clear_attrs {
                let old = self.attrs.get_mut(&o).and_then(|t| t.unset(a));
                if let Some(v) = old {
                    self.index_value_remove(o, a, &v);
                }
            }
        }
        if rest.is_empty() {
            self.delete_object(o);
        }
    }

    /// Add the classes of `add` to `o`'s membership and set the given
    /// attribute values.
    pub fn add_classes(
        &mut self,
        o: Oid,
        add: ClassSet,
        values: impl IntoIterator<Item = (AttrId, Value)>,
    ) {
        let Some(&cur) = self.membership.get(&o) else { return };
        self.index_classes_add(o, add.difference(cur));
        self.membership.insert(o, cur.union(add));
        for (a, v) in values {
            self.set_value_indexed(o, a, v);
        }
    }

    /// Overwrite attribute values of `o`.
    pub fn set_values(&mut self, o: Oid, values: impl IntoIterator<Item = (AttrId, Value)>) {
        if self.membership.contains_key(&o) {
            for (a, v) in values {
                self.set_value_indexed(o, a, v);
            }
        }
    }

    /// Set one attribute value on the heap and both sides of the value
    /// index. Writing back the stored value is a no-op.
    fn set_value_indexed(&mut self, o: Oid, a: AttrId, v: Value) {
        let t = self.attrs.entry(o).or_default();
        match t.get(a) {
            Some(old) if *old == v => return,
            Some(old) => {
                let old = old.clone();
                t.set(a, v.clone());
                self.index_value_remove(o, a, &old);
            }
            None => t.set(a, v.clone()),
        }
        self.index_value_add(o, a, &v);
    }

    /// Restore an object's raw state — membership and attribute tuple —
    /// exactly as previously captured (the rollback primitive behind
    /// `migratory_lang`'s transaction deltas). Any current state of `o`
    /// is de-indexed first, so restoring over a live object keeps the
    /// indexes exact. Does not validate against a schema; callers restore
    /// states that were valid when captured.
    pub fn put_object(&mut self, o: Oid, classes: ClassSet, tuple: Tuple) {
        debug_assert!(!classes.is_empty(), "restored objects must belong to a class");
        self.deindex_object(o);
        self.index_classes_add(o, classes);
        for (a, v) in tuple.iter() {
            let v = v.clone();
            self.index_value_add(o, a, &v);
        }
        self.membership.insert(o, classes);
        self.attrs.insert(o, tuple);
        // Schema-free half of `check_invariants` — the schema is not in
        // scope here, but index/heap agreement is auditable and this is
        // the rollback/restore primitive where drift would be fatal.
        debug_assert!(self.check_index_invariants().is_ok(), "put_object desynced the indexes");
    }

    /// Build an instance from raw heap parts, deriving both indexes in
    /// bulk: entries are grouped in sorted order and the `BTree`
    /// containers are built through their (bulk-building) `FromIterator`
    /// — O(entries log entries) with small constants, which is what
    /// keeps snapshot recovery far cheaper than replaying history.
    fn from_parts(
        membership: BTreeMap<Oid, ClassSet>,
        attrs: BTreeMap<Oid, Tuple>,
        next: u64,
    ) -> Instance {
        // Class index: per class, oids arrive in ascending heap order.
        let mut per_class: Vec<Vec<Oid>> = Vec::new();
        for (&o, cs) in &membership {
            for c in cs.iter() {
                if per_class.len() <= c.index() {
                    per_class.resize_with(c.index() + 1, Vec::new);
                }
                per_class[c.index()].push(o);
            }
        }
        let class_index: Vec<BTreeSet<Oid>> =
            per_class.into_iter().map(BTreeSet::from_iter).collect();
        // Value index: sort all (key, oid) facts once, then group runs.
        let mut pairs: Vec<((AttrId, Value), Oid)> = attrs
            .iter()
            .flat_map(|(&o, t)| t.iter().map(move |(a, v)| ((a, v.clone()), o)))
            .collect();
        pairs.sort_unstable();
        let mut groups: Vec<((AttrId, Value), BTreeSet<Oid>)> = Vec::new();
        for (key, o) in pairs {
            match groups.last_mut() {
                Some((k, set)) if *k == key => {
                    set.insert(o);
                }
                _ => groups.push((key, BTreeSet::from([o]))),
            }
        }
        let value_index: BTreeMap<(AttrId, Value), BTreeSet<Oid>> = groups.into_iter().collect();
        Instance { membership, attrs, next, class_index, value_index }
    }

    /// The restriction `d|_I` of the database onto a set of objects
    /// (Section 3, before Lemma 3.5): keep only the membership and values
    /// of objects in `I`; the `next` counter is preserved and the indexes
    /// are rebuilt for the surviving objects.
    #[must_use]
    pub fn restrict(&self, objects: &[Oid]) -> Instance {
        let db = Instance::from_parts(
            self.membership
                .iter()
                .filter(|(o, _)| objects.contains(o))
                .map(|(o, cs)| (*o, *cs))
                .collect(),
            self.attrs
                .iter()
                .filter(|(o, _)| objects.contains(o))
                .map(|(o, t)| (*o, t.clone()))
                .collect(),
            self.next,
        );
        debug_assert!(db.check_index_invariants().is_ok(), "restrict rebuilt stale indexes");
        db
    }

    /// Construct an instance directly (used by canonical-database builders
    /// in the analyzer); the indexes are derived from the given objects.
    /// `next` is set just above the largest object.
    #[must_use]
    pub fn from_objects(objects: impl IntoIterator<Item = (Oid, ClassSet, Tuple)>) -> Instance {
        let mut membership = BTreeMap::new();
        let mut attrs = BTreeMap::new();
        let mut max = 0u64;
        for (o, cs, t) in objects {
            max = max.max(o.0);
            membership.insert(o, cs);
            attrs.insert(o, t);
        }
        Instance::from_parts(membership, attrs, max + 1)
    }

    /// Force the next-object counter (canonical databases only).
    ///
    /// # Panics
    /// Panics if some occurring object is not `<ₒ`-smaller than `next`:
    /// winding the counter back over live objects would let `create` mint
    /// an identifier a second time, silently corrupting the heap and its
    /// indexes (abstract objects are created **at most once**, Section 2).
    pub fn set_next(&mut self, next: u64) {
        // Keys are ordered: the largest occurring object bounds them all,
        // so the guard is O(log n) — it sits on the undo/redo hot paths.
        assert!(
            self.membership.last_key_value().is_none_or(|(o, _)| o.0 < next),
            "set_next({next}) would recycle a live object identifier"
        );
        self.next = next;
    }

    // ------------------------------------------------------------------
    // Snapshot encoding (the persistence layer's checkpoint format).
    // ------------------------------------------------------------------

    /// Append a canonical binary snapshot of the heap triple `(o, a, oᵢ)`
    /// to `out`. Only the heap is written — the class and value indexes
    /// are derived data and are rebuilt by
    /// [`Instance::decode_snapshot`] — so equal instances (which compare
    /// on the heap alone) produce identical bytes.
    pub fn encode_snapshot(&self, out: &mut Vec<u8>) {
        crate::codec::encode_u64(out, self.next);
        crate::codec::encode_u64(out, self.membership.len() as u64);
        for (o, cs) in &self.membership {
            crate::codec::encode_u64(out, o.0);
            crate::codec::encode_idset(out, *cs);
            let empty = Tuple::default();
            let t = self.attrs.get(o).unwrap_or(&empty);
            crate::codec::encode_tuple(out, t);
        }
    }

    /// Rebuild an instance from [`Instance::encode_snapshot`] bytes,
    /// deriving both secondary indexes from the decoded heap. The decoded
    /// instance compares equal to the encoded one and passes
    /// [`Instance::check_invariants`] whenever the original did.
    pub fn decode_snapshot(r: &mut crate::codec::Reader<'_>) -> Result<Instance, ModelError> {
        let next = r.u64()?;
        let n = r.count()?;
        let mut members: Vec<(Oid, ClassSet)> = Vec::with_capacity(n);
        let mut tuples: Vec<(Oid, Tuple)> = Vec::with_capacity(n);
        for _ in 0..n {
            let o = Oid(r.u64()?);
            // Canonical encodings are strictly ascending; requiring it
            // rules out duplicates and lets the maps bulk-build below.
            if members.last().is_some_and(|&(p, _)| o <= p) {
                return Err(ModelError::Corrupt(format!("snapshot objects out of order at {o}")));
            }
            let cs: ClassSet = r.idset()?;
            if cs.is_empty() {
                return Err(ModelError::Corrupt(format!("snapshot object {o} has no classes")));
            }
            if o.0 >= next {
                return Err(ModelError::Corrupt(format!(
                    "snapshot object {o} is not below the next counter o{next}"
                )));
            }
            let t = r.tuple()?;
            members.push((o, cs));
            tuples.push((o, t));
        }
        Ok(Instance::from_parts(members.into_iter().collect(), tuples.into_iter().collect(), next))
    }

    /// Check the well-formedness invariants of Definition 2.2 against a
    /// schema:
    ///
    /// 1. membership up-closed under isa (`o(P) ⊆ o(Q)` for `P isa Q`);
    /// 2. each object inside a single weakly-connected component;
    /// 3. `a` total: each object has a value for exactly the attributes of
    ///    the classes it belongs to;
    /// 4. every occurring object `<ₒ`-smaller than `next`;
    /// 5. the class and value indexes agree exactly with the heap.
    pub fn check_invariants(&self, schema: &Schema) -> Result<(), ModelError> {
        for (&o, &cs) in &self.membership {
            if cs.is_empty() {
                return Err(ModelError::InvariantViolated(format!(
                    "object {o} occurs with empty class set"
                )));
            }
            if !schema.is_up_closed(cs) {
                return Err(ModelError::InvariantViolated(format!(
                    "membership of {o} is not isa-closed"
                )));
            }
            let comp = schema.component_of(cs.first().expect("non-empty"));
            if cs.iter().any(|c| schema.component_of(c) != comp) {
                return Err(ModelError::InvariantViolated(format!(
                    "object {o} belongs to non-weakly-connected classes"
                )));
            }
            let expected = schema.attrs_of_class_set(cs);
            let t = self.attrs.get(&o).cloned().unwrap_or_default();
            for a in expected.iter() {
                if t.get(a).is_none() {
                    return Err(ModelError::MissingValue { oid: o.0, attr: a });
                }
            }
            if t.domain() != expected {
                return Err(ModelError::InvariantViolated(format!(
                    "object {o} stores values outside its defined attributes"
                )));
            }
            if o.0 >= self.next {
                return Err(ModelError::InvariantViolated(format!(
                    "object {o} is not smaller than next object o{}",
                    self.next
                )));
            }
        }
        self.check_index_invariants()
    }

    /// Verify that both secondary indexes agree exactly with the heap
    /// (every heap fact indexed, every index entry backed by the heap).
    fn check_index_invariants(&self) -> Result<(), ModelError> {
        let mut indexed_memberships = 0usize;
        for (ci, set) in self.class_index.iter().enumerate() {
            let c = ClassId::from_index(ci);
            for &o in set {
                if !self.role_set(o).contains(c) {
                    return Err(ModelError::InvariantViolated(format!(
                        "class index lists {o} under {c} but the heap disagrees"
                    )));
                }
            }
            indexed_memberships += set.len();
        }
        let heap_memberships: usize = self.membership.values().map(|cs| cs.len()).sum();
        if indexed_memberships != heap_memberships {
            return Err(ModelError::InvariantViolated(format!(
                "class index covers {indexed_memberships} memberships, heap has {heap_memberships}"
            )));
        }
        let mut indexed_values = 0usize;
        for ((a, v), set) in &self.value_index {
            if set.is_empty() {
                return Err(ModelError::InvariantViolated(format!(
                    "value index keeps a drained entry for ({a}, {v})"
                )));
            }
            for o in set {
                if self.value(*o, *a) != Some(v) {
                    return Err(ModelError::InvariantViolated(format!(
                        "value index lists {o} under ({a}, {v}) but the heap disagrees"
                    )));
                }
            }
            indexed_values += set.len();
        }
        let heap_values: usize = self.attrs.values().map(Tuple::len).sum();
        if indexed_values != heap_values {
            return Err(ModelError::InvariantViolated(format!(
                "value index covers {indexed_values} values, heap has {heap_values}"
            )));
        }
        Ok(())
    }
}

/// The driver chosen by [`Instance::plan`] for a `Sat` evaluation.
enum SatPlan<'s> {
    /// Some equality atom matches no stored value: the result is empty.
    Empty,
    /// Drive from a value-index entry (class membership still checked per
    /// candidate).
    ValueEntry(&'s BTreeSet<Oid>),
    /// Drive from the class index (condition checked per candidate).
    ClassEntry(&'s BTreeSet<Oid>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Atom;
    use crate::schema::university_schema;

    fn sample() -> (Schema, Instance) {
        let schema = university_schema();
        let mut db = Instance::empty();
        let person = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let name = schema.attr_id("Name").unwrap();
        for (s, n) in [("1234", "John"), ("2345", "Jim")] {
            db.create(
                ClassSet::singleton(person),
                BTreeMap::from([(ssn, Value::str(s)), (name, Value::str(n))]),
            );
        }
        (schema, db)
    }

    #[test]
    fn empty_database_is_d0() {
        let d = Instance::empty();
        assert!(d.is_empty());
        assert_eq!(d.next_oid(), Oid(1));
        assert_eq!(d.role_set(Oid(1)), ClassSet::empty());
    }

    #[test]
    fn create_bumps_next_and_occurs() {
        let (schema, db) = sample();
        assert_eq!(db.num_objects(), 2);
        assert_eq!(db.next_oid(), Oid(3));
        assert!(db.occurs(Oid(1)) && db.occurs(Oid(2)) && !db.occurs(Oid(3)));
        db.check_invariants(&schema).unwrap();
    }

    #[test]
    fn sat_selects_by_condition() {
        let (schema, db) = sample();
        let person = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let g = Condition::from_atoms([Atom::eq_const(ssn, "1234")]);
        assert_eq!(db.sat(person, &g), vec![Oid(1)]);
        let g2 = Condition::from_atoms([Atom::ne_const(ssn, "1234")]);
        assert_eq!(db.sat(person, &g2), vec![Oid(2)]);
        assert_eq!(db.sat(person, &Condition::empty()).len(), 2);
        // No students yet.
        let student = schema.class_id("STUDENT").unwrap();
        assert!(db.sat(student, &Condition::empty()).is_empty());
    }

    #[test]
    fn sat_agrees_with_scan_oracle() {
        let (schema, mut db) = sample();
        let person = schema.class_id("PERSON").unwrap();
        let student = schema.class_id("STUDENT").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let name = schema.attr_id("Name").unwrap();
        let major = schema.attr_id("Major").unwrap();
        let fe = schema.attr_id("FirstEnroll").unwrap();
        db.add_classes(
            Oid(2),
            schema.up_closure_of(student),
            [(major, Value::str("CS")), (fe, Value::int(1990))],
        );
        let conds = [
            Condition::empty(),
            Condition::from_atoms([Atom::eq_const(ssn, "1234")]),
            Condition::from_atoms([Atom::eq_const(ssn, "nope")]),
            Condition::from_atoms([Atom::ne_const(ssn, "1234")]),
            Condition::from_atoms([Atom::eq_const(name, "Jim"), Atom::eq_const(major, "CS")]),
            Condition::from_atoms([Atom::eq_const(ssn, "2345"), Atom::ne_const(name, "Jim")]),
        ];
        for p in [person, student] {
            for g in &conds {
                assert_eq!(db.sat(p, g), db.sat_scan(p, g), "sat vs scan on {g:?}");
                assert_eq!(db.sat_exists(p, g), !db.sat_scan(p, g).is_empty());
            }
        }
    }

    #[test]
    fn add_remove_classes() {
        let (schema, mut db) = sample();
        let student = schema.class_id("STUDENT").unwrap();
        let major = schema.attr_id("Major").unwrap();
        let fe = schema.attr_id("FirstEnroll").unwrap();
        db.add_classes(
            Oid(1),
            schema.up_closure_of(student),
            [(major, Value::str("CS")), (fe, Value::int(1990))],
        );
        db.check_invariants(&schema).unwrap();
        assert!(db.role_set(Oid(1)).contains(student));
        assert_eq!(db.objects_in(student).collect::<Vec<_>>(), vec![Oid(1)]);
        // Removing STUDENT (and its attrs) restores a plain person.
        db.remove_classes(Oid(1), schema.down_closure_of(student), [major, fe]);
        db.check_invariants(&schema).unwrap();
        assert!(!db.role_set(Oid(1)).contains(student));
        assert!(db.value(Oid(1), major).is_none());
        assert_eq!(db.num_objects_in(student), 0);
        assert_eq!(db.num_objects_with(major, &Value::str("CS")), 0);
    }

    #[test]
    fn bulk_create_matches_one_by_one_creation() {
        let schema = university_schema();
        let person = schema.class_id("PERSON").unwrap();
        let student = schema.class_id("STUDENT").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let name = schema.attr_id("Name").unwrap();
        let major = schema.attr_id("Major").unwrap();
        let fe = schema.attr_id("FirstEnroll").unwrap();
        let rows: Vec<(ClassSet, Tuple)> = (0..40)
            .map(|i| {
                // Shared Name values exercise value-index set merging;
                // alternate classes exercise both class-index slots.
                let (cs, extra) = if i % 3 == 0 {
                    (
                        schema.up_closure_of(student),
                        vec![(major, Value::str("CS")), (fe, Value::int(1990))],
                    )
                } else {
                    (ClassSet::singleton(person), vec![])
                };
                let mut pairs =
                    vec![(ssn, Value::str(&format!("s{i}"))), (name, Value::str("dup"))];
                pairs.extend(extra);
                (cs, Tuple::from_pairs(pairs))
            })
            .collect();
        // Oracle: one `create` per row, over a non-empty starting db so the
        // merge paths (existing keys, existing heap) are exercised.
        let (_, mut oracle) = sample();
        let mut bulk = oracle.clone();
        for (cs, t) in &rows {
            oracle.create(*cs, t.iter().map(|(a, v)| (a, v.clone())).collect());
        }
        let start = bulk.next_oid();
        let first = bulk.bulk_create(&rows);
        assert_eq!(first, start);
        assert_eq!(bulk, oracle, "heap triple identical to per-row creation");
        bulk.check_invariants(&schema).unwrap();
        assert_eq!(bulk.num_objects_with(name, &Value::str("dup")), 40);
        assert_eq!(bulk.num_objects_in(student), 14);
        // Appending a second batch on top of the first merges again.
        let more: Vec<(ClassSet, Tuple)> = (0..5)
            .map(|i| {
                (
                    ClassSet::singleton(person),
                    Tuple::from_pairs(vec![
                        (ssn, Value::str(&format!("t{i}"))),
                        (name, Value::str("dup")),
                    ]),
                )
            })
            .collect();
        bulk.bulk_create(&more);
        bulk.check_invariants(&schema).unwrap();
        assert_eq!(bulk.num_objects_with(name, &Value::str("dup")), 45);
    }

    #[test]
    fn delete_object_is_total() {
        let (schema, mut db) = sample();
        db.delete_object(Oid(1));
        assert!(!db.occurs(Oid(1)));
        assert_eq!(db.num_objects(), 1);
        // next is NOT reused — abstract objects are created at most once.
        assert_eq!(db.next_oid(), Oid(3));
        db.check_invariants(&schema).unwrap();
        let person = schema.class_id("PERSON").unwrap();
        assert_eq!(db.objects_in(person).collect::<Vec<_>>(), vec![Oid(2)]);
    }

    #[test]
    fn restriction_keeps_counter_and_rebuilds_indexes() {
        let (schema, db) = sample();
        let r = db.restrict(&[Oid(2)]);
        assert_eq!(r.num_objects(), 1);
        assert!(r.occurs(Oid(2)) && !r.occurs(Oid(1)));
        assert_eq!(r.next_oid(), db.next_oid());
        r.check_invariants(&schema).unwrap();
        let person = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        assert_eq!(r.objects_in(person).collect::<Vec<_>>(), vec![Oid(2)]);
        // The restricted-away object's values are not indexed.
        assert_eq!(r.num_objects_with(ssn, &Value::str("1234")), 0);
        assert_eq!(r.num_objects_with(ssn, &Value::str("2345")), 1);
    }

    #[test]
    fn from_objects_rebuilds_indexes() {
        let (schema, db) = sample();
        let rebuilt = Instance::from_objects(
            db.objects().map(|o| (o, db.role_set(o), db.tuple_of(o))).collect::<Vec<_>>(),
        );
        rebuilt.check_invariants(&schema).unwrap();
        let person = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        assert_eq!(rebuilt.objects_in(person).count(), 2);
        assert_eq!(
            rebuilt.sat(person, &Condition::from_atoms([Atom::eq_const(ssn, "1234")])),
            vec![Oid(1)]
        );
    }

    #[test]
    fn put_object_over_live_object_reindexes() {
        let (schema, mut db) = sample();
        let person = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let name = schema.attr_id("Name").unwrap();
        // Overwrite o1 with a different tuple (the undo path restores
        // captured states over whatever the transaction left behind).
        db.put_object(
            Oid(1),
            ClassSet::singleton(person),
            Tuple::from_pairs([(ssn, Value::str("9999")), (name, Value::str("John"))]),
        );
        db.check_invariants(&schema).unwrap();
        assert_eq!(db.num_objects_with(ssn, &Value::str("1234")), 0, "old value de-indexed");
        assert_eq!(
            db.sat(person, &Condition::from_atoms([Atom::eq_const(ssn, "9999")])),
            vec![Oid(1)]
        );
    }

    #[test]
    #[should_panic(expected = "recycle")]
    fn set_next_rejects_recycling_live_identifiers() {
        let (_, mut db) = sample();
        db.delete_object(Oid(2));
        // o1 still occurs: winding the counter back to 1 would let
        // `create` mint o1 a second time and corrupt the indexes.
        db.set_next(1);
    }

    #[test]
    fn set_next_to_fresh_range_is_fine() {
        let (schema, mut db) = sample();
        db.set_next(17);
        assert_eq!(db.next_oid(), Oid(17));
        db.check_invariants(&schema).unwrap();
    }

    #[test]
    fn invariant_violations_detected() {
        let (schema, mut db) = sample();
        let ga = schema.class_id("GRAD_ASSIST").unwrap();
        // Not up-closed: GRAD_ASSIST without its ancestors.
        db.membership.insert(Oid(9), ClassSet::singleton(ga));
        db.attrs.insert(Oid(9), Tuple::new());
        db.next = 10;
        assert!(db.check_invariants(&schema).is_err());
    }

    #[test]
    fn missing_attribute_detected() {
        let (schema, mut db) = sample();
        let ssn = schema.attr_id("SSN").unwrap();
        db.attrs.get_mut(&Oid(1)).unwrap().unset(ssn);
        assert_eq!(
            db.check_invariants(&schema),
            Err(ModelError::MissingValue { oid: 1, attr: ssn })
        );
    }

    #[test]
    fn extra_attribute_detected() {
        let (schema, mut db) = sample();
        let salary = schema.attr_id("Salary").unwrap();
        db.attrs.get_mut(&Oid(1)).unwrap().set(salary, Value::int(1));
        assert!(db.check_invariants(&schema).is_err());
    }

    #[test]
    fn stale_index_entries_detected() {
        let (schema, mut db) = sample();
        // Heap mutated behind the indexes' back: both directions caught.
        let ssn = schema.attr_id("SSN").unwrap();
        db.attrs.get_mut(&Oid(1)).unwrap().set(ssn, Value::str("8888"));
        let err = db.check_invariants(&schema).unwrap_err();
        assert!(format!("{err:?}").contains("index"), "got {err:?}");
    }

    #[test]
    fn snapshot_round_trips_and_rebuilds_indexes() {
        let (schema, mut db) = sample();
        let student = schema.class_id("STUDENT").unwrap();
        let major = schema.attr_id("Major").unwrap();
        let fe = schema.attr_id("FirstEnroll").unwrap();
        db.add_classes(
            Oid(2),
            schema.up_closure_of(student),
            [(major, Value::str("CS")), (fe, Value::int(1990))],
        );
        db.delete_object(Oid(1)); // next stays ahead of the live range
        let mut bytes = Vec::new();
        db.encode_snapshot(&mut bytes);
        let loaded =
            Instance::decode_snapshot(&mut crate::codec::Reader::new(&bytes)).expect("decodes");
        assert_eq!(loaded, db, "heap triple round-trips");
        // Regression: both secondary indexes must be rebuilt on load, not
        // left empty — point selects and class scans answer from them.
        loaded.check_invariants(&schema).expect("indexes rebuilt consistently");
        assert_eq!(loaded.objects_in(student).collect::<Vec<_>>(), vec![Oid(2)]);
        assert_eq!(loaded.num_objects_with(major, &Value::str("CS")), 1);
        let ssn = schema.attr_id("SSN").unwrap();
        assert_eq!(
            loaded.sat(student, &Condition::from_atoms([Atom::eq_const(ssn, "2345")])),
            vec![Oid(2)]
        );
        // Canonical: re-encoding the decoded instance is byte-identical.
        let mut again = Vec::new();
        loaded.encode_snapshot(&mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn snapshot_decode_rejects_corruption() {
        let (_, db) = sample();
        let mut bytes = Vec::new();
        db.encode_snapshot(&mut bytes);
        // Every strict prefix is truncated input: error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                Instance::decode_snapshot(&mut crate::codec::Reader::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // An object at/above the next counter is structurally corrupt.
        let mut bad = Vec::new();
        crate::codec::encode_u64(&mut bad, 1); // next = 1
        crate::codec::encode_u64(&mut bad, 1); // one object
        crate::codec::encode_u64(&mut bad, 5); // oid 5 ≥ next
        crate::codec::encode_idset(&mut bad, ClassSet::singleton(ClassId::from_index(0)));
        crate::codec::encode_tuple(&mut bad, &Tuple::new());
        assert!(Instance::decode_snapshot(&mut crate::codec::Reader::new(&bad)).is_err());
    }

    #[test]
    fn instances_compare_including_counter() {
        let (_, db) = sample();
        let mut db2 = db.clone();
        assert_eq!(db, db2);
        db2.set_next(17);
        assert_ne!(db, db2);
    }
}

//! Database instances (Definition 2.2 of the paper).
//!
//! An instance of a schema `D` is a triple `d = (o, a, oᵢ)`:
//!
//! * `o` maps each class to a finite set of abstract objects, such that
//!   `o(P) ⊆ o(Q)` whenever `P isa Q` (membership is up-closed) and
//!   `o(P) ∩ o(Q) = ∅` for non-weakly-connected `P, Q` (an object lives in
//!   a single component);
//! * `a` assigns a constant to every `(object, attribute)` pair with the
//!   attribute defined on a class the object belongs to;
//! * `oᵢ` is the *next* abstract object — strictly larger than every
//!   object occurring in `d`, used when new objects are created. Because
//!   objects are only ever minted from this counter, each abstract object
//!   is created into the database **at most once**, as the model requires.
//!
//! The representation stores, per object, its class set (which is its role
//! set `Rs(o, d)`) and its attribute tuple; `o(P)` is derived. `BTreeMap`s
//! give deterministic iteration, which the canonical-database machinery of
//! Theorem 3.2 relies on.

use crate::bitset::ClassSet;
use crate::condition::Condition;
use crate::error::ModelError;
use crate::ids::{AttrId, ClassId, Oid};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;

/// A database instance `d = (o, a, oᵢ)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Instance {
    /// Class membership per occurring object — always a non-empty set.
    membership: BTreeMap<Oid, ClassSet>,
    /// Attribute values per occurring object.
    attrs: BTreeMap<Oid, Tuple>,
    /// Numeric part of the next abstract object `oᵢ`.
    next: u64,
}

impl Default for Instance {
    fn default() -> Self {
        Self::empty()
    }
}

impl Instance {
    /// The empty database `d₀ = (∅, ∅, o₁)` — the starting point of every
    /// migration pattern (Section 3).
    #[must_use]
    pub fn empty() -> Self {
        Instance { membership: BTreeMap::new(), attrs: BTreeMap::new(), next: 1 }
    }

    /// The next abstract object `oᵢ`.
    #[must_use]
    pub fn next_oid(&self) -> Oid {
        Oid(self.next)
    }

    /// Whether object `o` occurs in the database (belongs to some class).
    #[must_use]
    pub fn occurs(&self, o: Oid) -> bool {
        self.membership.contains_key(&o)
    }

    /// Number of occurring objects.
    #[must_use]
    pub fn num_objects(&self) -> usize {
        self.membership.len()
    }

    /// Whether no object occurs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }

    /// `Rs(o, d)` — the role set of `o` as a raw class set (∅ if `o` does
    /// not occur).
    #[must_use]
    pub fn role_set(&self, o: Oid) -> ClassSet {
        self.membership.get(&o).copied().unwrap_or_default()
    }

    /// The attribute tuple `ō` yielded by `o` (empty if absent).
    #[must_use]
    pub fn tuple_of(&self, o: Oid) -> Tuple {
        self.attrs.get(&o).cloned().unwrap_or_default()
    }

    /// Borrow the attribute tuple of `o`, if it occurs.
    #[must_use]
    pub fn tuple_ref(&self, o: Oid) -> Option<&Tuple> {
        self.attrs.get(&o)
    }

    /// The value `a(o, A)`.
    #[must_use]
    pub fn value(&self, o: Oid, a: AttrId) -> Option<&Value> {
        self.attrs.get(&o).and_then(|t| t.get(a))
    }

    /// Iterate all occurring objects in `<ₒ` order.
    pub fn objects(&self) -> impl Iterator<Item = Oid> + '_ {
        self.membership.keys().copied()
    }

    /// Iterate objects of class `P` (the set `o(P)`) in `<ₒ` order.
    pub fn objects_in(&self, p: ClassId) -> impl Iterator<Item = Oid> + '_ {
        self.membership.iter().filter(move |(_, cs)| cs.contains(p)).map(|(o, _)| *o)
    }

    /// `Sat(Γ, d, P)` — the objects of `o(P)` whose tuples satisfy the
    /// **ground** condition `Γ` (Section 2).
    #[must_use]
    pub fn sat(&self, p: ClassId, gamma: &Condition) -> Vec<Oid> {
        self.membership
            .iter()
            .filter(|(o, cs)| {
                cs.contains(p) && gamma.satisfied_by(self.attrs.get(o).unwrap_or(&Tuple::default()))
            })
            .map(|(o, _)| *o)
            .collect()
    }

    /// All constants currently stored in the database.
    #[must_use]
    pub fn active_domain(&self) -> std::collections::BTreeSet<Value> {
        self.attrs.values().flat_map(|t| t.iter().map(|(_, v)| v.clone())).collect()
    }

    // ------------------------------------------------------------------
    // Mutation primitives. These are the *mechanical* operations the
    // language layer's operational semantics (Definition 2.5) is built
    // from; they do not themselves validate conditions.
    // ------------------------------------------------------------------

    /// Create a new object with the given class memberships and attribute
    /// values, consuming the next abstract object. Returns its identifier.
    pub fn create(&mut self, classes: ClassSet, values: BTreeMap<AttrId, Value>) -> Oid {
        debug_assert!(!classes.is_empty(), "created objects must belong to a class");
        let oid = Oid(self.next);
        self.next += 1;
        self.membership.insert(oid, classes);
        self.attrs.insert(oid, Tuple::from_pairs(values));
        oid
    }

    /// Remove an object entirely (class memberships and attribute values).
    pub fn delete_object(&mut self, o: Oid) {
        self.membership.remove(&o);
        self.attrs.remove(&o);
    }

    /// Remove the classes of `remove` from `o`'s membership and clear the
    /// attribute values of `clear_attrs`. If the membership becomes empty
    /// the object is removed entirely (cannot happen through `generalize`,
    /// which never removes root classes, but kept total for safety).
    pub fn remove_classes(
        &mut self,
        o: Oid,
        remove: ClassSet,
        clear_attrs: impl IntoIterator<Item = AttrId>,
    ) {
        if let Some(cs) = self.membership.get_mut(&o) {
            *cs = cs.difference(remove);
            let emptied = cs.is_empty();
            if let Some(t) = self.attrs.get_mut(&o) {
                for a in clear_attrs {
                    t.unset(a);
                }
            }
            if emptied {
                self.delete_object(o);
            }
        }
    }

    /// Add the classes of `add` to `o`'s membership and set the given
    /// attribute values.
    pub fn add_classes(
        &mut self,
        o: Oid,
        add: ClassSet,
        values: impl IntoIterator<Item = (AttrId, Value)>,
    ) {
        if let Some(cs) = self.membership.get_mut(&o) {
            *cs = cs.union(add);
            let t = self.attrs.entry(o).or_default();
            for (a, v) in values {
                t.set(a, v);
            }
        }
    }

    /// Overwrite attribute values of `o`.
    pub fn set_values(&mut self, o: Oid, values: impl IntoIterator<Item = (AttrId, Value)>) {
        if self.membership.contains_key(&o) {
            let t = self.attrs.entry(o).or_default();
            for (a, v) in values {
                t.set(a, v);
            }
        }
    }

    /// Restore an object's raw state — membership and attribute tuple —
    /// exactly as previously captured (the rollback primitive behind
    /// `migratory_lang`'s transaction deltas). Does not validate against a
    /// schema; callers restore states that were valid when captured.
    pub fn put_object(&mut self, o: Oid, classes: ClassSet, tuple: Tuple) {
        debug_assert!(!classes.is_empty(), "restored objects must belong to a class");
        self.membership.insert(o, classes);
        self.attrs.insert(o, tuple);
    }

    /// The restriction `d|_I` of the database onto a set of objects
    /// (Section 3, before Lemma 3.5): keep only the membership and values
    /// of objects in `I`; the `next` counter is preserved.
    #[must_use]
    pub fn restrict(&self, objects: &[Oid]) -> Instance {
        Instance {
            membership: self
                .membership
                .iter()
                .filter(|(o, _)| objects.contains(o))
                .map(|(o, cs)| (*o, *cs))
                .collect(),
            attrs: self
                .attrs
                .iter()
                .filter(|(o, _)| objects.contains(o))
                .map(|(o, t)| (*o, t.clone()))
                .collect(),
            next: self.next,
        }
    }

    /// Construct an instance directly (used by canonical-database builders
    /// in the analyzer). `next` is set just above the largest object.
    #[must_use]
    pub fn from_objects(objects: impl IntoIterator<Item = (Oid, ClassSet, Tuple)>) -> Instance {
        let mut membership = BTreeMap::new();
        let mut attrs = BTreeMap::new();
        let mut max = 0u64;
        for (o, cs, t) in objects {
            max = max.max(o.0);
            membership.insert(o, cs);
            attrs.insert(o, t);
        }
        Instance { membership, attrs, next: max + 1 }
    }

    /// Force the next-object counter (canonical databases only).
    pub fn set_next(&mut self, next: u64) {
        debug_assert!(self.membership.keys().all(|o| o.0 < next));
        self.next = next;
    }

    /// Check the well-formedness invariants of Definition 2.2 against a
    /// schema:
    ///
    /// 1. membership up-closed under isa (`o(P) ⊆ o(Q)` for `P isa Q`);
    /// 2. each object inside a single weakly-connected component;
    /// 3. `a` total: each object has a value for exactly the attributes of
    ///    the classes it belongs to;
    /// 4. every occurring object `<ₒ`-smaller than `next`.
    pub fn check_invariants(&self, schema: &Schema) -> Result<(), ModelError> {
        for (&o, &cs) in &self.membership {
            if cs.is_empty() {
                return Err(ModelError::InvariantViolated(format!(
                    "object {o} occurs with empty class set"
                )));
            }
            if !schema.is_up_closed(cs) {
                return Err(ModelError::InvariantViolated(format!(
                    "membership of {o} is not isa-closed"
                )));
            }
            let comp = schema.component_of(cs.first().expect("non-empty"));
            if cs.iter().any(|c| schema.component_of(c) != comp) {
                return Err(ModelError::InvariantViolated(format!(
                    "object {o} belongs to non-weakly-connected classes"
                )));
            }
            let expected = schema.attrs_of_class_set(cs);
            let t = self.attrs.get(&o).cloned().unwrap_or_default();
            for a in expected.iter() {
                if t.get(a).is_none() {
                    return Err(ModelError::MissingValue { oid: o.0, attr: a });
                }
            }
            if t.domain() != expected {
                return Err(ModelError::InvariantViolated(format!(
                    "object {o} stores values outside its defined attributes"
                )));
            }
            if o.0 >= self.next {
                return Err(ModelError::InvariantViolated(format!(
                    "object {o} is not smaller than next object o{}",
                    self.next
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Atom;
    use crate::schema::university_schema;

    fn sample() -> (Schema, Instance) {
        let schema = university_schema();
        let mut db = Instance::empty();
        let person = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let name = schema.attr_id("Name").unwrap();
        for (s, n) in [("1234", "John"), ("2345", "Jim")] {
            db.create(
                ClassSet::singleton(person),
                BTreeMap::from([(ssn, Value::str(s)), (name, Value::str(n))]),
            );
        }
        (schema, db)
    }

    #[test]
    fn empty_database_is_d0() {
        let d = Instance::empty();
        assert!(d.is_empty());
        assert_eq!(d.next_oid(), Oid(1));
        assert_eq!(d.role_set(Oid(1)), ClassSet::empty());
    }

    #[test]
    fn create_bumps_next_and_occurs() {
        let (schema, db) = sample();
        assert_eq!(db.num_objects(), 2);
        assert_eq!(db.next_oid(), Oid(3));
        assert!(db.occurs(Oid(1)) && db.occurs(Oid(2)) && !db.occurs(Oid(3)));
        db.check_invariants(&schema).unwrap();
    }

    #[test]
    fn sat_selects_by_condition() {
        let (schema, db) = sample();
        let person = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let g = Condition::from_atoms([Atom::eq_const(ssn, "1234")]);
        assert_eq!(db.sat(person, &g), vec![Oid(1)]);
        let g2 = Condition::from_atoms([Atom::ne_const(ssn, "1234")]);
        assert_eq!(db.sat(person, &g2), vec![Oid(2)]);
        assert_eq!(db.sat(person, &Condition::empty()).len(), 2);
        // No students yet.
        let student = schema.class_id("STUDENT").unwrap();
        assert!(db.sat(student, &Condition::empty()).is_empty());
    }

    #[test]
    fn add_remove_classes() {
        let (schema, mut db) = sample();
        let student = schema.class_id("STUDENT").unwrap();
        let major = schema.attr_id("Major").unwrap();
        let fe = schema.attr_id("FirstEnroll").unwrap();
        db.add_classes(
            Oid(1),
            schema.up_closure_of(student),
            [(major, Value::str("CS")), (fe, Value::int(1990))],
        );
        db.check_invariants(&schema).unwrap();
        assert!(db.role_set(Oid(1)).contains(student));
        // Removing STUDENT (and its attrs) restores a plain person.
        db.remove_classes(Oid(1), schema.down_closure_of(student), [major, fe]);
        db.check_invariants(&schema).unwrap();
        assert!(!db.role_set(Oid(1)).contains(student));
        assert!(db.value(Oid(1), major).is_none());
    }

    #[test]
    fn delete_object_is_total() {
        let (schema, mut db) = sample();
        db.delete_object(Oid(1));
        assert!(!db.occurs(Oid(1)));
        assert_eq!(db.num_objects(), 1);
        // next is NOT reused — abstract objects are created at most once.
        assert_eq!(db.next_oid(), Oid(3));
        db.check_invariants(&schema).unwrap();
    }

    #[test]
    fn restriction_keeps_counter() {
        let (_, db) = sample();
        let r = db.restrict(&[Oid(2)]);
        assert_eq!(r.num_objects(), 1);
        assert!(r.occurs(Oid(2)) && !r.occurs(Oid(1)));
        assert_eq!(r.next_oid(), db.next_oid());
    }

    #[test]
    fn invariant_violations_detected() {
        let (schema, mut db) = sample();
        let ga = schema.class_id("GRAD_ASSIST").unwrap();
        // Not up-closed: GRAD_ASSIST without its ancestors.
        db.membership.insert(Oid(9), ClassSet::singleton(ga));
        db.attrs.insert(Oid(9), Tuple::new());
        db.next = 10;
        assert!(db.check_invariants(&schema).is_err());
    }

    #[test]
    fn missing_attribute_detected() {
        let (schema, mut db) = sample();
        let ssn = schema.attr_id("SSN").unwrap();
        db.attrs.get_mut(&Oid(1)).unwrap().unset(ssn);
        assert_eq!(
            db.check_invariants(&schema),
            Err(ModelError::MissingValue { oid: 1, attr: ssn })
        );
    }

    #[test]
    fn extra_attribute_detected() {
        let (schema, mut db) = sample();
        let salary = schema.attr_id("Salary").unwrap();
        db.attrs.get_mut(&Oid(1)).unwrap().set(salary, Value::int(1));
        assert!(db.check_invariants(&schema).is_err());
    }

    #[test]
    fn instances_compare_including_counter() {
        let (_, db) = sample();
        let mut db2 = db.clone();
        assert_eq!(db, db2);
        db2.set_next(17);
        assert_ne!(db, db2);
    }
}

//! Role sets (Definitions 3.1 and 4.5 of the paper).
//!
//! A *role set* over a schema is a set ω of classes closed under taking
//! ancestors (`P ∈ ω` implies every `Q` with `P isa* Q` is in ω) whose
//! members are pairwise weakly connected — i.e. ω lives inside one
//! maximal weakly-connected component of the specialization graph. The
//! set of all role sets over `D` is Ω (Ω₊ excluding ∅). The role set of an
//! object `o` in a database `d`, `Rs(o, d)`, is the set of classes `o`
//! currently belongs to.

use crate::bitset::ClassSet;
use crate::error::ModelError;
use crate::ids::ClassId;
use crate::schema::Schema;

/// A validated role set: an isa*-up-closed, single-component set of
/// classes. The empty role set ∅ is allowed (an object not in the
/// database).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RoleSet(ClassSet);

impl RoleSet {
    /// The empty role set ∅.
    #[must_use]
    pub fn empty() -> Self {
        RoleSet(ClassSet::empty())
    }

    /// Validate a class set as a role set over `schema`.
    pub fn new(schema: &Schema, classes: ClassSet) -> Result<Self, ModelError> {
        // Up-closure check.
        for c in classes.iter() {
            if !schema.up_closure_of(c).is_subset(classes) {
                return Err(ModelError::NotUpClosed { class: c });
            }
        }
        // Single-component check.
        let mut comp: Option<(u32, ClassId)> = None;
        for c in classes.iter() {
            let cc = schema.component_of(c);
            match comp {
                None => comp = Some((cc, c)),
                Some((prev, pc)) if prev != cc => {
                    return Err(ModelError::CrossComponent { classes: (pc, c) });
                }
                _ => {}
            }
        }
        Ok(RoleSet(classes))
    }

    /// The smallest role set containing all the given classes — their
    /// isa* up-closure. The paper writes `[G]` for the closure of
    /// `{GRAD_ASSIST}`, `[SE]` for the closure of `{STUDENT, EMPLOYEE}`,
    /// etc. (Example 3.1).
    pub fn closure_of(
        schema: &Schema,
        classes: impl IntoIterator<Item = ClassId>,
    ) -> Result<Self, ModelError> {
        let set: ClassSet = classes.into_iter().collect();
        Self::new(schema, schema.up_closure(set))
    }

    /// Closure constructor by class names.
    pub fn closure_of_named(schema: &Schema, names: &[&str]) -> Result<Self, ModelError> {
        let ids = names.iter().map(|n| schema.require_class(n)).collect::<Result<Vec<_>, _>>()?;
        Self::closure_of(schema, ids)
    }

    /// The underlying class set.
    #[must_use]
    pub fn classes(self) -> ClassSet {
        self.0
    }

    /// Whether the role set is ∅.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0.is_empty()
    }

    /// Number of classes.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.len()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(self, c: ClassId) -> bool {
        self.0.contains(c)
    }

    /// The weakly-connected component this (non-empty) role set lives in.
    #[must_use]
    pub fn component(self, schema: &Schema) -> Option<u32> {
        self.0.first().map(|c| schema.component_of(c))
    }

    /// The *minimal* (most specific) classes of the role set: members none
    /// of whose proper subclasses is also a member. A role set is the
    /// up-closure of its minimal elements; they determine it.
    #[must_use]
    pub fn minimal_elements(self, schema: &Schema) -> Vec<ClassId> {
        self.0
            .iter()
            .filter(|&c| schema.children(c).iter().all(|&ch| !self.0.contains(ch)))
            .collect()
    }

    /// Human-readable form `[G]`, `[S,E]`, `∅` using minimal-element class
    /// names (the paper's bracket notation).
    #[must_use]
    pub fn display(self, schema: &Schema) -> String {
        if self.is_empty() {
            return "∅".to_owned();
        }
        let names: Vec<&str> =
            self.minimal_elements(schema).iter().map(|&c| schema.class_name(c)).collect();
        format!("[{}]", names.join(","))
    }
}

/// Enumerate **all** role sets over one weakly-connected component of the
/// schema, the empty role set included, in a deterministic order
/// (lexicographic in the component's topological order). This is the
/// alphabet Ω of migration patterns.
///
/// Role sets are exactly the up-closed subsets of the component; they are
/// produced by choosing, in topological order (ancestors first), whether
/// to include each class, a class being includable only when all of its
/// parents are already included.
#[must_use]
pub fn all_role_sets(schema: &Schema, component: u32) -> Vec<RoleSet> {
    let members: Vec<ClassId> = schema
        .topo_order()
        .iter()
        .copied()
        .filter(|&c| schema.component_of(c) == component)
        .collect();
    let mut out = Vec::new();
    let mut current = ClassSet::empty();
    enumerate(schema, &members, 0, &mut current, &mut out);
    out.sort();
    out
}

/// Enumerate all *non-empty* role sets over a component (Ω₊).
#[must_use]
pub fn all_nonempty_role_sets(schema: &Schema, component: u32) -> Vec<RoleSet> {
    all_role_sets(schema, component).into_iter().filter(|r| !r.is_empty()).collect()
}

fn enumerate(
    schema: &Schema,
    members: &[ClassId],
    i: usize,
    current: &mut ClassSet,
    out: &mut Vec<RoleSet>,
) {
    if i == members.len() {
        out.push(RoleSet(*current));
        return;
    }
    let c = members[i];
    // Exclude c.
    enumerate(schema, members, i + 1, current, out);
    // Include c if all parents are in.
    if schema.parents(c).iter().all(|&p| current.contains(p)) {
        current.insert(c);
        enumerate(schema, members, i + 1, current, out);
        current.remove(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{university_schema, SchemaBuilder};

    #[test]
    fn example_3_1_role_sets() {
        // Paper, Example 3.1: possible role sets are ∅, [G], [S], [E], [SE], [P].
        let s = university_schema();
        let all = all_role_sets(&s, 0);
        assert_eq!(all.len(), 6);
        let nonempty = all_nonempty_role_sets(&s, 0);
        assert_eq!(nonempty.len(), 5);
        let names: Vec<String> = nonempty.iter().map(|r| r.display(&s)).collect();
        for expected in ["[GRAD_ASSIST]", "[STUDENT]", "[EMPLOYEE]", "[PERSON]"] {
            assert!(names.iter().any(|n| n == expected), "{expected} missing in {names:?}");
        }
        assert!(
            names.iter().any(|n| n == "[EMPLOYEE,STUDENT]" || n == "[STUDENT,EMPLOYEE]"),
            "[SE] missing in {names:?}"
        );
    }

    #[test]
    fn closure_constructor() {
        let s = university_schema();
        let g = s.class_id("GRAD_ASSIST").unwrap();
        let rs = RoleSet::closure_of(&s, [g]).unwrap();
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.minimal_elements(&s), vec![g]);
        assert_eq!(rs.display(&s), "[GRAD_ASSIST]");
    }

    #[test]
    fn invalid_role_sets_rejected() {
        let s = university_schema();
        let g = s.class_id("GRAD_ASSIST").unwrap();
        assert!(matches!(
            RoleSet::new(&s, ClassSet::singleton(g)),
            Err(ModelError::NotUpClosed { .. })
        ));
    }

    #[test]
    fn cross_component_rejected() {
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &[]).unwrap();
        let q = b.class("Q", &[]).unwrap();
        let s = b.build().unwrap();
        let mut set = ClassSet::singleton(p);
        set.insert(q);
        assert!(matches!(RoleSet::new(&s, set), Err(ModelError::CrossComponent { .. })));
    }

    #[test]
    fn nonempty_role_sets_contain_component_root() {
        let s = university_schema();
        let root = s.component_root(0);
        for rs in all_nonempty_role_sets(&s, 0) {
            assert!(rs.contains(root), "every non-empty role set contains the isa-root");
        }
    }

    #[test]
    fn empty_displays_as_symbol() {
        let s = university_schema();
        assert_eq!(RoleSet::empty().display(&s), "∅");
        assert_eq!(RoleSet::empty().component(&s), None);
    }

    #[test]
    fn role_set_count_on_chain() {
        // Chain P ← Q ← R: up-closed sets are ∅, {P}, {P,Q}, {P,Q,R}.
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &[]).unwrap();
        let q = b.subclass("Q", &[p], &[]).unwrap();
        b.subclass("R", &[q], &[]).unwrap();
        let s = b.build().unwrap();
        assert_eq!(all_role_sets(&s, 0).len(), 4);
    }

    #[test]
    fn role_set_count_on_diamond() {
        // Diamond: root P, children Q,R, bottom S below both.
        // Up-closed: ∅, P, PQ, PR, PQR, PQRS → 6.
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &[]).unwrap();
        let q = b.subclass("Q", &[p], &[]).unwrap();
        let r = b.subclass("R", &[p], &[]).unwrap();
        b.subclass("S", &[q, r], &[]).unwrap();
        let s = b.build().unwrap();
        assert_eq!(all_role_sets(&s, 0).len(), 6);
    }
}

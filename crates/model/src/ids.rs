//! Strongly-typed identifiers for classes, attributes, objects and
//! transaction variables.
//!
//! The paper assumes pairwise-disjoint countably infinite sets 𝒞 of class
//! names, 𝒜 of attribute names, 𝒪 of abstract objects (totally ordered by
//! `<ₒ`), and 𝒱 of variables. We intern names in a [`crate::Schema`] and
//! refer to them by dense `u32` indices; abstract objects are `u64`s whose
//! numeric order *is* the paper's `<ₒ`.

/// Trait for dense `u32`-indexed identifiers, used by [`crate::IdSet`].
pub trait DenseId: Copy + Eq + Ord + std::hash::Hash + std::fmt::Debug {
    /// Construct from a dense index.
    fn from_index(i: usize) -> Self;
    /// The dense index.
    fn index(self) -> usize;
}

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u32);

        impl DenseId for $name {
            #[inline]
            fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                $name(i as u32)
            }
            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

dense_id! {
    /// A class name interned in a [`crate::Schema`] (an element of 𝒞).
    ClassId
}
dense_id! {
    /// An attribute name interned in a [`crate::Schema`] (an element of 𝒜).
    AttrId
}
dense_id! {
    /// A transaction variable (an element of 𝒱), interned per transaction
    /// schema by the language layer.
    VarId
}

/// An abstract object identifier — an element of the totally ordered set
/// 𝒪 = {o₁, o₂, …}. `Oid(i)` is the paper's `oᵢ`; the derived `Ord` is the
/// paper's `<ₒ`. Each abstract object can be created into a database **at
/// most once** (Section 2), which [`crate::Instance`] enforces by only ever
/// minting fresh identifiers from its `next` counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Oid(pub u64);

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_id_roundtrip() {
        for i in [0usize, 1, 7, 4096] {
            assert_eq!(ClassId::from_index(i).index(), i);
            assert_eq!(AttrId::from_index(i).index(), i);
            assert_eq!(VarId::from_index(i).index(), i);
        }
    }

    #[test]
    fn oid_order_is_creation_order() {
        assert!(Oid(1) < Oid(2));
        assert!(Oid(41) < Oid(42));
        assert_eq!(Oid(3).to_string(), "o3");
    }

    #[test]
    fn display_forms() {
        assert_eq!(ClassId(2).to_string(), "ClassId(2)");
        assert_eq!(AttrId(0).to_string(), "AttrId(0)");
        assert_eq!(VarId(9).to_string(), "VarId(9)");
    }
}

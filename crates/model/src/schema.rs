//! Database schemas: classes, specialization graphs and attributes
//! (Definition 2.1 of the paper).
//!
//! A schema is a triple `D = (C, isa, A)` where `(C, isa)` is a
//! *specialization graph* — an acyclic directed graph each of whose
//! weakly-connected components is rooted (has a unique *isa-root* that
//! every member reaches via directed isa paths) — and `A` assigns each
//! class a set of attributes, pairwise disjoint across classes. The set of
//! attributes *defined on* `P` is `A*(P) = ⋃_{P isa* Q} A(Q)` (inherited
//! attributes included); disjointness rules out inheritance conflicts.

use crate::bitset::{AttrSet, ClassSet, MAX_DENSE};
use crate::error::ModelError;
use crate::ids::{AttrId, ClassId, DenseId};
use std::collections::HashMap;

#[derive(Clone, Debug)]
struct ClassDecl {
    name: String,
    parents: Vec<ClassId>,
    children: Vec<ClassId>,
    attrs: Vec<AttrId>,
}

#[derive(Clone, Debug)]
struct AttrDecl {
    name: String,
    owner: ClassId,
}

/// An immutable, validated database schema (Definition 2.1).
///
/// Built through [`SchemaBuilder`]; all derived structure (isa closures,
/// inherited attribute sets, weakly-connected components, topological
/// order) is precomputed.
#[derive(Clone, Debug)]
pub struct Schema {
    classes: Vec<ClassDecl>,
    attrs: Vec<AttrDecl>,
    class_by_name: HashMap<String, ClassId>,
    attr_by_name: HashMap<String, AttrId>,
    /// `up[c]` = ancestors of `c` including `c` (the isa* up-closure).
    up: Vec<ClassSet>,
    /// `down[c]` = descendants of `c` including `c`.
    down: Vec<ClassSet>,
    /// `attr_star[c]` = `A*(c)`, all attributes defined on `c`.
    attr_star: Vec<AttrSet>,
    /// Weakly-connected component index per class.
    component: Vec<u32>,
    /// The unique isa-root of each component.
    comp_root: Vec<ClassId>,
    /// Classes of each component.
    comp_classes: Vec<ClassSet>,
    /// Topological order: ancestors before descendants.
    topo: Vec<ClassId>,
}

impl Schema {
    /// Number of classes in `C`.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of attributes across all classes.
    #[must_use]
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Iterate all class identifiers.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len()).map(ClassId::from_index)
    }

    /// Iterate all attribute identifiers.
    pub fn all_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attrs.len()).map(AttrId::from_index)
    }

    /// Look up a class by name.
    #[must_use]
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Look up a class by name, erroring if absent.
    pub fn require_class(&self, name: &str) -> Result<ClassId, ModelError> {
        self.class_id(name).ok_or_else(|| ModelError::UnknownClass(name.to_owned()))
    }

    /// Look up an attribute by name.
    #[must_use]
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// Look up an attribute by name, erroring if absent.
    pub fn require_attr(&self, name: &str) -> Result<AttrId, ModelError> {
        self.attr_id(name).ok_or_else(|| ModelError::UnknownAttr(name.to_owned()))
    }

    /// The name of a class.
    #[must_use]
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.classes[c.index()].name
    }

    /// The name of an attribute.
    #[must_use]
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attrs[a.index()].name
    }

    /// The class that declares attribute `a` (i.e. `a ∈ A(owner)`).
    #[must_use]
    pub fn attr_owner(&self, a: AttrId) -> ClassId {
        self.attrs[a.index()].owner
    }

    /// `A(c)` — the attributes declared directly on `c`.
    #[must_use]
    pub fn attrs_of(&self, c: ClassId) -> &[AttrId] {
        &self.classes[c.index()].attrs
    }

    /// `A*(c)` — all attributes defined on `c`, inherited ones included.
    #[must_use]
    pub fn attr_star(&self, c: ClassId) -> AttrSet {
        self.attr_star[c.index()]
    }

    /// The direct superclasses of `c` (targets of isa edges from `c`).
    #[must_use]
    pub fn parents(&self, c: ClassId) -> &[ClassId] {
        &self.classes[c.index()].parents
    }

    /// The direct subclasses of `c`.
    #[must_use]
    pub fn children(&self, c: ClassId) -> &[ClassId] {
        &self.classes[c.index()].children
    }

    /// Whether `c` is an isa-root (no superclass).
    #[must_use]
    pub fn is_isa_root(&self, c: ClassId) -> bool {
        self.classes[c.index()].parents.is_empty()
    }

    /// Whether `sub isa sup` is a direct edge of the specialization graph.
    #[must_use]
    pub fn isa_direct(&self, sub: ClassId, sup: ClassId) -> bool {
        self.classes[sub.index()].parents.contains(&sup)
    }

    /// Whether `sub isa* sup` (reflexive–transitive closure).
    #[must_use]
    pub fn isa_star(&self, sub: ClassId, sup: ClassId) -> bool {
        self.up[sub.index()].contains(sup)
    }

    /// The isa* up-closure of a single class: `{Q | c isa* Q}`.
    #[must_use]
    pub fn up_closure_of(&self, c: ClassId) -> ClassSet {
        self.up[c.index()]
    }

    /// The isa* down-closure of a single class: `{Q | Q isa* c}`.
    #[must_use]
    pub fn down_closure_of(&self, c: ClassId) -> ClassSet {
        self.down[c.index()]
    }

    /// The up-closure of a set of classes.
    #[must_use]
    pub fn up_closure(&self, set: ClassSet) -> ClassSet {
        set.iter().fold(ClassSet::empty(), |acc, c| acc.union(self.up[c.index()]))
    }

    /// Whether `set` is closed under taking ancestors (Definition 3.1's
    /// role-set condition).
    #[must_use]
    pub fn is_up_closed(&self, set: ClassSet) -> bool {
        self.up_closure(set) == set
    }

    /// The weakly-connected component index of a class.
    #[must_use]
    pub fn component_of(&self, c: ClassId) -> u32 {
        self.component[c.index()]
    }

    /// Number of weakly-connected components (maximal weakly-connected
    /// subgraphs).
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.comp_root.len()
    }

    /// The unique isa-root of a component.
    #[must_use]
    pub fn component_root(&self, comp: u32) -> ClassId {
        self.comp_root[comp as usize]
    }

    /// All classes of a component.
    #[must_use]
    pub fn component_classes(&self, comp: u32) -> ClassSet {
        self.comp_classes[comp as usize]
    }

    /// Whether two classes are weakly connected (share a component).
    #[must_use]
    pub fn weakly_connected(&self, a: ClassId, b: ClassId) -> bool {
        self.component[a.index()] == self.component[b.index()]
    }

    /// Classes in topological order — every class appears after all of its
    /// ancestors.
    #[must_use]
    pub fn topo_order(&self) -> &[ClassId] {
        &self.topo
    }

    /// `A_ω = ⋃_{Q ∈ ω} A(Q)` — the attributes of a set of classes. For an
    /// up-closed ω this equals `⋃_{Q ∈ ω} A*(Q)` (Definition 3.7's `A_ω`).
    #[must_use]
    pub fn attrs_of_class_set(&self, set: ClassSet) -> AttrSet {
        let mut s = AttrSet::empty();
        for c in set.iter() {
            for &a in self.attrs_of(c) {
                s.insert(a);
            }
        }
        s
    }
}

/// Incremental builder for [`Schema`].
///
/// Classes are declared with [`SchemaBuilder::class`] (isa-roots) or
/// [`SchemaBuilder::subclass`]; extra isa edges may be added with
/// [`SchemaBuilder::isa`]. [`SchemaBuilder::build`] validates Definition
/// 2.1 (acyclicity, unique root per weakly-connected component, disjoint
/// attribute sets) and precomputes derived structure.
#[derive(Clone, Debug, Default)]
pub struct SchemaBuilder {
    classes: Vec<ClassDecl>,
    attrs: Vec<AttrDecl>,
    class_by_name: HashMap<String, ClassId>,
    attr_by_name: HashMap<String, AttrId>,
}

impl SchemaBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a class with no superclasses and the given attribute names.
    pub fn class(&mut self, name: &str, attrs: &[&str]) -> Result<ClassId, ModelError> {
        self.subclass(name, &[], attrs)
    }

    /// Declare a class with the given direct superclasses and attributes.
    pub fn subclass(
        &mut self,
        name: &str,
        parents: &[ClassId],
        attrs: &[&str],
    ) -> Result<ClassId, ModelError> {
        if self.class_by_name.contains_key(name) {
            return Err(ModelError::DuplicateClass(name.to_owned()));
        }
        if self.classes.len() >= MAX_DENSE {
            return Err(ModelError::TooManyClasses(self.classes.len() + 1));
        }
        let id = ClassId::from_index(self.classes.len());
        let mut attr_ids = Vec::with_capacity(attrs.len());
        for &a in attrs {
            if self.attr_by_name.contains_key(a) {
                return Err(ModelError::DuplicateAttr(a.to_owned()));
            }
            if self.attrs.len() >= MAX_DENSE {
                return Err(ModelError::TooManyAttrs(self.attrs.len() + 1));
            }
            let aid = AttrId::from_index(self.attrs.len());
            self.attrs.push(AttrDecl { name: a.to_owned(), owner: id });
            self.attr_by_name.insert(a.to_owned(), aid);
            attr_ids.push(aid);
        }
        for &p in parents {
            self.classes[p.index()].children.push(id);
        }
        self.classes.push(ClassDecl {
            name: name.to_owned(),
            parents: parents.to_vec(),
            children: Vec::new(),
            attrs: attr_ids,
        });
        self.class_by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declare a subclass referring to parents by name.
    pub fn subclass_named(
        &mut self,
        name: &str,
        parents: &[&str],
        attrs: &[&str],
    ) -> Result<ClassId, ModelError> {
        let pids = parents
            .iter()
            .map(|p| {
                self.class_by_name
                    .get(*p)
                    .copied()
                    .ok_or_else(|| ModelError::UnknownClass((*p).to_owned()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.subclass(name, &pids, attrs)
    }

    /// Add an extra isa edge `sub isa sup` between already-declared classes.
    pub fn isa(&mut self, sub: ClassId, sup: ClassId) -> Result<(), ModelError> {
        if !self.classes[sub.index()].parents.contains(&sup) {
            self.classes[sub.index()].parents.push(sup);
            self.classes[sup.index()].children.push(sub);
        }
        Ok(())
    }

    /// Validate and freeze the schema.
    pub fn build(self) -> Result<Schema, ModelError> {
        let n = self.classes.len();
        if n > MAX_DENSE {
            return Err(ModelError::TooManyClasses(n));
        }
        if self.attrs.len() > MAX_DENSE {
            return Err(ModelError::TooManyAttrs(self.attrs.len()));
        }

        // Topological sort (Kahn) over isa edges (class → parents); detects
        // cycles. Order: ancestors first.
        let mut out_deg: Vec<usize> = self.classes.iter().map(|c| c.parents.len()).collect();
        let mut topo: Vec<ClassId> = Vec::with_capacity(n);
        let mut queue: Vec<ClassId> =
            (0..n).filter(|&i| out_deg[i] == 0).map(ClassId::from_index).collect();
        while let Some(c) = queue.pop() {
            topo.push(c);
            for &child in &self.classes[c.index()].children {
                out_deg[child.index()] -= 1;
                if out_deg[child.index()] == 0 {
                    queue.push(child);
                }
            }
        }
        if topo.len() != n {
            let cycle: Vec<ClassId> =
                (0..n).filter(|&i| out_deg[i] > 0).map(ClassId::from_index).collect();
            return Err(ModelError::IsaCycle(cycle));
        }

        // Up/down closures in topological order.
        let mut up = vec![ClassSet::empty(); n];
        for &c in &topo {
            let mut s = ClassSet::singleton(c);
            for &p in &self.classes[c.index()].parents {
                s = s.union(up[p.index()]);
            }
            up[c.index()] = s;
        }
        let mut down = vec![ClassSet::empty(); n];
        for &c in topo.iter().rev() {
            let mut s = ClassSet::singleton(c);
            for &ch in &self.classes[c.index()].children {
                s = s.union(down[ch.index()]);
            }
            down[c.index()] = s;
        }

        // A*(c).
        let mut attr_star = vec![AttrSet::empty(); n];
        for c in 0..n {
            let mut s = AttrSet::empty();
            for q in up[c].iter() {
                for &a in &self.classes[q.index()].attrs {
                    s.insert(a);
                }
            }
            attr_star[c] = s;
        }

        // Weakly-connected components via union-find over undirected edges.
        let mut uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut [usize], mut x: usize) -> usize {
            while uf[x] != x {
                uf[x] = uf[uf[x]];
                x = uf[x];
            }
            x
        }
        for c in 0..n {
            for p in self.classes[c].parents.clone() {
                let (a, b) = (find(&mut uf, c), find(&mut uf, p.index()));
                if a != b {
                    uf[a] = b;
                }
            }
        }
        let mut comp_of_rep: HashMap<usize, u32> = HashMap::new();
        let mut component = vec![0u32; n];
        let mut comp_classes: Vec<ClassSet> = Vec::new();
        for (c, slot) in component.iter_mut().enumerate() {
            let rep = find(&mut uf, c);
            let next = comp_of_rep.len() as u32;
            let comp = *comp_of_rep.entry(rep).or_insert(next);
            *slot = comp;
            if comp as usize == comp_classes.len() {
                comp_classes.push(ClassSet::empty());
            }
            comp_classes[comp as usize].insert(ClassId::from_index(c));
        }

        // Unique isa-root per component (Definition 2.1's condition 2).
        let mut comp_root: Vec<Option<ClassId>> = vec![None; comp_classes.len()];
        for (c, decl) in self.classes.iter().enumerate() {
            if decl.parents.is_empty() {
                let comp = component[c] as usize;
                let id = ClassId::from_index(c);
                match comp_root[comp] {
                    None => comp_root[comp] = Some(id),
                    Some(other) => {
                        return Err(ModelError::MultipleRoots { roots: (other, id) });
                    }
                }
            }
        }
        let comp_root: Vec<ClassId> = comp_root
            .into_iter()
            .map(|r| r.expect("acyclic non-empty component has at least one root"))
            .collect();

        Ok(Schema {
            classes: self.classes,
            attrs: self.attrs,
            class_by_name: self.class_by_name,
            attr_by_name: self.attr_by_name,
            up,
            down,
            attr_star,
            component,
            comp_root,
            comp_classes,
            topo,
        })
    }
}

/// Build the paper's running example — the university schema of Fig. 1
/// (classes PERSON, EMPLOYEE, STUDENT, GRAD_ASSIST) — used pervasively in
/// tests and examples.
pub fn university_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let person = b.class("PERSON", &["SSN", "Name"]).expect("fresh builder");
    let employee = b.subclass("EMPLOYEE", &[person], &["Salary", "WorksIn"]).expect("fresh name");
    let student = b.subclass("STUDENT", &[person], &["Major", "FirstEnroll"]).expect("fresh name");
    b.subclass("GRAD_ASSIST", &[employee, student], &["PcAppoint"]).expect("fresh name");
    b.build().expect("Fig. 1 schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn university_schema_shape() {
        let s = university_schema();
        assert_eq!(s.num_classes(), 4);
        assert_eq!(s.num_attrs(), 7);
        let p = s.class_id("PERSON").unwrap();
        let e = s.class_id("EMPLOYEE").unwrap();
        let st = s.class_id("STUDENT").unwrap();
        let g = s.class_id("GRAD_ASSIST").unwrap();
        assert!(s.is_isa_root(p));
        assert!(!s.is_isa_root(g));
        assert!(s.isa_direct(g, e) && s.isa_direct(g, st));
        assert!(!s.isa_direct(g, p));
        assert!(s.isa_star(g, p) && s.isa_star(e, p) && s.isa_star(p, p));
        assert!(!s.isa_star(p, g));
        assert_eq!(s.up_closure_of(g).len(), 4);
        assert_eq!(s.down_closure_of(p).len(), 4);
        assert_eq!(s.num_components(), 1);
        assert_eq!(s.component_root(0), p);
    }

    #[test]
    fn inherited_attributes() {
        let s = university_schema();
        let g = s.class_id("GRAD_ASSIST").unwrap();
        let star = s.attr_star(g);
        assert_eq!(star.len(), 7);
        for name in ["SSN", "Name", "Salary", "WorksIn", "Major", "FirstEnroll", "PcAppoint"] {
            assert!(star.contains(s.attr_id(name).unwrap()), "{name} missing from A*(G)");
        }
        let st = s.class_id("STUDENT").unwrap();
        assert_eq!(s.attr_star(st).len(), 4);
        assert_eq!(s.attr_owner(s.attr_id("Salary").unwrap()), s.class_id("EMPLOYEE").unwrap());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("P", &["A"]).unwrap();
        assert_eq!(b.class("P", &[]).unwrap_err(), ModelError::DuplicateClass("P".into()));
        assert_eq!(b.class("Q", &["A"]).unwrap_err(), ModelError::DuplicateAttr("A".into()));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &[]).unwrap();
        let q = b.subclass("Q", &[p], &[]).unwrap();
        b.isa(p, q).unwrap();
        assert!(matches!(b.build(), Err(ModelError::IsaCycle(_))));
    }

    #[test]
    fn multiple_roots_in_component_rejected() {
        // P and Q both roots, R below both → one component, two roots.
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &[]).unwrap();
        let q = b.class("Q", &[]).unwrap();
        b.subclass("R", &[p, q], &[]).unwrap();
        assert!(matches!(b.build(), Err(ModelError::MultipleRoots { .. })));
    }

    #[test]
    fn two_separate_components() {
        let mut b = SchemaBuilder::new();
        let p = b.class("P", &[]).unwrap();
        b.subclass("P1", &[p], &[]).unwrap();
        let s = b.class("S", &["A1", "A2"]).unwrap();
        let schema = b.build().unwrap();
        assert_eq!(schema.num_components(), 2);
        assert!(!schema.weakly_connected(p, s));
        assert_eq!(schema.component_root(schema.component_of(s)), s);
    }

    #[test]
    fn up_closed_checks() {
        let s = university_schema();
        let p = s.class_id("PERSON").unwrap();
        let g = s.class_id("GRAD_ASSIST").unwrap();
        assert!(s.is_up_closed(ClassSet::singleton(p)));
        assert!(!s.is_up_closed(ClassSet::singleton(g)));
        assert!(s.is_up_closed(s.up_closure_of(g)));
        assert!(s.is_up_closed(ClassSet::empty()));
    }

    #[test]
    fn topo_order_parents_first() {
        let s = university_schema();
        let order = s.topo_order();
        let pos = |c: ClassId| order.iter().position(|&x| x == c).unwrap();
        for c in s.classes() {
            for &p in s.parents(c) {
                assert!(pos(p) < pos(c), "parent must precede child");
            }
        }
    }

    #[test]
    fn attrs_of_class_set_is_union() {
        let s = university_schema();
        let g = s.class_id("GRAD_ASSIST").unwrap();
        let all = s.attrs_of_class_set(s.up_closure_of(g));
        assert_eq!(all.len(), 7);
        assert_eq!(all, s.attr_star(g));
    }
}

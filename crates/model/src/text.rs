//! Text format for schemas, plus the shared lexer used by the language
//! layer's transaction parser.
//!
//! The schema syntax mirrors Fig. 1 of the paper:
//!
//! ```text
//! schema University {
//!   class PERSON { SSN, Name }
//!   class EMPLOYEE isa PERSON { Salary, WorksIn }
//!   class STUDENT isa PERSON { Major, FirstEnroll }
//!   class GRAD_ASSIST isa EMPLOYEE, STUDENT { PcAppoint }
//! }
//! ```
//!
//! `// line comments` are allowed. Forward references between classes are
//! permitted (resolution happens after parsing).

use crate::error::ModelError;
use crate::schema::{Schema, SchemaBuilder};

/// A lexical token with source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Token payloads produced by [`lex`].
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Double-quoted string literal (escapes: `\"`, `\\`).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `->`
    Arrow,
    /// `!`
    Bang,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `?`
    Question,
    /// `|`
    Pipe,
    /// `.`
    Dot,
    /// End of input (always the final token).
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(i) => write!(f, "`{i}`"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Question => write!(f, "`?`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

fn err(line: u32, col: u32, msg: impl Into<String>) -> ModelError {
    ModelError::Parse { line, col, msg: msg.into() }
}

/// Tokenize source text. Identifiers may contain letters, digits, `_` and
/// `-` (the paper uses names like `GRAD-ASSIST`), starting with a letter
/// or `_`. Negative integer literals are written with a leading `-`.
pub fn lex(src: &str) -> Result<Vec<Token>, ModelError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while let Some(&c2) = chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        bump!();
                    }
                } else {
                    return Err(err(tline, tcol, "unexpected `/` (use `//` for comments)"));
                }
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ',' | ';' | ':' | '=' | '*' | '+' | '?' | '|'
            | '.' => {
                bump!();
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semi,
                    ':' => TokenKind::Colon,
                    '=' => TokenKind::Eq,
                    '*' => TokenKind::Star,
                    '+' => TokenKind::Plus,
                    '?' => TokenKind::Question,
                    '|' => TokenKind::Pipe,
                    '.' => TokenKind::Dot,
                    _ => unreachable!(),
                };
                out.push(Token { kind, line: tline, col: tcol });
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Token { kind: TokenKind::Ne, line: tline, col: tcol });
                } else {
                    out.push(Token { kind: TokenKind::Bang, line: tline, col: tcol });
                }
            }
            '-' => {
                bump!();
                match chars.peek() {
                    Some('>') => {
                        bump!();
                        out.push(Token { kind: TokenKind::Arrow, line: tline, col: tcol });
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let mut n = String::from("-");
                        while let Some(&d) = chars.peek() {
                            if d.is_ascii_digit() {
                                n.push(d);
                                bump!();
                            } else {
                                break;
                            }
                        }
                        let v = n
                            .parse::<i64>()
                            .map_err(|_| err(tline, tcol, "integer literal out of range"))?;
                        out.push(Token { kind: TokenKind::Int(v), line: tline, col: tcol });
                    }
                    _ => return Err(err(tline, tcol, "unexpected `-`")),
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(other) => {
                                return Err(err(line, col, format!("bad escape `\\{other}`")))
                            }
                            None => return Err(err(line, col, "unterminated string")),
                        },
                        Some(other) => s.push(other),
                        None => return Err(err(tline, tcol, "unterminated string")),
                    }
                }
                out.push(Token { kind: TokenKind::Str(s), line: tline, col: tcol });
            }
            d if d.is_ascii_digit() => {
                let mut n = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        n.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                let v = n
                    .parse::<i64>()
                    .map_err(|_| err(tline, tcol, "integer literal out of range"))?;
                out.push(Token { kind: TokenKind::Int(v), line: tline, col: tcol });
            }
            a if a.is_alphabetic() || a == '_' => {
                let mut s = String::new();
                while let Some(&a) = chars.peek() {
                    if a.is_alphanumeric() || a == '_' || a == '-' {
                        // `-` only continues an identifier when followed by
                        // an identifier character (so `A-B` lexes as one
                        // name but `A -> B` does not).
                        if a == '-' {
                            let mut look = chars.clone();
                            look.next();
                            match look.peek() {
                                Some(&n) if n.is_alphanumeric() || n == '_' => {}
                                _ => break,
                            }
                        }
                        s.push(a);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Token { kind: TokenKind::Ident(s), line: tline, col: tcol });
            }
            other => return Err(err(tline, tcol, format!("unexpected character `{other}`"))),
        }
    }
    out.push(Token { kind: TokenKind::Eof, line, col });
    Ok(out)
}

/// A cursor over a token stream with helpers shared by all parsers.
#[derive(Clone, Debug)]
pub struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    /// Start a cursor over lexed tokens.
    #[must_use]
    pub fn new(tokens: Vec<Token>) -> Self {
        Cursor { tokens, pos: 0 }
    }

    /// The current token.
    #[must_use]
    pub fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    /// Advance and return the current token.
    #[allow(clippy::should_implement_trait)] // a cursor, not an iterator
    pub fn next(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// Whether the current token matches, consuming it if so.
    pub fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.next();
            true
        } else {
            false
        }
    }

    /// Consume a specific token or fail.
    pub fn expect(&mut self, kind: &TokenKind) -> Result<(), ModelError> {
        let t = self.peek().clone();
        if &t.kind == kind {
            self.next();
            Ok(())
        } else {
            Err(err(t.line, t.col, format!("expected {kind}, found {}", t.kind)))
        }
    }

    /// Consume an identifier or fail.
    pub fn expect_ident(&mut self) -> Result<String, ModelError> {
        let t = self.peek().clone();
        if let TokenKind::Ident(s) = t.kind {
            self.next();
            Ok(s)
        } else {
            Err(err(t.line, t.col, format!("expected identifier, found {}", t.kind)))
        }
    }

    /// Whether the current token is the given keyword (an identifier with
    /// that exact spelling), consuming it if so.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s == kw {
                self.next();
                return true;
            }
        }
        false
    }

    /// Whether the cursor is at end of input.
    #[must_use]
    pub fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    /// Error at the current position.
    #[must_use]
    pub fn error_here(&self, msg: impl Into<String>) -> ModelError {
        let t = self.peek();
        err(t.line, t.col, msg)
    }
}

/// Parse a schema from text. Accepts either a `schema Name { … }` block or
/// a bare list of `class` declarations.
pub fn parse_schema(src: &str) -> Result<Schema, ModelError> {
    let mut cur = Cursor::new(lex(src)?);
    let braced = if cur.eat_kw("schema") {
        let _name = cur.expect_ident()?;
        cur.expect(&TokenKind::LBrace)?;
        true
    } else {
        false
    };

    struct Decl {
        name: String,
        parents: Vec<String>,
        attrs: Vec<String>,
    }
    let mut decls: Vec<Decl> = Vec::new();
    loop {
        if braced && cur.eat(&TokenKind::RBrace) {
            break;
        }
        if cur.at_eof() {
            if braced {
                return Err(cur.error_here("expected `}` to close schema"));
            }
            break;
        }
        if !cur.eat_kw("class") {
            return Err(cur.error_here("expected `class`"));
        }
        let name = cur.expect_ident()?;
        let mut parents = Vec::new();
        if cur.eat_kw("isa") {
            parents.push(cur.expect_ident()?);
            while cur.eat(&TokenKind::Comma) {
                parents.push(cur.expect_ident()?);
            }
        }
        let mut attrs = Vec::new();
        if cur.eat(&TokenKind::LBrace) && !cur.eat(&TokenKind::RBrace) {
            attrs.push(cur.expect_ident()?);
            while cur.eat(&TokenKind::Comma) {
                attrs.push(cur.expect_ident()?);
            }
            cur.expect(&TokenKind::RBrace)?;
        }
        cur.eat(&TokenKind::Semi);
        decls.push(Decl { name, parents, attrs });
    }

    // Two passes so forward isa references work.
    let mut b = SchemaBuilder::new();
    let mut ids = Vec::with_capacity(decls.len());
    for d in &decls {
        let attrs: Vec<&str> = d.attrs.iter().map(String::as_str).collect();
        ids.push(b.class(&d.name, &attrs)?);
    }
    for (i, d) in decls.iter().enumerate() {
        for p in &d.parents {
            let pid = decls
                .iter()
                .position(|e| &e.name == p)
                .ok_or_else(|| ModelError::UnknownClass(p.clone()))?;
            b.isa(ids[i], ids[pid])?;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIVERSITY: &str = r"
        schema University {
          // Fig. 1 of the paper
          class PERSON { SSN, Name }
          class EMPLOYEE isa PERSON { Salary, WorksIn }
          class STUDENT isa PERSON { Major, FirstEnroll }
          class GRAD-ASSIST isa EMPLOYEE, STUDENT { PcAppoint }
        }";

    #[test]
    fn lex_punctuation_and_literals() {
        let toks = lex(r#"a != b -> { -12 "s\"x" } ;"#).unwrap();
        let kinds: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokenKind::Ident(s) if s == "a"));
        assert_eq!(kinds[1], &TokenKind::Ne);
        assert!(matches!(kinds[2], TokenKind::Ident(s) if s == "b"));
        assert_eq!(kinds[3], &TokenKind::Arrow);
        assert_eq!(kinds[4], &TokenKind::LBrace);
        assert_eq!(kinds[5], &TokenKind::Int(-12));
        assert!(matches!(kinds[6], TokenKind::Str(s) if s == "s\"x"));
        assert_eq!(kinds[7], &TokenKind::RBrace);
        assert_eq!(kinds[8], &TokenKind::Semi);
        assert_eq!(kinds[9], &TokenKind::Eof);
    }

    #[test]
    fn hyphenated_identifiers() {
        let toks = lex("GRAD-ASSIST A - >").unwrap_err();
        // `A - >` has a bare `-` which is an error…
        assert!(matches!(toks, ModelError::Parse { .. }));
        let toks = lex("GRAD-ASSIST A -> B").unwrap();
        assert!(matches!(&toks[0].kind, TokenKind::Ident(s) if s == "GRAD-ASSIST"));
        assert_eq!(toks[2].kind, TokenKind::Arrow);
    }

    #[test]
    fn parse_university() {
        let s = parse_schema(UNIVERSITY).unwrap();
        assert_eq!(s.num_classes(), 4);
        assert_eq!(s.num_attrs(), 7);
        let g = s.class_id("GRAD-ASSIST").unwrap();
        let p = s.class_id("PERSON").unwrap();
        assert!(s.isa_star(g, p));
        assert_eq!(s.attr_star(g).len(), 7);
    }

    #[test]
    fn parse_bare_class_list_and_forward_refs() {
        let s = parse_schema("class B isa A { X }\n class A { Y }").unwrap();
        assert_eq!(s.num_classes(), 2);
        let b = s.class_id("B").unwrap();
        let a = s.class_id("A").unwrap();
        assert!(s.isa_direct(b, a));
    }

    #[test]
    fn parse_errors_have_positions() {
        let e = parse_schema("schema S { klass A }").unwrap_err();
        match e {
            ModelError::Parse { line, col, msg } => {
                assert_eq!(line, 1);
                assert!(col > 1);
                assert!(msg.contains("class"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn token_positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn empty_attr_block() {
        let s = parse_schema("class A { } class B isa A").unwrap();
        assert_eq!(s.num_attrs(), 0);
        assert_eq!(s.num_classes(), 2);
    }
}

//! Error types for the data-model layer.

use crate::ids::{AttrId, ClassId};

/// Errors raised while building or validating schemas and instances.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// An attribute name was declared twice. Definition 2.1 requires the
    /// attribute sets of distinct classes to be pairwise disjoint, so
    /// attribute names are globally unique.
    DuplicateAttr(String),
    /// A class name was referenced but never declared.
    UnknownClass(String),
    /// An attribute name was referenced but never declared.
    UnknownAttr(String),
    /// The isa relation is cyclic — specialization graphs are acyclic.
    IsaCycle(Vec<ClassId>),
    /// A weakly-connected component of the isa graph has more than one
    /// isa-root; Definition 2.1 requires each component to be a rooted DAG.
    MultipleRoots {
        /// Two of the offending roots.
        roots: (ClassId, ClassId),
    },
    /// The schema exceeds the 128-class capacity of [`crate::ClassSet`].
    TooManyClasses(usize),
    /// The schema exceeds the 128-attribute capacity of [`crate::AttrSet`].
    TooManyAttrs(usize),
    /// A set of classes is not closed under `isa*` where a role set was
    /// expected (Definition 3.1).
    NotUpClosed {
        /// The class whose ancestor is missing from the set.
        class: ClassId,
    },
    /// A role set spans two weakly-connected components (forbidden by
    /// Definition 4.5 — objects cannot belong to unrelated classes).
    CrossComponent {
        /// Two classes from different components.
        classes: (ClassId, ClassId),
    },
    /// An instance violates a well-formedness invariant of Definition 2.2.
    InvariantViolated(String),
    /// An attribute value is missing for an object that should have it.
    MissingValue {
        /// The object's identifier (numeric part).
        oid: u64,
        /// The attribute lacking a value.
        attr: AttrId,
    },
    /// A binary-encoded payload (snapshot, delta, WAL record) is
    /// truncated or malformed.
    Corrupt(String),
    /// Text-format parse error.
    Parse {
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::DuplicateClass(n) => write!(f, "duplicate class name `{n}`"),
            ModelError::DuplicateAttr(n) => write!(
                f,
                "duplicate attribute name `{n}` (attribute sets of distinct classes must be disjoint)"
            ),
            ModelError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            ModelError::UnknownAttr(n) => write!(f, "unknown attribute `{n}`"),
            ModelError::IsaCycle(cycle) => write!(f, "isa relation is cyclic through {cycle:?}"),
            ModelError::MultipleRoots { roots } => write!(
                f,
                "weakly-connected component has multiple isa-roots: {} and {}",
                roots.0, roots.1
            ),
            ModelError::TooManyClasses(n) => {
                write!(f, "schema has {n} classes; at most 128 supported")
            }
            ModelError::TooManyAttrs(n) => {
                write!(f, "schema has {n} attributes; at most 128 supported")
            }
            ModelError::NotUpClosed { class } => {
                write!(f, "set is not isa*-closed: an ancestor of {class} is missing")
            }
            ModelError::CrossComponent { classes } => write!(
                f,
                "classes {} and {} are not weakly connected",
                classes.0, classes.1
            ),
            ModelError::InvariantViolated(msg) => write!(f, "instance invariant violated: {msg}"),
            ModelError::MissingValue { oid, attr } => {
                write!(f, "object o{oid} has no value for attribute {attr}")
            }
            ModelError::Corrupt(msg) => write!(f, "corrupt encoding: {msg}"),
            ModelError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::DuplicateClass("PERSON".into());
        assert!(e.to_string().contains("PERSON"));
        let e = ModelError::Parse { line: 3, col: 9, msg: "expected `{`".into() };
        assert!(e.to_string().contains("3:9"));
        let e = ModelError::MissingValue { oid: 4, attr: AttrId(1) };
        assert!(e.to_string().contains("o4"));
    }
}

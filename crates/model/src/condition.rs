//! Selection conditions (Section 2 of the paper).
//!
//! An *atomic condition* has one of the forms `A = a`, `A ≠ a`, `A = x`,
//! `A ≠ x` for an attribute `A`, constant `a` and variable `x`. A
//! *condition* is a set of atomic conditions; it is *ground* when it
//! contains no variables. Objects are never addressed by identifier in
//! SL/CSL — conditions are the only selection mechanism.

use crate::bitset::AttrSet;
use crate::ids::{AttrId, VarId};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// The right-hand side of an atomic condition: a constant or a variable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// A constant from the universal domain 𝒰.
    Const(Value),
    /// A transaction variable, to be bound by an assignment.
    Var(VarId),
}

impl Term {
    /// The constant inside, if ground.
    #[must_use]
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

/// Comparison operator of an atomic condition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// `A = t`.
    Eq,
    /// `A ≠ t`.
    Ne,
}

/// An atomic condition `A (=|≠) t`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom {
    /// The attribute `A`.
    pub attr: AttrId,
    /// `=` or `≠`.
    pub op: CmpOp,
    /// Constant or variable right-hand side.
    pub term: Term,
}

impl Atom {
    /// `A = v` for a constant.
    #[must_use]
    pub fn eq_const(attr: AttrId, v: impl Into<Value>) -> Self {
        Atom { attr, op: CmpOp::Eq, term: Term::Const(v.into()) }
    }

    /// `A ≠ v` for a constant.
    #[must_use]
    pub fn ne_const(attr: AttrId, v: impl Into<Value>) -> Self {
        Atom { attr, op: CmpOp::Ne, term: Term::Const(v.into()) }
    }

    /// `A = x` for a variable.
    #[must_use]
    pub const fn eq_var(attr: AttrId, x: VarId) -> Self {
        Atom { attr, op: CmpOp::Eq, term: Term::Var(x) }
    }

    /// `A ≠ x` for a variable.
    #[must_use]
    pub const fn ne_var(attr: AttrId, x: VarId) -> Self {
        Atom { attr, op: CmpOp::Ne, term: Term::Var(x) }
    }

    /// Whether the atom mentions no variable.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        matches!(self.term, Term::Const(_))
    }

    /// Whether the atom *defines* its attribute (is an equality; the
    /// paper's "A is defined in Γ").
    #[must_use]
    pub fn defines(&self) -> bool {
        self.op == CmpOp::Eq
    }
}

/// A condition — a finite set of atomic conditions (deduplicated,
/// order-insensitive).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Condition {
    atoms: BTreeSet<Atom>,
}

impl Condition {
    /// The empty condition ∅ — satisfied by every tuple.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from atoms (duplicates collapse).
    #[must_use]
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        Condition { atoms: atoms.into_iter().collect() }
    }

    /// Add an atom.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.insert(atom);
    }

    /// Union of two conditions (conjunction).
    #[must_use]
    pub fn and(&self, other: &Condition) -> Condition {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        Condition { atoms }
    }

    /// Iterate the atoms.
    pub fn atoms(&self) -> impl Iterator<Item = &Atom> {
        self.atoms.iter()
    }

    /// Number of atoms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether this is the empty condition.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// `Att(Γ)` — the attributes referenced by the condition.
    #[must_use]
    pub fn referenced_attrs(&self) -> AttrSet {
        self.atoms.iter().map(|a| a.attr).collect()
    }

    /// `Att_def(Γ)` — the attributes *defined* (appearing in an equality).
    #[must_use]
    pub fn defined_attrs(&self) -> AttrSet {
        self.atoms.iter().filter(|a| a.defines()).map(|a| a.attr).collect()
    }

    /// Whether the condition is ground.
    #[must_use]
    pub fn is_ground(&self) -> bool {
        self.atoms.iter().all(Atom::is_ground)
    }

    /// The variables occurring in the condition.
    #[must_use]
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.atoms
            .iter()
            .filter_map(|a| match a.term {
                Term::Var(x) => Some(x),
                Term::Const(_) => None,
            })
            .collect()
    }

    /// The constants occurring in the condition (`C_Γ`).
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Value> {
        self.atoms.iter().filter_map(|a| a.term.as_const().cloned()).collect()
    }

    /// Substitute variables by constants according to `assign`, producing a
    /// ground condition (`Γ[α]`). Unbound variables are an error of the
    /// caller; this function panics in debug builds and substitutes a fresh
    /// marker value in release builds to keep semantics total.
    #[must_use]
    pub fn substitute(&self, assign: &dyn Fn(VarId) -> Value) -> Condition {
        Condition {
            atoms: self
                .atoms
                .iter()
                .map(|a| Atom {
                    attr: a.attr,
                    op: a.op,
                    term: match &a.term {
                        Term::Const(v) => Term::Const(v.clone()),
                        Term::Var(x) => Term::Const(assign(*x)),
                    },
                })
                .collect(),
        }
    }

    /// Whether a **ground** condition is satisfiable (`Sat(Γ) ≠ ∅`):
    /// for each attribute, all equality constants agree and the agreed
    /// constant is not excluded by an inequality. Attributes with no
    /// equality are always satisfiable because the domain is infinite.
    ///
    /// Non-satisfiable conditions are the paper's `E`; every operator maps
    /// a database to itself when its condition is `E`.
    #[must_use]
    pub fn is_satisfiable(&self) -> bool {
        debug_assert!(self.is_ground(), "satisfiability is defined on ground conditions");
        let mut eq: BTreeMap<AttrId, &Value> = BTreeMap::new();
        for a in &self.atoms {
            if a.op == CmpOp::Eq {
                if let Term::Const(v) = &a.term {
                    if let Some(prev) = eq.insert(a.attr, v) {
                        if prev != v {
                            return false;
                        }
                    }
                }
            }
        }
        for a in &self.atoms {
            if a.op == CmpOp::Ne {
                if let Term::Const(v) = &a.term {
                    if eq.get(&a.attr) == Some(&v) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// For a **ground satisfiable** condition: the value assigned to each
    /// defined attribute (used by `create`, `modify`, `specialize` to set
    /// attribute values).
    #[must_use]
    pub fn value_map(&self) -> BTreeMap<AttrId, Value> {
        let mut m = BTreeMap::new();
        for a in &self.atoms {
            if a.op == CmpOp::Eq {
                if let Term::Const(v) = &a.term {
                    m.entry(a.attr).or_insert_with(|| v.clone());
                }
            }
        }
        m
    }

    /// Whether a tuple satisfies this **ground** condition (`t ⊨ Γ`).
    /// Atoms over attributes absent from the tuple are not satisfied
    /// (cannot arise for validated operations, where `Att(Γ) ⊆ A*(P)`).
    #[must_use]
    pub fn satisfied_by(&self, t: &Tuple) -> bool {
        self.atoms.iter().all(|a| {
            let Term::Const(v) = &a.term else { return false };
            match (t.get(a.attr), a.op) {
                (Some(tv), CmpOp::Eq) => tv == v,
                (Some(tv), CmpOp::Ne) => tv != v,
                (None, _) => false,
            }
        })
    }
}

impl FromIterator<Atom> for Condition {
    fn from_iter<I: IntoIterator<Item = Atom>>(iter: I) -> Self {
        Condition::from_atoms(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn empty_condition_satisfied_by_everything() {
        let c = Condition::empty();
        assert!(c.is_ground());
        assert!(c.is_satisfiable());
        assert!(c.satisfied_by(&Tuple::new()));
        let mut t = Tuple::new();
        t.set(a(0), Value::int(1));
        assert!(c.satisfied_by(&t));
    }

    #[test]
    fn referenced_and_defined_attrs() {
        let c = Condition::from_atoms([
            Atom::eq_const(a(0), 1),
            Atom::ne_const(a(1), 2),
            Atom::eq_var(a(2), VarId(0)),
        ]);
        assert_eq!(c.referenced_attrs().len(), 3);
        let def = c.defined_attrs();
        assert!(def.contains(a(0)) && def.contains(a(2)) && !def.contains(a(1)));
        assert!(!c.is_ground());
        assert_eq!(c.vars().len(), 1);
    }

    #[test]
    fn satisfiability() {
        // A=1 ∧ A=1 satisfiable; A=1 ∧ A=2 not; A=1 ∧ A≠1 not; A≠1 ∧ A≠2 satisfiable.
        assert!(Condition::from_atoms([Atom::eq_const(a(0), 1), Atom::eq_const(a(0), 1)])
            .is_satisfiable());
        assert!(!Condition::from_atoms([Atom::eq_const(a(0), 1), Atom::eq_const(a(0), 2)])
            .is_satisfiable());
        assert!(!Condition::from_atoms([Atom::eq_const(a(0), 1), Atom::ne_const(a(0), 1)])
            .is_satisfiable());
        assert!(Condition::from_atoms([Atom::ne_const(a(0), 1), Atom::ne_const(a(0), 2)])
            .is_satisfiable());
        // Mixed attributes independent.
        assert!(Condition::from_atoms([Atom::eq_const(a(0), 1), Atom::ne_const(a(1), 1)])
            .is_satisfiable());
    }

    #[test]
    fn substitution_grounds() {
        let c = Condition::from_atoms([Atom::eq_var(a(0), VarId(0)), Atom::ne_var(a(1), VarId(1))]);
        let g = c.substitute(&|x| Value::int(i64::from(x.0) + 10));
        assert!(g.is_ground());
        assert!(g.atoms().any(|at| at.term == Term::Const(Value::int(10))));
        assert!(g.atoms().any(|at| at.term == Term::Const(Value::int(11))));
    }

    #[test]
    fn tuple_satisfaction() {
        let mut t = Tuple::new();
        t.set(a(0), Value::str("x"));
        t.set(a(1), Value::int(5));
        assert!(Condition::from_atoms([Atom::eq_const(a(0), "x")]).satisfied_by(&t));
        assert!(!Condition::from_atoms([Atom::eq_const(a(0), "y")]).satisfied_by(&t));
        assert!(Condition::from_atoms([Atom::ne_const(a(1), 6)]).satisfied_by(&t));
        assert!(!Condition::from_atoms([Atom::ne_const(a(1), 5)]).satisfied_by(&t));
        // Missing attribute: never satisfied.
        assert!(!Condition::from_atoms([Atom::eq_const(a(9), 0)]).satisfied_by(&t));
        assert!(!Condition::from_atoms([Atom::ne_const(a(9), 0)]).satisfied_by(&t));
    }

    #[test]
    fn value_map_takes_first_equality() {
        let c = Condition::from_atoms([
            Atom::eq_const(a(0), 1),
            Atom::ne_const(a(0), 3),
            Atom::eq_const(a(1), "v"),
        ]);
        let m = c.value_map();
        assert_eq!(m.len(), 2);
        assert_eq!(m[&a(0)], Value::int(1));
        assert_eq!(m[&a(1)], Value::str("v"));
    }

    #[test]
    fn dedup_and_conjunction() {
        let c1 = Condition::from_atoms([Atom::eq_const(a(0), 1), Atom::eq_const(a(0), 1)]);
        assert_eq!(c1.len(), 1);
        let c2 = Condition::from_atoms([Atom::eq_const(a(1), 2)]);
        assert_eq!(c1.and(&c2).len(), 2);
    }

    #[test]
    fn constants_collected() {
        let c = Condition::from_atoms([
            Atom::eq_const(a(0), 1),
            Atom::ne_const(a(1), "z"),
            Atom::eq_var(a(2), VarId(1)),
        ]);
        let cs = c.constants();
        assert_eq!(cs.len(), 2);
        assert!(cs.contains(&Value::int(1)) && cs.contains(&Value::str("z")));
    }
}

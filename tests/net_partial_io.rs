//! Partial-I/O edge cases for the event-driven wire front end, driven
//! through the real `migctl` binary over real sockets:
//!
//! * text lines and binary frames sliced across arbitrary TCP read
//!   boundaries reassemble into exactly the same replies;
//! * a slow reader forces the server to buffer replies (write
//!   backpressure) without losing, duplicating or reordering any;
//! * graceful `shutdown` answers every complete in-flight request and
//!   closes connections whose last frame never finished arriving.

use migratory::core::enforce::net::frame;
use migratory::model::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

const UNI_SCHEMA: &str = r#"
schema Uni {
  class PERSON { SSN, Name }
  class STUDENT isa PERSON { Major }
}
"#;

const UNI_TX: &str = r#"
transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
transaction St(x) { specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS" }); }
transaction Rm(x) { delete(PERSON, { SSN = x }); }
"#;

// Specialization is forbidden: every St on a live PERSON violates,
// deterministically.
const UNI_INV: &str = "∅* [PERSON]* ∅*";

/// Spawn `migctl serve` on an ephemeral port and return (child, addr).
fn spawn_serve(tag: &str, extra: &[&str]) -> (std::process::Child, String) {
    let dir =
        std::env::temp_dir().join(format!("migratory-partial-io-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let schema = dir.join("uni.mig");
    let tx = dir.join("uni.sl");
    std::fs::write(&schema, UNI_SCHEMA).unwrap();
    std::fs::write(&tx, UNI_TX).unwrap();
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_migctl"))
        .arg("serve")
        .arg(&schema)
        .arg(&tx)
        .args(["--inventory", UNI_INV, "--addr", "127.0.0.1:0", "--shards", "2"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn migctl serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("serve prints its address").expect("read stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.split_whitespace().next().expect("an address").to_owned();
        }
    };
    // Keep draining stdout so the server never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> TcpStream {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_nodelay(true).expect("nodelay");
    conn
}

fn read_line(r: &mut impl BufRead) -> String {
    let mut line = String::new();
    r.read_line(&mut line).expect("read reply line");
    assert!(line.ends_with('\n'), "server closed mid-line: {line:?}");
    line.pop();
    line
}

/// One mixed-dialect request stream delivered byte-by-byte and in every
/// small chunk size: the server's incremental accumulator must
/// reassemble identical replies no matter where TCP cuts the stream.
#[test]
fn requests_split_across_arbitrary_read_boundaries_reassemble() {
    let (mut child, addr) = spawn_serve("split", &[]);

    // The stream interleaves dialects and ends with a text ping so the
    // final reply is unambiguous. Keys are distinct per round: every Mk
    // is admitted, and the frame-dialect St targets the PERSON the text
    // line just created — per-connection FIFO makes it a deterministic
    // violation.
    let build = |round: usize| -> Vec<u8> {
        let mut req = Vec::new();
        req.extend_from_slice(b"ping\n");
        frame::encode_invoke_frame(&mut req, "Mk", &[Value::str(&format!("b{round}"))]);
        req.extend_from_slice(format!("invoke Mk(t{round})\n").as_bytes());
        frame::encode_invoke_frame(&mut req, "St", &[Value::str(&format!("t{round}"))]);
        req.extend_from_slice(b"ping\n");
        req
    };
    let check_replies = |reader: &mut BufReader<TcpStream>, chunk: usize| {
        assert_eq!(read_line(reader), "ok pong", "chunk size {chunk}");
        let (kind, payload) = frame::read_frame(reader).expect("binary Mk reply");
        assert_eq!((kind, payload.len()), (frame::REP_OK, 0), "chunk size {chunk}");
        assert_eq!(read_line(reader), "ok", "chunk size {chunk}");
        let (kind, payload) = frame::read_frame(reader).expect("binary St reply");
        assert_eq!(kind, frame::REP_VIOLATION, "chunk size {chunk}");
        assert!(!payload.is_empty(), "violation diagnostics name the offense");
        assert_eq!(read_line(reader), "ok pong", "chunk size {chunk}");
    };

    for (round, chunk) in [1usize, 2, 3, 5, 7, 11].into_iter().enumerate() {
        let conn = connect(&addr);
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        let req = build(round);
        for piece in req.chunks(chunk) {
            writer.write_all(piece).unwrap();
            writer.flush().unwrap();
        }
        check_replies(&mut reader, chunk);
    }

    let mut c = connect(&addr);
    c.write_all(b"shutdown\n").unwrap();
    assert_eq!(read_line(&mut BufReader::new(c)), "ok draining");
    assert!(child.wait().expect("reap").success());
}

/// A client that pipelines thousands of requests and only then starts
/// reading: the reply stream backs up into the server's write buffers,
/// and once the reader catches up every reply is present, in order,
/// none duplicated. A second connection stays responsive throughout —
/// one stalled peer must not block the event loop.
#[test]
fn slow_reader_backpressure_loses_no_replies() {
    const N: usize = 4000;
    let (mut child, addr) = spawn_serve("slow", &[]);
    let conn = connect(&addr);
    let mut writer = conn.try_clone().unwrap();
    let mut reader = BufReader::new(conn);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            // ~90 bytes of reply per request — hundreds of KiB of owed
            // replies, far past any socket buffer, while we read nothing.
            let mut req = Vec::new();
            for i in 0..N {
                req.extend_from_slice(format!("bogus-{i}\n").as_bytes());
            }
            writer.write_all(&req).unwrap();
            writer.flush().unwrap();
        });
        // Let the pile build up before draining a single reply.
        std::thread::sleep(std::time::Duration::from_millis(300));
        let probe = connect(&addr);
        let mut probe_writer = probe.try_clone().unwrap();
        let mut probe_reader = BufReader::new(probe);
        probe_writer.write_all(b"ping\n").unwrap();
        assert_eq!(read_line(&mut probe_reader), "ok pong", "event loop still live while stalled");
        for i in 0..N {
            let reply = read_line(&mut reader);
            assert!(
                reply.starts_with("error unknown verb `bogus-")
                    && reply.contains(&format!("`bogus-{i}`")),
                "reply {i} out of order or corrupted: {reply}"
            );
        }
        probe_writer.write_all(b"shutdown\n").unwrap();
        assert_eq!(read_line(&mut probe_reader), "ok draining");
    });
    assert!(child.wait().expect("reap").success());
}

/// A client that pipelines a burst of requests and immediately
/// half-closes (`shutdown(SHUT_WR)`) is still owed every reply: the
/// FIN can arrive in the same read burst as the final request bytes,
/// and nothing already buffered may be discarded. The server answers
/// all of it, in order, then closes.
#[test]
fn half_close_after_pipeline_still_answers_every_request() {
    const N: usize = 500;
    let (mut child, addr) = spawn_serve("halfclose", &[]);
    let conn = connect(&addr);
    let writer = conn.try_clone().unwrap();
    let mut reader = BufReader::new(conn);
    let mut req = Vec::new();
    for i in 0..N {
        req.extend_from_slice(format!("invoke Mk(h{i})\n").as_bytes());
    }
    frame::encode_invoke_frame(&mut req, "Mk", &[Value::str("h-last")]);
    (&writer).write_all(&req).unwrap();
    writer.shutdown(std::net::Shutdown::Write).unwrap();
    for i in 0..N {
        assert_eq!(read_line(&mut reader), "ok", "reply {i} after half-close");
    }
    let (kind, _) = frame::read_frame(&mut reader).expect("binary reply after half-close");
    assert_eq!(kind, frame::REP_OK);
    // Every reply delivered, then an orderly EOF — nothing dropped,
    // nothing extra.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain to EOF");
    assert!(rest.is_empty(), "exactly one reply per request, got {rest:?}");

    let mut c = connect(&addr);
    c.write_all(b"shutdown\n").unwrap();
    assert_eq!(read_line(&mut BufReader::new(c)), "ok draining");
    assert!(child.wait().expect("reap").success());
}

/// Graceful drain with a frame half-buffered: requests that arrived
/// whole are answered before the socket closes; the connection whose
/// final frame never finished is closed without inventing a reply for
/// the fragment — and the server still exits cleanly.
#[test]
fn shutdown_answers_complete_requests_and_drops_half_buffered_frames() {
    let (mut child, addr) = spawn_serve("drain", &[]);

    let conn = connect(&addr);
    let mut writer = conn.try_clone().unwrap();
    let mut reader = BufReader::new(conn);

    // One complete binary invoke, acknowledged — it is in no sense
    // "in flight" when the drain starts.
    let mut req = Vec::new();
    frame::encode_invoke_frame(&mut req, "Mk", &[Value::str("whole")]);
    writer.write_all(&req).unwrap();
    let (kind, _) = frame::read_frame(&mut reader).expect("admitted");
    assert_eq!(kind, frame::REP_OK);

    // Then a frame whose payload never finishes arriving, plus a text
    // line missing its newline: both half-buffered at drain time.
    let mut partial = Vec::new();
    frame::encode_invoke_frame(&mut partial, "Mk", &[Value::str("never-finishes")]);
    partial.truncate(partial.len() - 3);
    writer.write_all(&partial).unwrap();
    writer.flush().unwrap();

    let half_line = connect(&addr);
    let mut hl_writer = half_line.try_clone().unwrap();
    let mut hl_reader = BufReader::new(half_line);
    hl_writer.write_all(b"invoke Mk(half").unwrap();
    hl_writer.flush().unwrap();

    // Drain from a third connection.
    let ctl = connect(&addr);
    let mut ctl_writer = ctl.try_clone().unwrap();
    let mut ctl_reader = BufReader::new(ctl);
    std::thread::sleep(std::time::Duration::from_millis(100));
    ctl_writer.write_all(b"shutdown\n").unwrap();
    assert_eq!(read_line(&mut ctl_reader), "ok draining");

    // Both half-buffered connections close without any further reply —
    // the fragments are dropped, not answered, not hung on.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain to EOF");
    assert!(rest.is_empty(), "no reply owed for a fragment, got {rest:?}");
    let mut rest = Vec::new();
    hl_reader.read_to_end(&mut rest).expect("drain to EOF");
    assert!(rest.is_empty(), "no reply owed for a half line, got {rest:?}");

    assert!(child.wait().expect("reap").success());
}

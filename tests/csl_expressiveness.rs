//! Section 4 end to end: the compiled CSL⁺ schemas realize non-regular
//! inventories (Theorems 4.3 and 4.8), the left-quotient statement of
//! Theorem 4.4 holds on driven runs, and the whole pipeline stays inside
//! CSL⁺ (no negative literals).

use migratory::chomsky::cfg::grammars;
use migratory::chomsky::turing::machines;
use migratory::core::cfg_compile::{compile_cfg, standard_cfg_schema};
use migratory::core::tm_compile::{compile_tm, drive_word, standard_tm_schema, TmSpec};
use migratory::lang::{Assignment, Language};
use migratory::model::Instance;

/// Theorem 4.3, completeness side, for several word lengths: the driven
/// TM schema migrates an object through exactly aⁿbⁿ and deletes it.
#[test]
fn tm_compiler_realizes_anbn() {
    let (schema, alphabet, s_class, roles) = standard_tm_schema(2).unwrap();
    let tm = machines::anbn();
    let spec = TmSpec {
        letter_of: vec![Some(roles[0]), Some(roles[1]), Some(roles[0]), Some(roles[1]), None],
    };
    let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &spec).unwrap();
    assert_eq!(compiled.transactions.language(), Language::CslPlus);

    for n in 1..=5usize {
        let mut word = vec![0u32; n];
        word.extend(vec![1u32; n]);
        let script = drive_word(&tm, &word, 100_000).expect("accepted");
        let mut db = Instance::empty();
        let mut trace = vec![db.clone()];
        for (name, args) in &script {
            let t = compiled.transactions.get(name).unwrap();
            migratory::lang::apply_transaction(&schema, &mut db, t, &Assignment::new(args.clone()))
                .unwrap();
            trace.push(db.clone());
        }
        let mut found = false;
        for i in 1..trace.last().unwrap().next_oid().0 {
            let o = migratory::model::Oid(i);
            let obs = migratory::core::pattern::observe(&schema, &alphabet, &trace, o);
            let pat = migratory::core::pattern::pattern_of(&obs);
            let letters: Vec<u32> =
                pat.iter().copied().filter(|&s| s != alphabet.empty_symbol()).collect();
            if letters.is_empty() {
                continue;
            }
            found = true;
            let expected: Vec<u32> =
                word.iter().map(|&c| alphabet.symbol_of(roles[c as usize]).unwrap()).collect();
            assert_eq!(letters, expected, "n = {n}");
            assert_eq!(*pat.last().unwrap(), alphabet.empty_symbol(), "∅ suffix after deletion");
        }
        assert!(found, "an object must migrate for n = {n}");
    }
}

/// Theorem 4.4's shape on driven runs: each pattern is the word with an
/// ∅* padding in front (the quotient by the pre-migration phases).
#[test]
fn theorem_4_4_padding_shape() {
    let (schema, alphabet, s_class, roles) = standard_tm_schema(2).unwrap();
    let tm = machines::even_length();
    let spec = TmSpec { letter_of: vec![Some(roles[0]), Some(roles[1]), None] };
    let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &spec).unwrap();
    let word = vec![0u32, 1];
    let script = drive_word(&tm, &word, 1000).unwrap();
    let mut db = Instance::empty();
    let mut trace = vec![db.clone()];
    for (name, args) in &script {
        let t = compiled.transactions.get(name).unwrap();
        migratory::lang::apply_transaction(&schema, &mut db, t, &Assignment::new(args.clone()))
            .unwrap();
        trace.push(db.clone());
    }
    for i in 1..trace.last().unwrap().next_oid().0 {
        let o = migratory::model::Oid(i);
        let obs = migratory::core::pattern::observe(&schema, &alphabet, &trace, o);
        let pat = migratory::core::pattern::pattern_of(&obs);
        if pat.iter().all(|&s| s == alphabet.empty_symbol()) {
            continue;
        }
        // Shape: ∅^k (letters) ∅^j — the ∅^k prefix is the word-generation
        // and simulation phases (Theorem 4.4's regular padding, observed
        // through 𝓛 rather than 𝓛ᵢₘₘ).
        let first_letter = pat.iter().position(|&s| s != alphabet.empty_symbol()).unwrap();
        assert!(first_letter > 0, "phases precede the migration");
        assert!(migratory::core::pattern::is_well_formed(&pat, alphabet.empty_symbol()));
    }
}

/// Theorem 4.8 for the Dyck language: driven words emit exactly
/// themselves; the derivation stack works through GNF.
#[test]
fn cfg_compiler_realizes_dyck() {
    let g = grammars::dyck();
    let (schema, alphabet, s_class, roles) = standard_cfg_schema(2).unwrap();
    let compiled = compile_cfg(&schema, &alphabet, s_class, &g, &roles).unwrap();
    assert_eq!(compiled.transactions.language(), Language::CslPlus);
    assert!(compiled.derives_lambda);

    for word in [vec![0u32, 1], vec![0, 0, 1, 1], vec![0, 1, 0, 0, 1, 1]] {
        let script = migratory::core::cfg_compile::drive_word(&compiled, &word).expect("balanced");
        let mut db = Instance::empty();
        let mut trace = vec![db.clone()];
        for (name, args) in &script {
            let t = compiled.transactions.get(name).unwrap();
            migratory::lang::apply_transaction(&schema, &mut db, t, &Assignment::new(args.clone()))
                .unwrap();
            trace.push(db.clone());
        }
        let mut found = false;
        for i in 1..trace.last().unwrap().next_oid().0 {
            let o = migratory::model::Oid(i);
            let obs = migratory::core::pattern::observe(&schema, &alphabet, &trace, o);
            let letters: Vec<u32> = migratory::core::pattern::pattern_of(&obs)
                .into_iter()
                .filter(|&s| s != alphabet.empty_symbol())
                .collect();
            if letters.is_empty() {
                continue;
            }
            found = true;
            let expected: Vec<u32> =
                word.iter().map(|&c| alphabet.symbol_of(roles[c as usize]).unwrap()).collect();
            assert_eq!(letters, expected);
        }
        assert!(found);
    }
}

/// Corollary 4.7 in practice: the SL decision procedure refuses CSL
/// input; bounded exploration can refute but not confirm.
#[test]
fn csl_satisfiability_is_only_semi_decidable() {
    let (schema, alphabet, s_class, roles) = standard_tm_schema(1).unwrap();
    let tm = machines::accept_all();
    let spec = TmSpec { letter_of: vec![Some(roles[0]), None] };
    let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &spec).unwrap();
    let inv = migratory::core::Inventory::parse_init(&schema, &alphabet, "∅*").unwrap();
    assert!(matches!(
        migratory::core::decide(
            &schema,
            &alphabet,
            &compiled.transactions,
            &inv,
            migratory::core::PatternKind::All
        ),
        Err(migratory::core::CoreError::NotSl)
    ));
}

//! Edge-of-envelope tests for the data-model substrate: capacity limits,
//! deep and wide hierarchies, and every Definition 2.1/2.2 invariant
//! rejection path.

use migratory::core::RoleAlphabet;
use migratory::model::{
    schema::university_schema, ClassSet, Instance, ModelError, Oid, RoleSet, SchemaBuilder, Tuple,
    Value,
};

#[test]
fn class_capacity_is_exactly_128() {
    let mut b = SchemaBuilder::new();
    for i in 0..128 {
        b.class(&format!("C{i}"), &[]).unwrap();
    }
    assert!(b.build().is_ok(), "128 isolated classes fit the ClassSet bitmask");

    let mut b = SchemaBuilder::new();
    for i in 0..128 {
        b.class(&format!("C{i}"), &[]).unwrap();
    }
    assert!(
        matches!(b.class("C128", &[]), Err(ModelError::TooManyClasses(_))),
        "the 129th class must be rejected, not wrapped"
    );
}

#[test]
fn deep_chain_round_trips_through_the_alphabet() {
    // A 100-deep isa chain: role sets are the 100 closures plus ∅.
    let mut b = SchemaBuilder::new();
    let mut prev = b.class("C0", &["A"]).unwrap();
    for i in 1..100 {
        prev = b.subclass(&format!("C{i}"), &[prev], &[]).unwrap();
    }
    let schema = b.build().unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    assert_eq!(alphabet.num_symbols(), 101);
    // The deepest closure contains the whole chain.
    let deep = RoleSet::closure_of_named(&schema, &["C99"]).unwrap();
    assert_eq!(deep.len(), 100);
    // symbol_of ∘ role_set = id across the whole alphabet.
    for sym in 0..alphabet.num_symbols() {
        assert_eq!(alphabet.symbol_of(alphabet.role_set(sym)), Some(sym));
    }
}

#[test]
fn wide_fanout_role_sets_explode_combinatorially() {
    // One root, 10 direct subclasses: *any* set of siblings together with
    // the root is up-closed (an object can be specialized into several
    // siblings), so the alphabet has ∅ plus 2¹⁰ root-containing role
    // sets. This exponential growth is exactly why the analyzer only
    // materializes *reachable* separator vertices.
    let mut b = SchemaBuilder::new();
    let root = b.class("R", &["A"]).unwrap();
    for i in 0..10 {
        b.subclass(&format!("K{i}"), &[root], &[]).unwrap();
    }
    let schema = b.build().unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    assert_eq!(alphabet.num_symbols(), 1 + (1 << 10));
}

#[test]
fn diamond_role_set_requires_all_ancestors() {
    let schema = university_schema();
    let g = schema.class_id("GRAD_ASSIST").unwrap();
    let p = schema.class_id("PERSON").unwrap();
    // {GRAD_ASSIST, PERSON} is missing STUDENT and EMPLOYEE.
    let mut cs = ClassSet::empty();
    cs.insert(g);
    cs.insert(p);
    assert!(matches!(RoleSet::new(&schema, cs), Err(ModelError::NotUpClosed { .. })));
}

#[test]
fn attribute_names_are_globally_unique() {
    let mut b = SchemaBuilder::new();
    b.class("A", &["X"]).unwrap();
    assert!(
        matches!(b.class("B", &["X"]), Err(ModelError::DuplicateAttr(_))),
        "Definition 2.1: attribute sets of distinct classes are disjoint"
    );
}

#[test]
fn duplicate_class_names_rejected() {
    let mut b = SchemaBuilder::new();
    b.class("A", &[]).unwrap();
    assert!(matches!(b.class("A", &[]), Err(ModelError::DuplicateClass(_))));
}

#[test]
fn multi_rooted_components_rejected() {
    // A and B are both isa-roots; C isa A, C isa B weakly connects them —
    // Definition 2.1 requires a rooted DAG per component.
    let mut b = SchemaBuilder::new();
    let a = b.class("A", &["X"]).unwrap();
    let c = b.class("B", &["Y"]).unwrap();
    b.subclass("C", &[a, c], &[]).unwrap();
    assert!(matches!(b.build(), Err(ModelError::MultipleRoots { .. })));
}

fn university_oid(classes: &[&str], pairs: &[(&str, Value)]) -> Instance {
    let schema = university_schema();
    let cs = RoleSet::closure_of_named(&schema, classes).unwrap().classes();
    let t = Tuple::from_pairs(pairs.iter().map(|(a, v)| (schema.attr_id(a).unwrap(), v.clone())));
    Instance::from_objects([(Oid(1), cs, t)])
}

#[test]
fn invariants_missing_attribute_value() {
    let schema = university_schema();
    // A PERSON without a Name.
    let db = university_oid(&["PERSON"], &[("SSN", Value::str("1"))]);
    assert!(matches!(db.check_invariants(&schema), Err(ModelError::MissingValue { .. })));
}

#[test]
fn invariants_extraneous_attribute_value() {
    let schema = university_schema();
    // A plain PERSON storing a STUDENT attribute.
    let db = university_oid(
        &["PERSON"],
        &[("SSN", Value::str("1")), ("Name", Value::str("n")), ("Major", Value::str("CS"))],
    );
    assert!(db.check_invariants(&schema).is_err());
}

#[test]
fn invariants_membership_not_closed() {
    let schema = university_schema();
    let s = schema.class_id("STUDENT").unwrap();
    let mut cs = ClassSet::empty();
    cs.insert(s); // STUDENT without PERSON
    let t = Tuple::from_pairs([
        (schema.attr_id("SSN").unwrap(), Value::str("1")),
        (schema.attr_id("Name").unwrap(), Value::str("n")),
        (schema.attr_id("Major").unwrap(), Value::str("CS")),
        (schema.attr_id("FirstEnroll").unwrap(), Value::int(1)),
    ]);
    let db = Instance::from_objects([(Oid(1), cs, t)]);
    assert!(db.check_invariants(&schema).is_err());
}

#[test]
fn invariants_oid_counter_monotone() {
    // Definition 2.2(3): every occurring object precedes the next-object
    // marker, and creation consumes it in <ₒ order.
    let schema = university_schema();
    let mut db =
        university_oid(&["PERSON"], &[("SSN", Value::str("1")), ("Name", Value::str("n"))]);
    assert!(db.check_invariants(&schema).is_ok());
    assert_eq!(db.next_oid(), Oid(2));
    // Skipping the counter forward is always safe…
    db.set_next(100);
    assert!(db.check_invariants(&schema).is_ok());
    let cs = RoleSet::closure_of_named(&schema, &["PERSON"]).unwrap().classes();
    let o = db.create(
        cs,
        [
            (schema.attr_id("SSN").unwrap(), Value::str("2")),
            (schema.attr_id("Name").unwrap(), Value::str("m")),
        ]
        .into_iter()
        .collect(),
    );
    assert_eq!(o, Oid(100), "creation uses the forced counter");
    assert!(db.check_invariants(&schema).is_ok());
}

#[test]
fn empty_instance_is_well_formed_everywhere() {
    let schema = university_schema();
    let db = Instance::empty();
    assert!(db.check_invariants(&schema).is_ok());
    assert_eq!(db.num_objects(), 0);
    assert_eq!(db.role_set(Oid(7)), ClassSet::empty());
    assert!(db.active_domain().is_empty());
}

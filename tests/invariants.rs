//! Property tests for the engine invariants the paper's proofs rely on:
//! Definition 2.2 well-formedness is preserved by every SL operation, and
//! objects behave independently (Lemma 3.5).

use migratory::lang::{run, Assignment, AtomicUpdate, Transaction};
use migratory::model::{schema::university_schema, Atom, Condition, Instance, Oid, Value};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Create(String, String),
    Delete(String),
    SpecializeStudent(String),
    SpecializeGrad(String),
    GeneralizeEmployee(String),
    GeneralizeStudent(String),
    Rename(String, String),
}

fn key_strategy() -> impl Strategy<Value = String> {
    prop_oneof![Just("k1".to_owned()), Just("k2".to_owned()), Just("k3".to_owned())]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Create(a, b)),
        key_strategy().prop_map(Op::Delete),
        key_strategy().prop_map(Op::SpecializeStudent),
        key_strategy().prop_map(Op::SpecializeGrad),
        key_strategy().prop_map(Op::GeneralizeEmployee),
        key_strategy().prop_map(Op::GeneralizeStudent),
        (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Rename(a, b)),
    ]
}

fn to_update(schema: &migratory::model::Schema, op: &Op) -> AtomicUpdate {
    let c = |n: &str| schema.class_id(n).unwrap();
    let a = |n: &str| schema.attr_id(n).unwrap();
    let eq = |attr: &str, v: &str| Atom::eq_const(a(attr), v);
    match op {
        Op::Create(s, n) => AtomicUpdate::Create {
            class: c("PERSON"),
            gamma: Condition::from_atoms([eq("SSN", s), eq("Name", n)]),
        },
        Op::Delete(s) => AtomicUpdate::Delete {
            class: c("PERSON"),
            gamma: Condition::from_atoms([eq("SSN", s)]),
        },
        Op::SpecializeStudent(s) => AtomicUpdate::Specialize {
            from: c("PERSON"),
            to: c("STUDENT"),
            select: Condition::from_atoms([eq("SSN", s)]),
            set: Condition::from_atoms([eq("Major", "m"), Atom::eq_const(a("FirstEnroll"), 1)]),
        },
        Op::SpecializeGrad(s) => AtomicUpdate::Specialize {
            from: c("STUDENT"),
            to: c("GRAD_ASSIST"),
            select: Condition::from_atoms([eq("SSN", s)]),
            set: Condition::from_atoms([
                Atom::eq_const(a("PcAppoint"), 50),
                Atom::eq_const(a("Salary"), 1),
                eq("WorksIn", "d"),
            ]),
        },
        Op::GeneralizeEmployee(s) => AtomicUpdate::Generalize {
            class: c("EMPLOYEE"),
            gamma: Condition::from_atoms([eq("SSN", s)]),
        },
        Op::GeneralizeStudent(s) => AtomicUpdate::Generalize {
            class: c("STUDENT"),
            gamma: Condition::from_atoms([eq("SSN", s)]),
        },
        Op::Rename(s, n) => AtomicUpdate::Modify {
            class: c("PERSON"),
            select: Condition::from_atoms([eq("SSN", s)]),
            set: Condition::from_atoms([eq("Name", n)]),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every database reachable from d₀ by SL operations satisfies
    /// Definition 2.2 (the interpreter can never corrupt an instance).
    #[test]
    fn sl_preserves_instance_invariants(ops in prop::collection::vec(op_strategy(), 0..12)) {
        let schema = university_schema();
        let mut db = Instance::empty();
        for op in &ops {
            let upd = to_update(&schema, op);
            migratory::lang::validate_update(&schema, &upd).unwrap();
            migratory::lang::apply_atomic(&schema, &mut db, &upd);
            db.check_invariants(&schema).unwrap();
        }
    }

    /// Lemma 3.5: ⟦T⟧(d|I) = (⟦T⟧(d))|I for SL transactions — objects
    /// evolve independently.
    #[test]
    fn restriction_lemma(
        setup in prop::collection::vec(op_strategy(), 0..6),
        body in prop::collection::vec(op_strategy(), 1..5),
        keep in prop::collection::vec(any::<bool>(), 12),
    ) {
        let schema = university_schema();
        let mut db = Instance::empty();
        for op in &setup {
            migratory::lang::apply_atomic(&schema, &mut db, &to_update(&schema, op));
        }
        let t = Transaction::sl(
            "body",
            &[],
            body.iter().map(|op| to_update(&schema, op)).collect(),
        );
        let objects: Vec<Oid> = db
            .objects()
            .filter(|o| keep.get(o.0 as usize % keep.len()).copied().unwrap_or(false))
            .collect();
        let lhs = run(&schema, &db.restrict(&objects), &t, &Assignment::empty()).unwrap();
        let rhs = run(&schema, &db, &t, &Assignment::empty()).unwrap();
        // Restriction must ignore objects created by T itself: compare on
        // the original object set only.
        let rhs_restricted = rhs.restrict(
            &objects
                .iter()
                .copied()
                .chain(lhs.objects())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>(),
        );
        let lhs_restricted = lhs.restrict(
            &objects
                .iter()
                .copied()
                .chain(rhs_restricted.objects())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>(),
        );
        // Compare per-object state (next counters can differ when the
        // restricted run creates the same number of objects at different
        // ids — they don't here because create is unconditional, but keep
        // the comparison on observables to state exactly Lemma 3.5).
        for o in &objects {
            prop_assert_eq!(lhs_restricted.role_set(*o), rhs.role_set(*o));
            prop_assert_eq!(lhs_restricted.tuple_of(*o), rhs.tuple_of(*o));
        }
        let _ = Value::int(0);
    }
}

//! Server lifecycle tests for the wire front end (`core::enforce::net`,
//! `migctl serve`/`client`):
//!
//! * concurrent clients with interleaved violations get correct
//!   per-connection replies;
//! * graceful drain answers every in-flight ticket before the socket
//!   closes;
//! * a kill → `--recover` → re-serve round trip is byte-identical
//!   (driven through the real `migctl` binary over a real socket);
//! * the worked session in `docs/PROTOCOL.md` is executed verbatim —
//!   the protocol document cannot drift from the server.

use migratory::core::enforce::net::{self, ServerConfig};
use migratory::core::enforce::{ResiduePolicy, ShardedMonitor, Wal};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{parse_transactions, Assignment, TransactionSchema};
use migratory::model::text::parse_schema;
use migratory::model::Schema;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// A synchronous wire client: one reply read per request written.
struct Client {
    writer: TcpStream,
    replies: std::io::Lines<BufReader<TcpStream>>,
}

impl Client {
    fn connect(addr: impl std::net::ToSocketAddrs) -> Client {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_nodelay(true).expect("nodelay");
        Client { writer: conn.try_clone().expect("clone"), replies: BufReader::new(conn).lines() }
    }

    fn send(&mut self, req: &str) {
        writeln!(self.writer, "{req}").expect("send");
    }

    fn recv(&mut self) -> String {
        self.replies.next().expect("a reply per request").expect("read reply")
    }

    fn ask(&mut self, req: &str) -> String {
        self.send(req);
        self.recv()
    }

    /// Read every remaining line until the server closes the socket.
    fn drain_to_eof(self) -> Vec<String> {
        self.replies.map(|l| l.expect("read reply")).collect()
    }
}

/// Three independent root classes (3 components → 3 shards/lanes).
fn multi_schema() -> Schema {
    parse_schema(
        r"
        schema Fleet {
          class R0 { K0 }
          class S0 isa R0 { }
          class R1 { K1 }
          class S1 isa R1 { }
          class R2 { K2 }
          class S2 isa R2 { }
        }",
    )
    .expect("schema parses")
}

fn multi_transactions(s: &Schema) -> TransactionSchema {
    parse_transactions(
        s,
        r"
        transaction Mk0(x) { create(R0, { K0 = x }); }
        transaction Up0(x) { specialize(R0, S0, { K0 = x }, {}); }
        transaction Mk1(x) { create(R1, { K1 = x }); }
        transaction Mk2(x) { create(R2, { K2 = x }); }
    ",
    )
    .expect("transactions validate")
}

// ---------------------------------------------------------------------
// Concurrent clients with interleaved violations
// ---------------------------------------------------------------------

/// Three concurrent connections — two streams of conforming creations
/// in different components, one stream of guaranteed violators into the
/// first component's lane — each synchronously checking every reply on
/// its own connection. Violations interleave with admissions inside
/// shared blocks, and no reply ever lands on the wrong connection.
#[test]
fn concurrent_clients_get_correct_per_connection_replies() {
    let s = multi_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    // Specialization is forbidden: every Up0 violates, deterministically.
    let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
    let ts = multi_transactions(&s);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    const PER: usize = 120;
    let stats = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
            net::serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
        });
        // The protocol promises no ordering *between* connections, so
        // the violating client must not start until the seed object's
        // create is acknowledged — an `Up0` racing ahead of `Mk0(seed)`
        // would match nothing and be a legitimate no-op `ok`.
        let seeded = &std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|clients| {
            clients.spawn(|| {
                let mut c = Client::connect(addr);
                assert_eq!(c.ask("invoke Mk0(seed)"), "ok", "the violators' target object");
                seeded.store(true, std::sync::atomic::Ordering::SeqCst);
                for i in 0..PER {
                    assert_eq!(c.ask(&format!("invoke Mk0(a{i})")), "ok", "conforming create");
                }
            });
            clients.spawn(|| {
                let mut c = Client::connect(addr);
                for i in 0..PER {
                    assert_eq!(c.ask(&format!("invoke Mk1(b{i})")), "ok", "other component");
                }
            });
            clients.spawn(|| {
                let mut c = Client::connect(addr);
                while !seeded.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                for _ in 0..PER / 2 {
                    let reply = c.ask("invoke Up0(seed)");
                    assert!(
                        reply.starts_with("violation "),
                        "specialization must be rejected: {reply}"
                    );
                    assert!(reply.contains("[S0]"), "diagnostic names the role set: {reply}");
                }
            });
        });
        let mut c = Client::connect(addr);
        assert_eq!(c.ask("shutdown"), "ok draining");
        server.join().unwrap()
    });
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.admitted, 1 + 2 * PER);
    assert_eq!(stats.rejected, PER / 2);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.ingress.admitted, 1 + 2 * PER);
    assert_eq!(stats.ingress.rejected, PER / 2);
}

// ---------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------

/// A client pipelines a whole burst and a `shutdown` in one write —
/// every in-flight invoke must still be answered, in order, before the
/// server closes the socket.
#[test]
fn graceful_drain_answers_all_inflight_tickets() {
    let s = multi_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
    let ts = multi_transactions(&s);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    const BURST: usize = 500;
    let stats = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            // A tiny block size so the burst spans many admission
            // blocks and is genuinely in flight at shutdown.
            let config = ServerConfig {
                ingress: migratory::core::enforce::IngressConfig {
                    queue_capacity: 64,
                    max_block: 8,
                },
                ..Default::default()
            };
            let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
            net::serve(listener, &mut m, &ts, &config, |_| {}).unwrap()
        });
        let mut c = Client::connect(addr);
        let mut burst = String::new();
        for i in 0..BURST {
            burst.push_str(&format!("invoke Mk0(x{i})\n"));
        }
        burst.push_str("shutdown\n");
        c.writer.write_all(burst.as_bytes()).unwrap();
        let replies = c.drain_to_eof();
        // Every request answered before EOF, in order: BURST oks, then
        // the shutdown acknowledgement, then nothing.
        assert_eq!(replies.len(), BURST + 1, "every in-flight ticket answered before close");
        assert!(replies[..BURST].iter().all(|r| r == "ok"), "all creations admitted");
        assert_eq!(replies[BURST], "ok draining");
        server.join().unwrap()
    });
    assert_eq!(stats.admitted, BURST);
    assert_eq!(stats.ingress.admitted, BURST, "the monitor committed them all");
}

// ---------------------------------------------------------------------
// kill → --recover → re-serve, through the real binary
// ---------------------------------------------------------------------

const UNI_SCHEMA: &str = r#"
schema Uni {
  class PERSON { SSN, Name }
  class STUDENT isa PERSON { Major }
}
"#;

const UNI_TX: &str = r#"
transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
transaction St(x) { specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS" }); }
transaction Rm(x) { delete(PERSON, { SSN = x }); }
"#;

const UNI_INV: &str = "∅* [PERSON]* [STUDENT]* ∅*";

/// Spawn `migctl serve` on an ephemeral port and return (child, addr).
fn spawn_serve(dir: &std::path::Path, extra: &[&str]) -> (std::process::Child, String) {
    let schema = dir.join("uni.mig");
    let tx = dir.join("uni.sl");
    std::fs::write(&schema, UNI_SCHEMA).unwrap();
    std::fs::write(&tx, UNI_TX).unwrap();
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_migctl"))
        .arg("serve")
        .arg(&schema)
        .arg(&tx)
        .args(["--inventory", UNI_INV, "--addr", "127.0.0.1:0", "--shards", "2"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn migctl serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("serve prints its address").expect("read stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest.split_whitespace().next().expect("an address").to_owned();
        }
    };
    // Keep draining stdout so the server never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

/// What the acknowledged script must have produced: a fresh monitor fed
/// exactly the acked applications, in order.
fn expected_state(script: &[(&str, &str)]) -> Vec<u8> {
    let schema = parse_schema(UNI_SCHEMA).unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, UNI_INV).unwrap();
    let ts = parse_transactions(&schema, UNI_TX).unwrap();
    let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2);
    for (name, key) in script {
        m.try_apply(
            ts.get(name).unwrap(),
            &Assignment::new(vec![migratory::model::Value::str(key)]),
        )
        .expect("acked ops conform");
    }
    m.snapshot().encode()
}

/// Fold the WAL directory back into a monitor and return its canonical
/// state bytes.
fn recovered_state(dir: &std::path::Path) -> Vec<u8> {
    let schema = parse_schema(UNI_SCHEMA).unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, UNI_INV).unwrap();
    let (snap, tail) = Wal::load(dir).expect("load wal");
    ShardedMonitor::recover(&schema, &alphabet, &inv, PatternKind::All, 2, snap, tail)
        .expect("recover")
        .snapshot()
        .encode()
}

/// SIGKILL a serving `migctl` mid-stream, `--recover` into a second
/// server, keep going, drain gracefully — after every stage the durable
/// state must be byte-identical to a fresh monitor fed exactly the
/// acknowledged applications.
#[test]
fn kill_recover_reserve_roundtrip_is_byte_identical() {
    let dir = std::env::temp_dir().join(format!("migratory-net-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal_dir = dir.join("wal");

    // Stage 1: serve fresh, ack 40 creations + 8 specializations, kill
    // without any shutdown courtesy.
    let mut script: Vec<(&str, String)> = Vec::new();
    let (mut child, addr) =
        spawn_serve(&dir, &["--durable", wal_dir.to_str().unwrap(), "--checkpoint-every", "4"]);
    {
        let mut c = Client::connect(&*addr);
        for i in 0..40 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok");
            script.push(("Mk", key));
        }
        for i in 0..8 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke St({key})")), "ok");
            script.push(("St", key));
        }
    }
    child.kill().expect("SIGKILL the server");
    child.wait().expect("reap");

    // Everything acknowledged before the kill is durable — and nothing
    // else: the folded chain + tail equals a monitor fed exactly the
    // acked script.
    let script_refs: Vec<(&str, &str)> = script.iter().map(|(n, k)| (*n, k.as_str())).collect();
    assert_eq!(
        recovered_state(&wal_dir),
        expected_state(&script_refs),
        "stage 1: recovered state must be byte-identical to the acked history"
    );

    // Stage 2: re-serve with --recover, keep working, drain gracefully.
    let (mut child, addr) = spawn_serve(
        &dir,
        &["--durable", wal_dir.to_str().unwrap(), "--recover", "--checkpoint-every", "4"],
    );
    {
        let mut c = Client::connect(&*addr);
        for i in 40..52 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok");
            script.push(("Mk", key));
        }
        // The pre-crash history constrains the resumed run: o0 is a
        // STUDENT, so deleting and re-creating under [PERSON]* after
        // [STUDENT]* would violate — the monitor remembers.
        let reply = c.ask("invoke Rm(k0)");
        assert_eq!(reply, "ok");
        script.push(("Rm", "k0".to_owned()));
        assert_eq!(c.ask("shutdown"), "ok draining");
    }
    let status = child.wait().expect("server drains and exits");
    assert!(status.success(), "graceful shutdown exits cleanly");

    let script_refs: Vec<(&str, &str)> = script.iter().map(|(n, k)| (*n, k.as_str())).collect();
    assert_eq!(
        recovered_state(&wal_dir),
        expected_state(&script_refs),
        "stage 2: the re-served state must be byte-identical to the full acked history"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Connection supervision: idle timeout, quotas, cap, auth
// ---------------------------------------------------------------------

/// A stalled peer is reaped by the idle timeout with one error reply,
/// while a concurrent well-behaved connection's FIFO is undisturbed.
#[test]
fn idle_timeout_reaps_stalled_peer_without_disturbing_others() {
    let s = multi_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
    let ts = multi_transactions(&s);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stats = std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let config = ServerConfig {
                idle_timeout: Some(std::time::Duration::from_millis(150)),
                ..Default::default()
            };
            let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
            net::serve(listener, &mut m, &ts, &config, |_| {}).unwrap()
        });
        let stalled = Client::connect(addr);
        let mut active = Client::connect(addr);
        // The active connection works, in order, for well past the idle
        // timeout — each of its requests resets its own clock.
        for i in 0..30 {
            assert_eq!(active.ask(&format!("invoke Mk0(a{i})")), "ok", "survivor keeps FIFO");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let replies = stalled.drain_to_eof();
        assert_eq!(replies.len(), 1, "one reaping error, then EOF: {replies:?}");
        assert!(
            replies[0].starts_with("error idle timeout after"),
            "the peer is told why: {}",
            replies[0]
        );
        assert_eq!(active.ask("invoke Mk0(tail)"), "ok", "survivor unaffected by the reap");
        assert_eq!(active.ask("shutdown"), "ok draining");
        server.join().unwrap()
    });
    assert_eq!(stats.admitted, 31);
    assert_eq!(stats.errors, 1, "the reap is the only error");
}

/// A stalled *binary-dialect* peer is reaped in its own dialect: the
/// unsolicited idle-timeout error arrives as a decodable error frame,
/// not a text line that would fail the client's magic-byte check.
#[test]
fn idle_timeout_reaps_binary_peer_in_binary_dialect() {
    use migratory::core::enforce::net::frame;
    let s = multi_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
    let ts = multi_transactions(&s);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let config = ServerConfig {
                idle_timeout: Some(std::time::Duration::from_millis(150)),
                ..Default::default()
            };
            let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
            net::serve(listener, &mut m, &ts, &config, |_| {}).unwrap()
        });
        let stalled = TcpStream::connect(addr).unwrap();
        let mut req = Vec::new();
        frame::encode_invoke_frame(&mut req, "Mk0", &[migratory::model::Value::str("bin")]);
        (&stalled).write_all(&req).unwrap();
        let mut reader = BufReader::new(stalled);
        let (kind, _) = frame::read_frame(&mut reader).expect("binary ok");
        assert_eq!(kind, frame::REP_OK);
        // Stall past the idle timeout: the reap must speak frames too.
        let (kind, payload) = frame::read_frame(&mut reader).expect("reap arrives as a frame");
        assert_eq!(kind, frame::REP_ERROR);
        assert!(
            String::from_utf8_lossy(&payload).starts_with("idle timeout after"),
            "the peer is told why: {payload:?}"
        );
        let mut ctl = Client::connect(addr);
        assert_eq!(ctl.ask("shutdown"), "ok draining");
        server.join().unwrap()
    });
}

/// A peer that exceeds its request quota mid-pipeline gets every
/// already-read request answered in order, then one quota error, then
/// EOF — and a fresh connection starts with a fresh quota.
#[test]
fn op_quota_tears_down_peer_with_inflight_answered() {
    let s = multi_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
    let ts = multi_transactions(&s);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let config = ServerConfig { max_conn_ops: 3, ..Default::default() };
            let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
            net::serve(listener, &mut m, &ts, &config, |_| {}).unwrap()
        });
        let mut c = Client::connect(addr);
        let mut burst = String::new();
        for i in 0..6 {
            burst.push_str(&format!("invoke Mk0(q{i})\n"));
        }
        c.writer.write_all(burst.as_bytes()).unwrap();
        let replies = c.drain_to_eof();
        assert_eq!(replies.len(), 4, "3 in-flight answers + the quota error: {replies:?}");
        assert!(replies[..3].iter().all(|r| r == "ok"), "in-flight tickets answered: {replies:?}");
        assert_eq!(replies[3], "error connection request quota exceeded (3 requests); closing");
        let mut c2 = Client::connect(addr);
        assert_eq!(c2.ask("invoke Mk0(fresh)"), "ok", "quotas are per-connection");
        assert_eq!(c2.ask("shutdown"), "ok draining");
        server.join().unwrap();
    });
}

/// Same teardown contract for the byte quota: the line that crosses the
/// budget is refused, everything read before it was answered.
#[test]
fn byte_quota_tears_down_peer_with_inflight_answered() {
    let s = multi_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
    let ts = multi_transactions(&s);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            // Each "invoke Mk0(bN)\n" line is 15 bytes: 4 fit in 64,
            // the 5th crosses the budget.
            let config = ServerConfig { max_conn_bytes: 64, ..Default::default() };
            let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
            net::serve(listener, &mut m, &ts, &config, |_| {}).unwrap()
        });
        let mut c = Client::connect(addr);
        let mut burst = String::new();
        for i in 0..6 {
            burst.push_str(&format!("invoke Mk0(b{i})\n"));
        }
        c.writer.write_all(burst.as_bytes()).unwrap();
        let replies = c.drain_to_eof();
        assert_eq!(replies.len(), 5, "4 in-flight answers + the quota error: {replies:?}");
        assert!(replies[..4].iter().all(|r| r == "ok"), "in-flight tickets answered: {replies:?}");
        assert_eq!(replies[4], "error connection byte quota exceeded (64 bytes); closing");
        let mut c2 = Client::connect(addr);
        assert_eq!(c2.ask("shutdown"), "ok draining");
        server.join().unwrap();
    });
}

/// Excess sockets beyond the connection cap are refused at accept with
/// one error line; the live connection is untouched.
#[test]
fn connection_cap_refuses_excess_sockets() {
    let s = multi_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
    let ts = multi_transactions(&s);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let config = ServerConfig { max_connections: 1, ..Default::default() };
            let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
            net::serve(listener, &mut m, &ts, &config, |_| {}).unwrap()
        });
        let mut keeper = Client::connect(addr);
        // A round trip guarantees the keeper is registered before the
        // excess socket races it to the accept loop.
        assert_eq!(keeper.ask("ping"), "ok pong");
        let extra = Client::connect(addr);
        let replies = extra.drain_to_eof();
        assert_eq!(replies, vec!["error server at connection capacity (1)".to_owned()]);
        assert_eq!(keeper.ask("invoke Mk0(kept)"), "ok", "the live connection is untouched");
        assert_eq!(keeper.ask("shutdown"), "ok draining");
        server.join().unwrap();
    });
}

/// With a shared secret configured, nothing but the correct handshake
/// is served — wrong verb and wrong token both disconnect after one
/// uninformative error; the right token unlocks every verb.
#[test]
fn auth_gate_refuses_until_handshake() {
    let s = multi_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    let inv = Inventory::parse_init(&s, &a, "∅* [R0]* ∅*").unwrap();
    let ts = multi_transactions(&s);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let config = ServerConfig { auth: Some("sesame".to_owned()), ..Default::default() };
            let mut m = ShardedMonitor::new(&s, &a, &inv, PatternKind::All, 3);
            net::serve(listener, &mut m, &ts, &config, |_| {}).unwrap()
        });
        let mut c = Client::connect(addr);
        c.send("invoke Mk0(x)");
        let replies = c.drain_to_eof();
        assert_eq!(
            replies,
            vec!["error authentication required (send `auth <token>` first)".to_owned()],
            "an unauthed verb is refused and disconnected"
        );
        let mut c = Client::connect(addr);
        c.send("auth wrong");
        let replies = c.drain_to_eof();
        assert_eq!(replies.len(), 1, "{replies:?}");
        assert!(
            replies[0].starts_with("error authentication required"),
            "a wrong token gets the same uninformative refusal: {}",
            replies[0]
        );
        let mut c = Client::connect(addr);
        assert_eq!(c.ask("auth sesame"), "ok authed");
        assert_eq!(c.ask("ping"), "ok pong");
        assert_eq!(c.ask("invoke Mk0(in)"), "ok");
        assert_eq!(c.ask("auth sesame"), "ok authed", "re-auth is a harmless no-op");
        assert_eq!(c.ask("shutdown"), "ok draining");
        server.join().unwrap();
    });
}

// ---------------------------------------------------------------------
// Degraded read-only mode over the wire, through the real binary
// ---------------------------------------------------------------------

/// Persistent write-ahead failure mid-stream degrades the server to
/// read-only over the wire: acked work stays durable, later writes are
/// refused loudly, `stats` reports it, `rearm` clears it, and recovery
/// is byte-identical to exactly the acked prefix.
#[test]
fn persistent_append_failure_degrades_to_read_only() {
    let dir = std::env::temp_dir().join(format!("migratory-degraded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal_dir = dir.join("wal");
    let (mut child, addr) = spawn_serve(
        &dir,
        &[
            "--durable",
            wal_dir.to_str().unwrap(),
            "--max-block",
            "1", // one op per block: WAL appends are deterministic
            "--retries",
            "1",
            "--retry-backoff-ms",
            "1",
            "--inject",
            "append@4:persistent",
        ],
    );
    let mut script: Vec<(&str, String)> = Vec::new();
    {
        let mut c = Client::connect(&*addr);
        for i in 0..3 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok");
            script.push(("Mk", key));
        }
        // Append #4 fails and so does its one retry: the server refuses
        // rather than ack what never reached the log.
        let reply = c.ask("invoke Mk(k3)");
        assert!(reply.starts_with("error degraded (read-only):"), "{reply}");
        let reply = c.ask("invoke Mk(k4)");
        assert!(reply.starts_with("error degraded (read-only):"), "refused fast: {reply}");
        let st = c.ask("stats");
        assert!(st.contains("degraded=yes"), "stats surface the state: {st}");
        assert_eq!(c.ask("ping"), "ok pong", "read verbs still answer");
        assert_eq!(c.ask("rearm"), "ok armed");
        let st = c.ask("stats");
        assert!(st.contains("degraded=no"), "re-armed: {st}");
        assert_eq!(c.ask("shutdown"), "ok draining");
    }
    let status = child.wait().expect("server drains and exits");
    assert!(status.success(), "a degraded run still drains cleanly");
    let script_refs: Vec<(&str, &str)> = script.iter().map(|(n, k)| (*n, k.as_str())).collect();
    assert_eq!(
        recovered_state(&wal_dir),
        expected_state(&script_refs),
        "the degraded refusals left no trace — only acked ops are durable"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Online redefinition under live traffic, through the real binary
// ---------------------------------------------------------------------

/// The tightened inventory a mid-stream `redefine` swaps in: students
/// are no longer admissible, so every pre-existing STUDENT cohort is
/// residue.
const UNI_NEXT_INV: &str = "∅* [PERSON]* ∅*";

/// What the acked script must have produced when a redefinition sits
/// between its two halves: a fresh monitor fed the pre-redefine ops,
/// redefined under quarantine, then fed the post-redefine ops.
fn expected_redefined_state(pre: &[(&str, &str)], post: &[(&str, &str)]) -> Vec<u8> {
    let schema = parse_schema(UNI_SCHEMA).unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, UNI_INV).unwrap();
    let next = Inventory::parse_init(&schema, &alphabet, UNI_NEXT_INV).unwrap();
    let ts = parse_transactions(&schema, UNI_TX).unwrap();
    let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2);
    for (name, key) in pre {
        m.try_apply(
            ts.get(name).unwrap(),
            &Assignment::new(vec![migratory::model::Value::str(key)]),
        )
        .expect("acked pre-redefine ops conform");
    }
    let out = m.redefine(&next, ResiduePolicy::Quarantine).expect("the oracle redefinition admits");
    assert_eq!((out.epoch, out.residue, out.quarantined), (1, 2, 2), "two students are residue");
    for (name, key) in post {
        m.try_apply(
            ts.get(name).unwrap(),
            &Assignment::new(vec![migratory::model::Value::str(key)]),
        )
        .expect("acked post-redefine ops conform");
    }
    m.snapshot().encode()
}

/// The tentpole end to end, through the real binary: serve durably,
/// push mixed traffic, `redefine` mid-stream (residue quoted on the
/// wire), keep going under the new constraint, SIGKILL, `--recover`
/// into a second server that resumes at the swapped epoch — with the
/// post-upgrade violation stamped by the new automaton — and after a
/// graceful drain the durable state is byte-identical to an oracle that
/// replayed exactly the acked ops around an in-memory redefinition.
#[test]
fn redefine_under_live_traffic_survives_kill_and_recover() {
    let dir = std::env::temp_dir().join(format!("migratory-net-redefine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal_dir = dir.join("wal");

    // Stage 1: serve fresh; six persons, two of whom become students
    // (conforming under the base inventory), then tighten the
    // inventory online and keep working under epoch 1.
    let mut pre: Vec<(&str, String)> = Vec::new();
    let mut post: Vec<(&str, String)> = Vec::new();
    let (mut child, addr) =
        spawn_serve(&dir, &["--durable", wal_dir.to_str().unwrap(), "--checkpoint-every", "4"]);
    {
        let mut c = Client::connect(&*addr);
        for i in 0..6 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok");
            pre.push(("Mk", key));
        }
        for i in 0..2 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke St({key})")), "ok");
            pre.push(("St", key));
        }
        // The barrier op itself: both student cohorts are residue and,
        // under quarantine, exempt from further checking.
        assert_eq!(c.ask(&format!("redefine quarantine {UNI_NEXT_INV}")), "ok epoch=1 residue=2");
        // Specializing a plain person now violates — and the diagnostic
        // is stamped with the post-swap epoch.
        let reply = c.ask("invoke St(k2)");
        assert!(reply.starts_with("violation "), "students are outlawed at epoch 1: {reply}");
        assert!(reply.contains("[STUDENT]"), "diagnostic names the offending role: {reply}");
        assert!(reply.ends_with("[epoch 1]"), "diagnostic quotes the new automaton: {reply}");
        // Conforming traffic keeps flowing under the new constraint.
        for i in 6..8 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok");
            post.push(("Mk", key));
        }
        let st = c.ask("stats");
        assert!(
            st.ends_with("epoch=1 redefines=1 quarantined=2"),
            "stats surface the evolution state: {st}"
        );
    }
    child.kill().expect("SIGKILL the server");
    child.wait().expect("reap");

    // The redefinition was logged write-ahead: folding the log into a
    // monitor seeded with the *base* inventory replays the swap and is
    // byte-identical to the oracle.
    let pre_refs: Vec<(&str, &str)> = pre.iter().map(|(n, k)| (*n, k.as_str())).collect();
    let post_refs: Vec<(&str, &str)> = post.iter().map(|(n, k)| (*n, k.as_str())).collect();
    assert_eq!(
        recovered_state(&wal_dir),
        expected_redefined_state(&pre_refs, &post_refs),
        "stage 1: the killed server's log replays the redefinition byte-identically"
    );

    // Stage 2: `--recover` hands the *base* inventory to a second
    // server; the log brings it to epoch 1, where the new constraint
    // keeps being enforced.
    let (mut child, addr) = spawn_serve(
        &dir,
        &["--durable", wal_dir.to_str().unwrap(), "--recover", "--checkpoint-every", "4"],
    );
    {
        let mut c = Client::connect(&*addr);
        let st = c.ask("stats");
        assert!(
            st.ends_with("epoch=1 redefines=1 quarantined=2"),
            "the recovered server resumes at the swapped epoch: {st}"
        );
        let reply = c.ask("invoke St(k3)");
        assert!(reply.starts_with("violation "), "epoch 1 survived the crash: {reply}");
        assert!(reply.ends_with("[epoch 1]"), "post-recovery diagnostics quote epoch 1: {reply}");
        let key = "k8".to_owned();
        assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok");
        post.push(("Mk", key));
        assert_eq!(c.ask("shutdown"), "ok draining");
    }
    let status = child.wait().expect("server drains and exits");
    assert!(status.success(), "graceful shutdown exits cleanly");

    let post_refs: Vec<(&str, &str)> = post.iter().map(|(n, k)| (*n, k.as_str())).collect();
    assert_eq!(
        recovered_state(&wal_dir),
        expected_redefined_state(&pre_refs, &post_refs),
        "stage 2: the full acked history around the redefinition is byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// docs/PROTOCOL.md conformance
// ---------------------------------------------------------------------

/// Extract the first fenced code block labelled `lang` from markdown.
fn fenced_block(doc: &str, lang: &str) -> String {
    let fence = format!("```{lang}\n");
    let start =
        doc.find(&fence).unwrap_or_else(|| panic!("docs/PROTOCOL.md has no ```{lang} block"))
            + fence.len();
    let end = doc[start..].find("```").expect("unterminated fence") + start;
    doc[start..end].to_owned()
}

/// Every constant § Binary framing of `docs/PROTOCOL.md` states —
/// magic, header size, payload cap, request and reply kinds, the
/// oversized-frame refusal — is derived here from
/// `enforce::net::frame` itself, so the normative spec cannot drift
/// from the codec.
#[test]
fn binary_framing_spec_matches_the_implementation() {
    use migratory::core::enforce::net::frame;
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/PROTOCOL.md"))
        .expect("docs/PROTOCOL.md exists");
    let start = doc.find("## Binary framing").expect("doc has a Binary framing section");
    let spec = &doc[start..];
    let spec = &spec[..spec[3..].find("\n## ").map_or(spec.len(), |i| i + 3)];
    let claims = [
        format!("always {:#04X}", frame::MAGIC),
        format!("{}-byte header", frame::HEADER_LEN),
        format!("capped at **{}**", frame::MAX_PAYLOAD),
        format!("exceeds {} bytes", frame::MAX_PAYLOAD),
        format!("**`{:#04x}` (invoke)**", frame::REQ_INVOKE),
        format!("**`{:#04x}` (redefine)**", frame::REQ_REDEFINE),
        format!("**`{:#04x}` (query)**", frame::REQ_QUERY),
        format!("**`{:#04x}`** = `ok`", frame::REP_OK),
        format!("**`{:#04x}`** = `violation`", frame::REP_VIOLATION),
        format!("**`{:#04x}`** = `error`", frame::REP_ERROR),
    ];
    for claim in &claims {
        assert!(
            spec.contains(claim.as_str()),
            "docs/PROTOCOL.md § Binary framing drifted from enforce::net::frame: \
             expected the section to state `{claim}`"
        );
    }
}

/// Execute the worked session of `docs/PROTOCOL.md` verbatim: the
/// schema, transactions, inventory and every `>`/`<` exchange come from
/// the document, so the spec cannot drift from the server.
#[test]
fn protocol_document_session_is_live() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/PROTOCOL.md"))
        .expect("docs/PROTOCOL.md exists");
    let schema = parse_schema(&fenced_block(&doc, "schema")).expect("doc schema parses");
    let ts = parse_transactions(&schema, &fenced_block(&doc, "transactions"))
        .expect("doc transactions validate");
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, fenced_block(&doc, "inventory").trim())
        .expect("doc inventory parses");
    let session = fenced_block(&doc, "session");

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2);
            net::serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
        });
        let mut c = Client::connect(addr);
        let mut pending_request: Option<String> = None;
        for line in session.lines() {
            if let Some(req) = line.strip_prefix("> ") {
                assert!(pending_request.is_none(), "two requests without a reply: {req}");
                c.send(req);
                pending_request = Some(req.to_owned());
            } else if let Some(expected) = line.strip_prefix("< ") {
                let req = pending_request.take().expect("a reply without a request");
                let actual = c.recv();
                assert_eq!(actual, expected, "reply to `{req}` drifted from docs/PROTOCOL.md");
            }
        }
        assert!(pending_request.is_none(), "session ends with an unanswered request");
        // `quit` ended the session's connection; stop the server.
        let mut c = Client::connect(addr);
        assert_eq!(c.ask("shutdown"), "ok draining");
        server.join().unwrap();
    });
}

//! Failure-injection tests for every text front end: arbitrary input must
//! produce `Err`, never a panic, and valid output of the pretty-printers
//! must re-parse to the same meaning.

use migratory::automata::{parse_regex, Dfa, Nfa, Regex};
use migratory::core::RoleAlphabet;
use migratory::lang::parse_transactions;
use migratory::lang::pretty::{schema_to_text, transaction_to_text};
use migratory::model::schema::university_schema;
use migratory::model::text::parse_schema;
use proptest::prelude::*;

/// A character soup biased toward the grammars' own tokens.
fn soup() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9_{}()\\[\\]*+?|=:;,!<>%∅∪λ \"\\-\n]{0,80}")
        .expect("valid generator regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schema_parser_never_panics(src in soup()) {
        let _ = parse_schema(&src);
    }

    #[test]
    fn transaction_parser_never_panics(src in soup()) {
        let schema = university_schema();
        let _ = parse_transactions(&schema, &src);
    }

    #[test]
    fn regex_parser_never_panics(src in soup()) {
        let schema = university_schema();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let _ = alphabet.parse_regex(&schema, &src);
    }
}

/// Random regex ASTs over a 4-symbol alphabet.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![Just(Regex::Epsilon), (0u32..4).prop_map(Regex::Sym),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::union),
            inner.prop_map(Regex::star),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse is the identity up to language equivalence.
    #[test]
    fn regex_display_parse_roundtrip(r in regex_strategy()) {
        let text = r.to_string();
        let resolve = |name: &str| -> Option<u32> {
            name.strip_prefix('s').and_then(|d| d.parse().ok()).filter(|&v| v < 4)
        };
        let back = parse_regex(&text, &resolve)
            .unwrap_or_else(|e| panic!("pretty output `{text}` failed to parse: {e}"));
        let d1 = Dfa::from_nfa(&Nfa::from_regex(&r, 4)).minimize();
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&back, 4)).minimize();
        prop_assert!(d1.equivalent(&d2), "`{text}` re-parsed to a different language");
    }
}

/// Pretty-printed transactions re-parse to identical ASTs, for sources
/// covering every operator and guard form.
#[test]
fn transaction_pretty_parse_roundtrip() {
    let schema = university_schema();
    let sources = [
        r#"transaction Mk(x, n) { create(PERSON, { SSN = x, Name = n }); }"#,
        r#"transaction Rm(x) { delete(PERSON, { SSN = x }); }"#,
        r#"transaction Up(x, y) { modify(PERSON, { SSN = x, Name != "z" }, { Name = y }); }"#,
        r#"transaction St(x) {
             specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
           }"#,
        r#"transaction Un(x) { generalize(STUDENT, { SSN = x }); }"#,
        r#"transaction Guarded(x) {
             when PERSON(SSN = x), !EMPLOYEE(SSN = x) ->
               specialize(PERSON, EMPLOYEE, { SSN = x }, { Salary = 0, WorksIn = "d" });
           }"#,
        r#"transaction Multi(x, y) {
             create(PERSON, { SSN = x, Name = "n" });
             when STUDENT() -> delete(PERSON, { SSN = y });
             modify(PERSON, { SSN = x }, { Name = y });
           }"#,
    ];
    for src in sources {
        let ts = parse_transactions(&schema, src).unwrap();
        let t = &ts.transactions()[0];
        let printed = transaction_to_text(&schema, t);
        let ts2 = parse_transactions(&schema, &printed)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{printed}"));
        assert_eq!(
            ts.transactions()[0],
            ts2.transactions()[0],
            "round trip changed the AST for\n{printed}"
        );
    }
}

/// The whole-schema printer round-trips through the parser as well.
#[test]
fn schema_text_roundtrip() {
    let schema = university_schema();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction A(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction B(x) {
          when PERSON(SSN = x) -> generalize(STUDENT, { SSN = x });
        }
    "#,
    )
    .unwrap();
    let printed = schema_to_text(&schema, &ts);
    let back = parse_transactions(&schema, &printed).unwrap();
    assert_eq!(ts.transactions(), back.transactions());
}

// ---------------------------------------------------------------------
// Wire grammar (`enforce::net`)
// ---------------------------------------------------------------------

use migratory::core::enforce::net::{self, ServerConfig};
use migratory::core::enforce::ShardedMonitor;
use migratory::core::{Inventory, PatternKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wire argument grammar returns `Err`, never panics.
    #[test]
    fn invocation_parser_never_panics(src in soup()) {
        let _ = net::parse_invocation(&src);
    }

    /// Byte-level mutations of valid invocations never panic either —
    /// the grammar must be byte-hostile, not just token-hostile.
    #[test]
    fn mutated_invocations_never_panic(
        pick in 0usize..4,
        flips in proptest::collection::vec((0usize..64, 0u16..256), 0..8),
    ) {
        const VALID: [&str; 4] = [
            r#"Mk(k1, "a name")"#,
            r#"St("quoted, with comma", 42)"#,
            "Rm(-17)",
            "Up(a, b, c, d)",
        ];
        let mut bytes = VALID[pick].as_bytes().to_vec();
        for (idx, b) in flips {
            let i = idx % bytes.len();
            bytes[i] = u8::try_from(b).expect("strategy range fits a byte");
        }
        let line = String::from_utf8_lossy(&bytes);
        let _ = net::parse_invocation(&line);
    }
}

/// Garbage over a live socket: every reply's first token is
/// `ok`/`violation`/`error`, a hostile connection never takes the
/// server down, and a fresh connection still gets clean service
/// afterwards. (CI runs this as its wire-fuzz smoke.)
#[test]
fn wire_soup_never_kills_the_server() {
    use std::io::{BufRead, BufReader, Write};
    let schema = university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2);
            net::serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
        });
        // A deterministic pile of hostile lines: truncations, splices,
        // reversals and byte noise around valid requests. None may start
        // with `quit`/`shutdown` — those would end the run early.
        let valid = ["invoke Mk(k)", "stats", "ping", "schema", r#"invoke Mk("q uo")"#];
        let mut lines: Vec<String> = Vec::new();
        for (i, v) in valid.iter().enumerate() {
            for cut in [1, v.len() / 2, v.len() - 1] {
                lines.push(v[..cut].to_owned());
            }
            lines.push(format!("{v}{v}"));
            lines.push(v.replace('(', "))((").replace(' ', "\t"));
            let mut twisted: Vec<u8> = v.bytes().rev().collect();
            let at = i % twisted.len();
            twisted[at] = 0xff_u8.wrapping_sub(i as u8);
            lines.push(String::from_utf8_lossy(&twisted).into_owned());
        }
        lines.extend(
            ["∅∪λ %!<>;;", "invoke", "invoke ", "auth", "rearm extra junk", "invoke Mk("]
                .map(str::to_owned),
        );
        let hostile = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = hostile.try_clone().unwrap();
        let mut replies = BufReader::new(hostile).lines();
        for line in &lines {
            let head = line.trim_start();
            assert!(
                !head.starts_with("quit") && !head.starts_with("shutdown"),
                "corpus bug: `{line}` would end the session"
            );
            writeln!(writer, "{line}").unwrap();
            if head.is_empty() || head.starts_with('#') {
                continue; // blanks and comments get no reply
            }
            let reply = replies.next().expect("a reply per request").expect("replies are UTF-8");
            let first = reply.split_whitespace().next().unwrap_or("");
            assert!(
                matches!(first, "ok" | "violation" | "error"),
                "unexpected reply `{reply}` to `{line}`"
            );
        }
        // Raw non-UTF-8 bytes end this connection cleanly…
        writer.write_all(&[0xc3, 0x28, 0xff, 0xfe, b'\n']).unwrap();
        writer.flush().unwrap();
        drop(writer);
        for _ in replies {} // drain to EOF: the server closed, not crashed
                            // …and a fresh connection still gets clean service.
        let fresh = std::net::TcpStream::connect(addr).unwrap();
        let mut w = fresh.try_clone().unwrap();
        let mut r = BufReader::new(fresh).lines();
        writeln!(w, "ping").unwrap();
        assert_eq!(r.next().unwrap().unwrap(), "ok pong");
        writeln!(w, "shutdown").unwrap();
        assert_eq!(r.next().unwrap().unwrap(), "ok draining");
        server.join().unwrap();
    });
}

// ---------------------------------------------------------------------
// Binary framing (`enforce::net::frame`)
// ---------------------------------------------------------------------

use migratory::core::enforce::net::frame;
use migratory::model::Value;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The frame scanner is total: any byte soup behind the magic byte
    /// yields `Incomplete`, `Oversized` or a bounded frame — never a
    /// panic, and never a frame larger than the buffer or the cap. The
    /// blocking client-side reader must be as hostile-input-proof.
    #[test]
    fn frame_scanner_never_panics(soup in proptest::collection::vec(0u16..256, 0..64)) {
        let mut bytes = vec![frame::MAGIC];
        bytes.extend(soup.iter().map(|&b| u8::try_from(b).expect("strategy range fits a byte")));
        match frame::scan(&bytes) {
            frame::Scan::Frame { payload_len, .. } => {
                prop_assert!(frame::HEADER_LEN + payload_len <= bytes.len());
                prop_assert!(payload_len as u64 <= u64::from(frame::MAX_PAYLOAD));
            }
            frame::Scan::Oversized(len) => prop_assert!(len > frame::MAX_PAYLOAD),
            frame::Scan::Incomplete => {}
        }
        let _ = frame::read_frame(&mut &bytes[..]);
    }

    /// Every truncation of a valid frame scans `Incomplete` (the
    /// incremental accumulator keeps waiting), and byte-mutating the
    /// frame behind its magic byte panics neither the scanner nor the
    /// payload decoder.
    #[test]
    fn mutated_frames_never_panic(
        flips in proptest::collection::vec((1usize..256, 0u16..256), 0..8),
        cut in 1usize..256,
    ) {
        let mut bytes = Vec::new();
        frame::encode_invoke_frame(&mut bytes, "Mk", &[Value::int(7), Value::str("a name")]);
        let cut = cut % bytes.len();
        if cut > 0 {
            prop_assert_eq!(frame::scan(&bytes[..cut]), frame::Scan::Incomplete);
        }
        for (idx, b) in flips {
            let i = 1 + idx % (bytes.len() - 1);
            bytes[i] = u8::try_from(b).expect("strategy range fits a byte");
        }
        if let frame::Scan::Frame { payload_len, .. } = frame::scan(&bytes) {
            let payload = &bytes[frame::HEADER_LEN..frame::HEADER_LEN + payload_len];
            let mut r = migratory::model::codec::Reader::new(payload);
            let _ = migratory::lang::codec::decode_invoke(&mut r);
        }
    }
}

/// Hostile binary frames and text lines interleaved on one socket: each
/// request is answered in its own dialect, malformed payloads get
/// binary errors without ending the session, an oversized length prefix
/// tears down only its own connection — and the server keeps serving.
/// (CI runs this as the frame half of its wire-fuzz smoke.)
#[test]
fn mixed_dialect_soup_never_kills_the_server() {
    use std::io::{BufRead, BufReader, Read as _, Write};
    let schema = university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2);
            net::serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
        });
        // One pipelined burst interleaving both dialects, hostile frames
        // included. Replies come back in order, each in its request's
        // dialect.
        let mut req = Vec::new();
        req.extend_from_slice(b"ping\n");
        frame::encode_invoke_frame(&mut req, "Mk", &[Value::int(1)]);
        frame::encode(&mut req, 0x7f, b"???"); // unknown kind
        frame::encode(&mut req, frame::REQ_INVOKE, &[0xff, 0xff, 0x00]); // undecodable payload
        frame::encode_invoke_frame(&mut req, "Nope", &[]); // unknown transaction
        req.extend_from_slice(b"invoke Mk(2)\n");
        let conn = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        writer.write_all(&req).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok pong\n");
        let (kind, payload) = frame::read_frame(&mut reader).unwrap();
        assert_eq!((kind, payload.len()), (frame::REP_OK, 0), "valid frame is admitted");
        let (kind, payload) = frame::read_frame(&mut reader).unwrap();
        assert_eq!(kind, frame::REP_ERROR);
        assert!(
            String::from_utf8_lossy(&payload).contains("unknown frame kind"),
            "got {:?}",
            String::from_utf8_lossy(&payload)
        );
        let (kind, _) = frame::read_frame(&mut reader).unwrap();
        assert_eq!(kind, frame::REP_ERROR, "undecodable payload errors in-dialect");
        let (kind, payload) = frame::read_frame(&mut reader).unwrap();
        assert_eq!(kind, frame::REP_ERROR);
        assert!(String::from_utf8_lossy(&payload).contains("unknown transaction"));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok\n", "the session survives every hostile frame above");
        // An oversized length prefix is refused at the header — a binary
        // error reply, then teardown, before any payload accumulates.
        let mut bad = vec![frame::MAGIC, frame::REQ_INVOKE];
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        writer.write_all(&bad).unwrap();
        writer.flush().unwrap();
        let (kind, payload) = frame::read_frame(&mut reader).unwrap();
        assert_eq!(kind, frame::REP_ERROR);
        assert!(String::from_utf8_lossy(&payload).contains("exceeds"));
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "server closed the hostile connection");
        // …and a fresh connection still gets clean service.
        let fresh = std::net::TcpStream::connect(addr).unwrap();
        let mut w = fresh.try_clone().unwrap();
        let mut r = BufReader::new(fresh).lines();
        writeln!(w, "ping").unwrap();
        assert_eq!(r.next().unwrap().unwrap(), "ok pong");
        writeln!(w, "shutdown").unwrap();
        assert_eq!(r.next().unwrap().unwrap(), "ok draining");
        let stats = server.join().unwrap();
        assert_eq!(stats.admitted, 2, "Mk(1) binary + Mk(2) text");
        assert_eq!(stats.connections, 2);
    });
}

/// Error values (not panics) for representative malformed inputs, each
/// with a position or message a user can act on.
#[test]
fn malformed_inputs_report_errors() {
    let schema = university_schema();
    for bad in [
        "transaction",
        "transaction X { create(PERSON, { SSN = 1 }",
        "transaction X() { create(NOPE, {}); }",
        "transaction X() { modify(PERSON, { Bogus = 1 }, {}); }",
        "transaction X() { specialize(PERSON, PERSON, {}, {}); }",
        "transaction X(x) { when -> delete(PERSON, {}); }",
    ] {
        let err = parse_transactions(&schema, bad).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
    for bad in ["schema", "schema S { class C", "schema S { class C { A } class C { B } }"] {
        let err = parse_schema(bad).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}

// ---------------------------------------------------------------------
// Constraint evolution (`redefine`) payloads, both dialects
// ---------------------------------------------------------------------

use migratory::core::enforce::ResiduePolicy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The inventory source parser behind `redefine` is total: any soup
    /// yields `Err`, never a panic. (This is the exact server-side parse
    /// of a text `redefine` line's source operand.)
    #[test]
    fn inventory_parser_never_panics(src in soup()) {
        let schema = university_schema();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let _ = Inventory::parse_init(&schema, &alphabet, &src);
    }

    /// The binary `redefine` payload decode chain — policy byte, UTF-8
    /// check, inventory parse — never panics on arbitrary payloads.
    #[test]
    fn binary_redefine_payload_never_panics(
        payload in proptest::collection::vec(0u16..256, 0..256),
    ) {
        let schema = university_schema();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let bytes: Vec<u8> =
            payload.iter().map(|&b| u8::try_from(b).expect("strategy range fits a byte")).collect();
        if let Some((pb, src)) = bytes.split_first() {
            let _ = ResiduePolicy::from_byte(*pb);
            if let Ok(text) = std::str::from_utf8(src) {
                let _ = Inventory::parse_init(&schema, &alphabet, text);
            }
        }
    }
}

/// Hostile `redefine` payloads in both dialects against a live server:
/// malformed verbs, unknown policies, unparsable and oversized
/// inventory sources, non-UTF-8 and truncated binary frames — every
/// one refused in its own dialect, none degrading the server, and
/// well-formed redefinitions still admitted afterwards.
#[test]
fn redefine_soup_never_kills_the_server() {
    use std::io::{BufRead, BufReader, Read as _, Write};
    let schema = university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2);
            net::serve(listener, &mut m, &ts, &ServerConfig::default(), |_| {}).unwrap()
        });
        let conn = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = conn.try_clone().unwrap();
        let mut reader = BufReader::new(conn);
        let text = |w: &mut std::net::TcpStream, r: &mut BufReader<_>, line: &str| {
            writeln!(w, "{line}").unwrap();
            let mut reply = String::new();
            r.read_line(&mut reply).unwrap();
            reply
        };
        // Text dialect: every malformed form is an `error`, never a
        // dropped connection.
        let big_class = format!("[{}]*", "A".repeat(4096));
        for (line, expect) in [
            ("redefine".to_owned(), "usage: redefine"),
            ("redefine quarantine".to_owned(), "usage: redefine"),
            ("redefine sideways ∅*".to_owned(), "unknown residue policy"),
            ("redefine quarantine ((((".to_owned(), "redefine refused"),
            ("redefine quarantine [NOSUCHCLASS]*".to_owned(), "redefine refused"),
            (format!("redefine quarantine {big_class}"), "redefine refused"),
        ] {
            let reply = text(&mut writer, &mut reader, &line);
            assert!(reply.starts_with("error "), "`{line}` got `{reply}`");
            assert!(reply.contains(expect), "`{line}` got `{reply}`");
        }
        // The server still serves and still admits a valid redefinition.
        assert_eq!(text(&mut writer, &mut reader, "invoke Mk(1)"), "ok\n");
        assert_eq!(
            text(&mut writer, &mut reader, "redefine certify-and-reset ∅* [PERSON]* ∅*"),
            "ok epoch=1 residue=0\n"
        );
        // Binary dialect: malformed payloads get binary errors on the
        // same (mixed-dialect) connection.
        let frame_err = |w: &mut std::net::TcpStream,
                         r: &mut BufReader<std::net::TcpStream>,
                         payload: &[u8],
                         expect: &str| {
            let mut req = Vec::new();
            frame::encode(&mut req, frame::REQ_REDEFINE, payload);
            w.write_all(&req).unwrap();
            let (kind, reply) = frame::read_frame(r).unwrap();
            let reply = String::from_utf8_lossy(&reply).into_owned();
            assert_eq!(kind, frame::REP_ERROR, "payload {payload:?} got `{reply}`");
            assert!(reply.contains(expect), "payload {payload:?} got `{reply}`");
        };
        frame_err(&mut writer, &mut reader, b"", "empty redefine payload");
        frame_err(&mut writer, &mut reader, &[9, b'*'], "unknown residue policy");
        frame_err(&mut writer, &mut reader, &[0, 0xc3, 0x28, 0xff], "UTF-8");
        frame_err(
            &mut writer,
            &mut reader,
            "\u{0}\u{2205}* [PERSON".as_bytes(),
            "redefine refused",
        );
        let huge = format!("\u{1}[{}]*", "B".repeat(60_000));
        frame_err(&mut writer, &mut reader, huge.as_bytes(), "redefine refused");
        // A well-formed binary redefinition is still admitted.
        let mut req = Vec::new();
        frame::encode_redefine_frame(
            &mut req,
            ResiduePolicy::Quarantine,
            "∅* ([PERSON] ∪ [STUDENT])* ∅*",
        );
        writer.write_all(&req).unwrap();
        let (kind, reply) = frame::read_frame(&mut reader).unwrap();
        assert_eq!(kind, frame::REP_OK);
        assert_eq!(String::from_utf8_lossy(&reply), "epoch=2 residue=0");
        assert_eq!(text(&mut writer, &mut reader, "invoke Mk(2)"), "ok\n");
        let stats = text(&mut writer, &mut reader, "stats");
        assert!(stats.contains("degraded=no"), "hostile payloads degraded the server: {stats}");
        assert!(stats.contains("epoch=2 redefines=2 quarantined=0"), "{stats}");
        // A truncated binary redefine frame never dispatches: half-close
        // with an incomplete frame buffered tears down only this
        // connection.
        let mut partial = Vec::new();
        frame::encode_redefine_frame(&mut partial, ResiduePolicy::Quarantine, "∅* [PERSON]* ∅*");
        writer.write_all(&partial[..partial.len() - 5]).unwrap();
        writer.flush().unwrap();
        writer.shutdown(std::net::Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "truncated frame must not produce a reply");
        // An oversized redefine length prefix is refused at the header.
        let over = std::net::TcpStream::connect(addr).unwrap();
        let mut ow = over.try_clone().unwrap();
        let mut or = BufReader::new(over);
        let mut bad = vec![frame::MAGIC, frame::REQ_REDEFINE];
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        ow.write_all(&bad).unwrap();
        ow.flush().unwrap();
        let (kind, reply) = frame::read_frame(&mut or).unwrap();
        assert_eq!(kind, frame::REP_ERROR);
        assert!(String::from_utf8_lossy(&reply).contains("exceeds"));
        let mut rest = Vec::new();
        or.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "server closed the oversized connection");
        // …and a fresh connection still gets clean service at epoch 2.
        let fresh = std::net::TcpStream::connect(addr).unwrap();
        let mut w = fresh.try_clone().unwrap();
        let mut r = BufReader::new(fresh).lines();
        writeln!(w, "ping").unwrap();
        assert_eq!(r.next().unwrap().unwrap(), "ok pong");
        writeln!(w, "shutdown").unwrap();
        assert_eq!(r.next().unwrap().unwrap(), "ok draining");
        let stats = server.join().unwrap();
        assert_eq!(stats.admitted, 2, "Mk(1) text + Mk(2) text");
        assert_eq!(stats.connections, 3);
    });
}

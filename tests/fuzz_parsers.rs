//! Failure-injection tests for every text front end: arbitrary input must
//! produce `Err`, never a panic, and valid output of the pretty-printers
//! must re-parse to the same meaning.

use migratory::automata::{parse_regex, Dfa, Nfa, Regex};
use migratory::core::RoleAlphabet;
use migratory::lang::parse_transactions;
use migratory::lang::pretty::{schema_to_text, transaction_to_text};
use migratory::model::schema::university_schema;
use migratory::model::text::parse_schema;
use proptest::prelude::*;

/// A character soup biased toward the grammars' own tokens.
fn soup() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9_{}()\\[\\]*+?|=:;,!<>%∅∪λ \"\\-\n]{0,80}")
        .expect("valid generator regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schema_parser_never_panics(src in soup()) {
        let _ = parse_schema(&src);
    }

    #[test]
    fn transaction_parser_never_panics(src in soup()) {
        let schema = university_schema();
        let _ = parse_transactions(&schema, &src);
    }

    #[test]
    fn regex_parser_never_panics(src in soup()) {
        let schema = university_schema();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let _ = alphabet.parse_regex(&schema, &src);
    }
}

/// Random regex ASTs over a 4-symbol alphabet.
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![Just(Regex::Epsilon), (0u32..4).prop_map(Regex::Sym),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Regex::union),
            inner.prop_map(Regex::star),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse is the identity up to language equivalence.
    #[test]
    fn regex_display_parse_roundtrip(r in regex_strategy()) {
        let text = r.to_string();
        let resolve = |name: &str| -> Option<u32> {
            name.strip_prefix('s').and_then(|d| d.parse().ok()).filter(|&v| v < 4)
        };
        let back = parse_regex(&text, &resolve)
            .unwrap_or_else(|e| panic!("pretty output `{text}` failed to parse: {e}"));
        let d1 = Dfa::from_nfa(&Nfa::from_regex(&r, 4)).minimize();
        let d2 = Dfa::from_nfa(&Nfa::from_regex(&back, 4)).minimize();
        prop_assert!(d1.equivalent(&d2), "`{text}` re-parsed to a different language");
    }
}

/// Pretty-printed transactions re-parse to identical ASTs, for sources
/// covering every operator and guard form.
#[test]
fn transaction_pretty_parse_roundtrip() {
    let schema = university_schema();
    let sources = [
        r#"transaction Mk(x, n) { create(PERSON, { SSN = x, Name = n }); }"#,
        r#"transaction Rm(x) { delete(PERSON, { SSN = x }); }"#,
        r#"transaction Up(x, y) { modify(PERSON, { SSN = x, Name != "z" }, { Name = y }); }"#,
        r#"transaction St(x) {
             specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
           }"#,
        r#"transaction Un(x) { generalize(STUDENT, { SSN = x }); }"#,
        r#"transaction Guarded(x) {
             when PERSON(SSN = x), !EMPLOYEE(SSN = x) ->
               specialize(PERSON, EMPLOYEE, { SSN = x }, { Salary = 0, WorksIn = "d" });
           }"#,
        r#"transaction Multi(x, y) {
             create(PERSON, { SSN = x, Name = "n" });
             when STUDENT() -> delete(PERSON, { SSN = y });
             modify(PERSON, { SSN = x }, { Name = y });
           }"#,
    ];
    for src in sources {
        let ts = parse_transactions(&schema, src).unwrap();
        let t = &ts.transactions()[0];
        let printed = transaction_to_text(&schema, t);
        let ts2 = parse_transactions(&schema, &printed)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{printed}"));
        assert_eq!(
            ts.transactions()[0],
            ts2.transactions()[0],
            "round trip changed the AST for\n{printed}"
        );
    }
}

/// The whole-schema printer round-trips through the parser as well.
#[test]
fn schema_text_roundtrip() {
    let schema = university_schema();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction A(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction B(x) {
          when PERSON(SSN = x) -> generalize(STUDENT, { SSN = x });
        }
    "#,
    )
    .unwrap();
    let printed = schema_to_text(&schema, &ts);
    let back = parse_transactions(&schema, &printed).unwrap();
    assert_eq!(ts.transactions(), back.transactions());
}

/// Error values (not panics) for representative malformed inputs, each
/// with a position or message a user can act on.
#[test]
fn malformed_inputs_report_errors() {
    let schema = university_schema();
    for bad in [
        "transaction",
        "transaction X { create(PERSON, { SSN = 1 }",
        "transaction X() { create(NOPE, {}); }",
        "transaction X() { modify(PERSON, { Bogus = 1 }, {}); }",
        "transaction X() { specialize(PERSON, PERSON, {}, {}); }",
        "transaction X(x) { when -> delete(PERSON, {}); }",
    ] {
        let err = parse_transactions(&schema, bad).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
    for bad in ["schema", "schema S { class C", "schema S { class C { A } class C { B } }"] {
        let err = parse_schema(bad).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}

//! Oracle tests for the runtime inventory monitor (`core::enforce`).
//!
//! The monitor must commit *exactly* the longest prefix of a script whose
//! unmonitored run keeps every object's pattern of the enforced kind
//! inside the inventory at every step — no over-enforcement (rejecting a
//! run the constraint allows) and no under-enforcement (admitting a run
//! that produces a forbidden pattern). The oracle recomputes the
//! constraint from scratch with `core::pattern::observe`/`is_kind` over
//! the raw interpreter trace.

use migratory::core::enforce::Monitor;
use migratory::core::pattern::{is_kind, observe, pattern_of};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{parse_transactions, run, Assignment, Transaction, TransactionSchema};
use migratory::model::{schema::university_schema, Instance, Oid, Schema, Value};
use proptest::prelude::*;

fn uni_ts(s: &Schema) -> TransactionSchema {
    parse_transactions(
        s,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction Nm(x, n) { modify(PERSON, { SSN = x }, { Name = n }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        transaction Ga(x) {
          specialize(STUDENT, GRAD_ASSIST, { SSN = x },
                     { PcAppoint = 50, Salary = 1, WorksIn = "D" });
        }
        transaction Emp(x) {
          specialize(PERSON, EMPLOYEE, { SSN = x }, { Salary = 1, WorksIn = "D" });
        }
        transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
        transaction UnEmp(x) { generalize(EMPLOYEE, { SSN = x }); }
        transaction Rm(x) { delete(PERSON, { SSN = x }); }
    "#,
    )
    .unwrap()
}

/// One scripted step: a transaction name and its arguments.
#[derive(Clone, Debug)]
struct Step(&'static str, Vec<Value>);

fn step_strategy() -> impl Strategy<Value = Step> {
    let key = prop_oneof![Just("k1"), Just("k2"), Just("k3")];
    let name = prop_oneof![
        Just("Mk"),
        Just("St"),
        Just("Ga"),
        Just("Emp"),
        Just("UnSt"),
        Just("UnEmp"),
        Just("Rm"),
        Just("Nm"),
    ];
    (name, key, prop_oneof![Just("n"), Just("m")]).prop_map(|(t, k, n)| {
        if t == "Nm" {
            Step(t, vec![Value::str(k), Value::str(n)])
        } else {
            Step(t, vec![Value::str(k)])
        }
    })
}

const INVENTORIES: [&str; 6] = [
    "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]+ [PERSON]* ∅*",
    "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*",
    "∅* ([PERSON] ∪ [STUDENT])* ∅*",
    "∅* [PERSON]+ ∅",
    "∅ [PERSON]* [EMPLOYEE]* ∅*",
    "∅* [STUDENT]* [SE]* [EMPLOYEE]* ∅*",
];

/// Resolve the `[SE]` shorthand used above: role sets are written with
/// their minimal member classes, comma-separated.
fn parse_inventory(s: &Schema, a: &RoleAlphabet, src: &str) -> Inventory {
    let src = src.replace("[SE]", "[STUDENT, EMPLOYEE]");
    Inventory::parse_init(s, a, &src).unwrap()
}

/// Longest prefix of `script` whose raw run keeps all `kind` patterns in
/// the inventory at every step — the ground truth the monitor must match.
fn oracle_valid_prefix(
    s: &Schema,
    a: &RoleAlphabet,
    ts: &TransactionSchema,
    inv: &Inventory,
    kind: PatternKind,
    script: &[Step],
) -> usize {
    let empty = a.empty_symbol();
    let mut trace = vec![Instance::empty()];
    let steps: Vec<(&Transaction, Assignment)> = script
        .iter()
        .map(|Step(n, args)| (ts.get(n).unwrap(), Assignment::new(args.clone())))
        .collect();
    for (i, (t, args)) in steps.iter().enumerate() {
        let next = run(s, trace.last().unwrap(), t, args).unwrap();
        trace.push(next);
        // Objects 1..=script.len() cover every possible creation; a far
        // OID witnesses the never-created pattern ∅ⁱ.
        let mut oids: Vec<Oid> = (1..=script.len() as u64).map(Oid).collect();
        oids.push(Oid(1 << 40));
        for o in oids {
            let obs = observe(s, a, &trace, o);
            if is_kind(&obs, empty, kind) && !inv.contains(&pattern_of(&obs)) {
                return i;
            }
        }
    }
    script.len()
}

fn check_script(script: &[Step], inv_src: &str, kind: PatternKind) {
    let s = university_schema();
    let a = RoleAlphabet::new(&s, 0).unwrap();
    let ts = uni_ts(&s);
    let inv = parse_inventory(&s, &a, inv_src);

    let expected = oracle_valid_prefix(&s, &a, &ts, &inv, kind, script);

    let mut m = Monitor::new(&s, &a, &inv, kind);
    let pairs: Vec<(&Transaction, Assignment)> = script
        .iter()
        .map(|Step(n, args)| (ts.get(n).unwrap(), Assignment::new(args.clone())))
        .collect();
    let mut committed = 0;
    for (t, args) in &pairs {
        if m.try_apply(t, args).is_err() {
            break;
        }
        committed += 1;
    }
    assert_eq!(
        committed, expected,
        "monitor committed {committed} steps, oracle allows {expected} \
         (kind {kind}, inventory {inv_src}, script {script:?})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn monitor_commits_exactly_the_oracle_prefix(
        script in prop::collection::vec(step_strategy(), 0..9),
        inv_idx in 0usize..INVENTORIES.len(),
        kind_idx in 0usize..4,
    ) {
        check_script(&script, INVENTORIES[inv_idx], PatternKind::ALL[kind_idx]);
    }
}

#[test]
fn monitor_oracle_deterministic_cases() {
    let mk = |k: &str| Step("Mk", vec![Value::str(k)]);
    let st = |k: &str| Step("St", vec![Value::str(k)]);
    let ga = |k: &str| Step("Ga", vec![Value::str(k)]);
    let emp = |k: &str| Step("Emp", vec![Value::str(k)]);
    let rm = |k: &str| Step("Rm", vec![Value::str(k)]);
    let noop_rename = |k: &str| Step("Nm", vec![Value::str(k), Value::str("n")]);

    // The full lifecycle conforms to the Example 3.2 inventory.
    let life = [mk("k1"), st("k1"), ga("k1"), emp("k1"), rm("k1")];
    for kind in PatternKind::ALL {
        check_script(&life, INVENTORIES[0], kind);
    }

    // Jumping straight to employment breaks the study-first inventory.
    check_script(&[mk("k1"), emp("k1")], INVENTORIES[1], PatternKind::All);

    // A no-op step exempts under Proper but not under All.
    let noop = [mk("k1"), noop_rename("k1"), emp("k1")];
    check_script(&noop, INVENTORIES[1], PatternKind::All);
    check_script(&noop, INVENTORIES[1], PatternKind::Proper);

    // Trailing-∅ budget of Init(∅*[PERSON]+∅).
    let tail = [mk("k1"), rm("k1"), mk("k2"), mk("k3")];
    check_script(&tail, INVENTORIES[3], PatternKind::All);
    check_script(&tail, INVENTORIES[3], PatternKind::Lazy);
}

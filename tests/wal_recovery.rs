//! Crash-point property suite for the enforcement WAL
//! (`core::enforce::wal`).
//!
//! The durability contract under test: for a monitor with an attached
//! log, crashing after **any** committed prefix and running
//! `Monitor::recover(snapshot, wal_tail)` must reproduce the uncrashed
//! monitor's state **byte-identically** — checked as equality of
//! canonical [`Snapshot::encode`] bytes (database heap, cohort/RLE
//! tracking state, counters), plus database equality and per-object
//! pattern equality. Randomized over the same schema / inventory /
//! transaction generators as the engine-equivalence suite (`common`),
//! across all pattern kinds, both step policies, single and sharded
//! monitors, per-application and batched admission, with snapshots
//! taken at random points mid-run.

mod common;

use common::{random_inventory, random_multi_schema, random_multi_transaction, random_schema};
use migratory::core::enforce::{
    EnforceError, MemoryWal, Monitor, ShardedMonitor, StepPolicy, Wal, WalRecord,
};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{parse_transactions, Assignment, Transaction};
use migratory::model::{Oid, Value};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::sync::{Arc, Mutex};

/// Crash the run here: recover from the log double and require the
/// recovered monitor to be byte-identical to the live one.
fn assert_recovers_single(
    live: &Monitor<'_>,
    wal: &Arc<Mutex<MemoryWal>>,
    all_records: &[WalRecord],
    label: &str,
) {
    let (snap, blocks) = {
        let w = wal.lock().unwrap();
        (w.snapshot().expect("snapshot decodes"), w.records())
    };
    let recovered = Monitor::recover(
        live.schema(),
        live.alphabet(),
        live.inventory(),
        live.kind(),
        snap.clone(),
        blocks,
    )
    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"))
    .with_policy(live.policy());
    assert_eq!(
        recovered.snapshot().encode(),
        live.snapshot().encode(),
        "{label}: tracking state not byte-identical after recovery"
    );
    assert_eq!(recovered.db(), live.db(), "{label}: database diverged");
    assert_eq!(recovered.steps(), live.steps(), "{label}: letter counts diverged");
    for oid in 1..=live.db().next_oid().0 {
        assert_eq!(
            recovered.pattern_of(Oid(oid)),
            live.pattern_of(Oid(oid)),
            "{label}: pattern of o{oid} diverged"
        );
    }
    // Recovery must also skip already-snapshotted blocks by step offset
    // (the crash-between-rename-and-truncate case): feeding the FULL
    // block history alongside the snapshot changes nothing.
    let again = Monitor::recover(
        live.schema(),
        live.alphabet(),
        live.inventory(),
        live.kind(),
        snap,
        all_records.to_vec(),
    )
    .unwrap_or_else(|e| panic!("{label}: full-history recovery failed: {e}"))
    .with_policy(live.policy());
    assert_eq!(
        again.snapshot().encode(),
        live.snapshot().encode(),
        "{label}: pre-snapshot blocks were not skipped"
    );
}

/// 60 random configurations, each crash-tested at every committed
/// prefix of a random run, with a snapshot checkpoint at a random step.
#[test]
fn monitor_recovers_byte_identical_at_every_crash_point() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0021);
    let (mut commits, mut rejections, mut pre_snapshot_crashes) = (0usize, 0usize, 0usize);
    for case in 0..60 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut live =
            Monitor::new(&schema, &alphabet, &inv, kind).with_policy(policy).with_sink(wal.clone());
        let no_args = Assignment::empty();
        let run_len = rng.random_range(4usize..16);
        let snapshot_at = rng.random_range(0usize..run_len);
        // The full block history, preserved across the checkpoint's log
        // truncation (exercises skip-by-step on recovery).
        let mut pre_snapshot_records: Vec<WalRecord> = Vec::new();
        for step in 0..run_len {
            let t = common::random_transaction(&mut rng, &schema, &edges);
            match live.try_apply(&t, &no_args) {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(e) => panic!("unexpected {e}"),
            }
            if step == snapshot_at {
                pre_snapshot_records = wal.lock().unwrap().records();
                let snap = live.snapshot();
                wal.lock().unwrap().write_snapshot(&snap);
            }
            if wal.lock().unwrap().snapshot().unwrap().is_none() {
                pre_snapshot_crashes += 1;
            }
            let all_records: Vec<WalRecord> =
                pre_snapshot_records.iter().cloned().chain(wal.lock().unwrap().records()).collect();
            assert_recovers_single(&live, &wal, &all_records, &format!("case {case} step {step}"));
        }
    }
    assert!(commits > 150, "only {commits} commits — workload too restrictive");
    assert!(rejections > 100, "only {rejections} rejections — workload too permissive");
    assert!(pre_snapshot_crashes > 50, "crashes before the first checkpoint untested");
}

/// Sharded + batched: random batch admission with a sink, crash-checked
/// after every block, snapshot at a random block boundary.
#[test]
fn sharded_batched_recovery_is_byte_identical() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0022);
    let mut batch_commits = 0usize;
    for case in 0..40 {
        let multi = rng.random_range(0u32..2) == 1;
        let (schema, edges, extra) = if multi {
            random_multi_schema(&mut rng)
        } else {
            let (s, e) = random_schema(&mut rng);
            (s, e, 0)
        };
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5);
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut live = ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(rng.random_range(0u32..2) == 1)
            .with_sink(wal.clone());
        let no_args = Assignment::empty();
        let txns: Vec<Transaction> = (0..rng.random_range(6usize..20))
            .map(|_| random_multi_transaction(&mut rng, &schema, &edges, extra))
            .collect();
        let snapshot_at_block = rng.random_range(0usize..4);
        let mut pos = 0;
        let mut block_no = 0usize;
        while pos < txns.len() {
            let size = rng.random_range(1usize..(txns.len() - pos).min(5) + 1);
            let block = &txns[pos..pos + size];
            let (done, _) = live.try_apply_batch(block.iter().map(|t| (t, &no_args)));
            batch_commits += done;
            pos += size;
            if block_no == snapshot_at_block {
                let snap = live.snapshot();
                wal.lock().unwrap().write_snapshot(&snap);
            }
            block_no += 1;

            let (snap, blocks) = {
                let w = wal.lock().unwrap();
                (w.snapshot().expect("snapshot decodes"), w.records())
            };
            let recovered =
                ShardedMonitor::recover(&schema, &alphabet, &inv, kind, shards, snap, blocks)
                    .unwrap_or_else(|e| panic!("case {case} block {block_no}: {e}"))
                    .with_policy(policy);
            assert_eq!(
                recovered.snapshot().encode(),
                live.snapshot().encode(),
                "case {case} block {block_no}: shard states not byte-identical"
            );
            assert_eq!(recovered.db(), live.db());
            assert_eq!(recovered.steps(), live.steps());
            for oid in 1..=live.db().next_oid().0 {
                assert_eq!(recovered.pattern_of(Oid(oid)), live.pattern_of(Oid(oid)));
            }
        }
    }
    assert!(batch_commits > 100, "only {batch_commits} batch commits");
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("migratory-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// File-backed torn-tail semantics: truncate `wal.log` at **every byte
/// length** and require recovery to land exactly on a committed prefix
/// of the run — never an error, never a half-applied block.
#[test]
fn file_wal_recovers_every_truncation_to_a_committed_prefix() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv =
        Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
        transaction Rm(x) { delete(PERSON, { SSN = x }); }
    "#,
    )
    .unwrap();
    let dir = temp_dir("torn");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());

    // Canonical state after each committed step, keyed by letter count.
    let mut state_at: Vec<Vec<u8>> = vec![live.snapshot().encode()];
    let script = [("Mk", "1"), ("St", "1"), ("Mk", "2"), ("UnSt", "1"), ("Rm", "2"), ("Rm", "1")];
    for (name, key) in script {
        let args = Assignment::new(vec![Value::str(key)]);
        live.try_apply(ts.get(name).unwrap(), &args).unwrap();
        state_at.push(live.snapshot().encode());
    }
    drop(wal); // flush + close the writer

    let log = std::fs::read(dir.join("wal.log")).unwrap();
    let mut prefixes_seen = std::collections::BTreeSet::new();
    for cut in 0..=log.len() {
        let blocks = migratory::core::enforce::wal::decode_records(&log[..cut]);
        let steps: usize = blocks.iter().map(WalRecord::letters).sum();
        let recovered = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, None, blocks)
            .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(recovered.steps(), steps);
        assert_eq!(
            recovered.snapshot().encode(),
            state_at[steps],
            "cut at {cut} bytes must recover the exact state after {steps} letters"
        );
        prefixes_seen.insert(steps);
    }
    assert_eq!(
        prefixes_seen.into_iter().collect::<Vec<_>>(),
        (0..=script.len()).collect::<Vec<_>>(),
        "every committed prefix is reachable by some truncation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Wal::write_snapshot` + `Wal::load`: restart without replay — the
/// checkpoint truncates the log, recovery folds snapshot + tail, and a
/// recovered monitor can keep running (and keep logging) seamlessly.
#[test]
fn file_wal_snapshot_restart_resumes_mid_run() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
    "#,
    )
    .unwrap();
    let dir = temp_dir("restart");
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);

    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
    for k in ["a", "b", "c"] {
        live.try_apply(ts.get("Mk").unwrap(), &key(k)).unwrap();
    }
    wal.lock().unwrap().write_snapshot(&live.snapshot()).unwrap();
    assert_eq!(
        std::fs::metadata(dir.join("wal.log")).unwrap().len(),
        0,
        "checkpoint truncates the log"
    );
    live.try_apply(ts.get("St").unwrap(), &key("a")).unwrap();
    live.try_apply(ts.get("St").unwrap(), &key("b")).unwrap();
    let crash_state = live.snapshot().encode();
    drop((live, wal)); // "crash"

    let (snap, tail) = Wal::load(&dir).unwrap();
    let snap = snap.expect("checkpoint present");
    assert_eq!(snap.steps(), 3);
    assert_eq!(tail.len(), 2, "only the post-checkpoint tail remains");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut revived =
        Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, Some(snap), tail)
            .unwrap()
            .with_sink(wal.clone());
    assert_eq!(revived.snapshot().encode(), crash_state);
    // The revived monitor keeps enforcing and keeps logging.
    revived.try_apply(ts.get("UnSt").unwrap(), &key("a")).unwrap();
    assert_eq!(revived.steps(), 6);
    let (_, tail) = Wal::load(&dir).unwrap();
    assert_eq!(tail.len(), 3, "the new letter was appended to the same log");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failing sink aborts the commit atomically: nothing applied, nothing
/// tracked, nothing logged — and the monitor resumes cleanly once the
/// sink heals.
#[test]
fn sink_failure_rolls_back_and_heals() {
    use migratory::core::enforce::wal::FailingSink;
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let sink = Arc::new(Mutex::new(FailingSink::default()));
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);

    let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(sink.clone());
    m.try_apply(ts.get("Mk").unwrap(), &key("1")).unwrap();
    sink.lock().unwrap().fail = true;
    let before = m.snapshot().encode();
    let err = m.try_apply(ts.get("Mk").unwrap(), &key("2")).unwrap_err();
    assert!(matches!(err, EnforceError::Durability(_)), "got {err:?}");
    assert_eq!(m.snapshot().encode(), before, "failed commit left state behind");
    assert_eq!(m.db().num_objects(), 1);
    sink.lock().unwrap().fail = false;
    m.try_apply(ts.get("Mk").unwrap(), &key("2")).unwrap();
    assert_eq!(m.db().num_objects(), 2);
    assert_eq!(sink.lock().unwrap().accepted, 2);

    // Sharded batch: a failing sink rejects the whole block atomically.
    let sink = Arc::new(Mutex::new(FailingSink { fail: true, accepted: 0 }));
    let mut sm =
        ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2).with_sink(sink.clone());
    let assigns: Vec<Assignment> = (0..4).map(|i| key(&format!("{i}"))).collect();
    let batch: Vec<(&Transaction, &Assignment)> =
        assigns.iter().map(|a| (ts.get("Mk").unwrap(), a)).collect();
    let (done, err) = sm.try_apply_batch(batch.clone());
    assert_eq!(done, 0);
    assert!(matches!(err, Some(EnforceError::Durability(_))));
    assert_eq!(sm.db().num_objects(), 0, "block rolled back");
    assert_eq!(sm.steps(), 0);
    sink.lock().unwrap().fail = false;
    let (done, err) = sm.try_apply_batch(batch);
    assert_eq!((done, err), (4, None));
}

/// A durable certified monitor logs its (unchecked) applications and
/// recovers from a post-certification checkpoint, patterns frozen at
/// the certification horizon.
#[test]
fn certified_monitor_logs_and_recovers() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [STUDENT]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction T1(n, sv, t, mj) {
          create(PERSON, { SSN = sv, Name = n });
          specialize(PERSON, STUDENT, { SSN = sv }, { Major = mj, FirstEnroll = t });
        }
        transaction T4(sv) { delete(PERSON, { SSN = sv }); }
    "#,
    )
    .unwrap();
    let args = |k: &str| {
        Assignment::new(vec![Value::str("ann"), Value::str(k), Value::int(1990), Value::str("CS")])
    };
    let wal = Arc::new(Mutex::new(MemoryWal::new()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
    live.try_apply(ts.get("T1").unwrap(), &args("1")).unwrap();
    // Checkpoint BEFORE certification: the certification event reaches
    // the log as its own write-ahead marker record, so recovery from
    // this pre-certification snapshot must still freeze tracking at the
    // right letter instead of replaying certified blocks as checked.
    wal.lock().unwrap().write_snapshot(&live.snapshot());
    assert!(live.certify(&ts).unwrap());
    live.try_apply(ts.get("T1").unwrap(), &args("2")).unwrap();
    live.try_apply(ts.get("T4").unwrap(), &Assignment::new(vec![Value::str("1")])).unwrap();
    let (snap, records) = {
        let w = wal.lock().unwrap();
        (w.snapshot().unwrap().unwrap(), w.records())
    };
    assert_eq!(records.len(), 3, "two certified blocks plus the certification marker");
    assert!(records.iter().any(|r| matches!(r, WalRecord::Certified { steps: 1 })));
    let recovered =
        Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, Some(snap), records).unwrap();
    assert_eq!(recovered.snapshot().encode(), live.snapshot().encode());
    assert_eq!(recovered.db(), live.db());
    assert!(recovered.is_certified());
    assert_eq!(recovered.steps(), 3);
    assert_eq!(recovered.pattern_of(Oid(1)), live.pattern_of(Oid(1)));
    assert_eq!(recovered.pattern_of(Oid(1)).unwrap().len(), 1, "frozen at certification");
    assert!(recovered.pattern_of(Oid(2)).is_none(), "post-certification objects untracked");

    // A failing sink vetoes certification itself (write-ahead marker).
    use migratory::core::enforce::wal::FailingSink;
    let sink = Arc::new(Mutex::new(FailingSink { fail: true, accepted: 0 }));
    let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(sink.clone());
    assert!(m.certify(&ts).is_err(), "unloggable certification must not take effect");
    assert!(!m.is_certified());
    sink.lock().unwrap().fail = false;
    assert!(m.certify(&ts).unwrap());
    assert!(m.is_certified());
}

/// Re-opening a log with a torn tail must truncate it before appending:
/// otherwise every post-reopen record hides behind the garbage and is
/// silently lost on the next recovery.
#[test]
fn reopening_a_torn_log_truncates_before_appending() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let dir = temp_dir("torn-reopen");
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);
    {
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
        let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
        m.try_apply(ts.get("Mk").unwrap(), &key("1")).unwrap();
        m.try_apply(ts.get("Mk").unwrap(), &key("2")).unwrap();
    }
    // Crash mid-append: garbage half-record at the end of the log.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(dir.join("wal.log")).unwrap();
        f.write_all(&[0x99, 0x03, 0x00, 0x00, 0xde, 0xad]).unwrap();
    }
    // Resume: the reopened log must drop the torn bytes, so the new
    // letter lands right after the two good records.
    {
        let (snap, tail) = Wal::load(&dir).unwrap();
        assert_eq!(tail.len(), 2, "torn tail dropped on load");
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
        let mut m = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail)
            .unwrap()
            .with_sink(wal.clone());
        m.try_apply(ts.get("Mk").unwrap(), &key("3")).unwrap();
    }
    let (snap, tail) = Wal::load(&dir).unwrap();
    assert_eq!(tail.len(), 3, "the post-reopen record must be recoverable");
    let m = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail).unwrap();
    assert_eq!(m.steps(), 3);
    assert_eq!(m.db().num_objects(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Gap detection: a tail that skips a block is refused rather than
/// silently replayed out of order.
#[test]
fn recovery_rejects_wal_gaps() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let wal = Arc::new(Mutex::new(MemoryWal::new()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
    for k in ["1", "2", "3"] {
        live.try_apply(ts.get("Mk").unwrap(), &Assignment::new(vec![Value::str(k)])).unwrap();
    }
    let mut blocks = wal.lock().unwrap().records();
    blocks.remove(1); // lose the middle block
    let err = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, None, blocks)
        .err()
        .expect("gap must be detected");
    assert!(err.to_string().contains("gap"), "got {err}");
}

//! Crash-point property suite for the enforcement WAL
//! (`core::enforce::wal`).
//!
//! The durability contract under test: for a monitor with an attached
//! log, crashing after **any** committed prefix and running
//! `Monitor::recover(folded checkpoint chain, wal_tail)` must reproduce
//! the uncrashed monitor's state **byte-identically** — checked as
//! equality of canonical [`Snapshot::encode`] bytes (database heap,
//! cohort/RLE tracking state, per-shard letter clocks), plus database
//! equality and per-object pattern equality. Randomized over the same
//! schema / inventory / transaction generators as the
//! engine-equivalence suite (`common`), across all pattern kinds, both
//! step policies, single and sharded monitors, per-application and
//! batched admission, with **full and incremental checkpoints** taken
//! at random points mid-run. File-backed tests additionally cover the
//! background snapshotter's crash windows: a checkpoint that sealed the
//! log but never landed, a checkpoint that landed but never pruned
//! (double-apply), stale temp files and stale increments from an older
//! base, and corrupted record length headers.

mod common;

use common::{random_inventory, random_multi_schema, random_multi_transaction, random_schema};
use migratory::core::enforce::{
    CheckpointData, EnforceError, MemoryWal, Monitor, ShardedMonitor, Snapshotter, StepPolicy, Wal,
    WalError, WalRecord,
};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{parse_transactions, Assignment, Transaction};
use migratory::model::{Oid, Value};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::sync::{Arc, Mutex};

/// Crash the run here: recover from the log double and require the
/// recovered monitor to be byte-identical to the live one.
fn assert_recovers_single(
    live: &Monitor<'_>,
    wal: &Arc<Mutex<MemoryWal>>,
    all_records: &[WalRecord],
    label: &str,
) {
    let (snap, blocks) = {
        let w = wal.lock().unwrap();
        (w.snapshot().expect("checkpoint chain folds"), w.records())
    };
    let recovered = Monitor::recover(
        live.schema(),
        live.alphabet(),
        live.inventory(),
        live.kind(),
        snap.clone(),
        blocks,
    )
    .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"))
    .with_policy(live.policy());
    assert_eq!(
        recovered.snapshot().encode(),
        live.snapshot().encode(),
        "{label}: tracking state not byte-identical after recovery"
    );
    assert_eq!(recovered.db(), live.db(), "{label}: database diverged");
    assert_eq!(recovered.steps(), live.steps(), "{label}: letter counts diverged");
    for oid in 1..=live.db().next_oid().0 {
        assert_eq!(
            recovered.pattern_of(Oid(oid)),
            live.pattern_of(Oid(oid)),
            "{label}: pattern of o{oid} diverged"
        );
    }
    // Recovery must also skip already-checkpointed blocks by per-shard
    // step offset (the crash-between-checkpoint-and-prune case):
    // feeding the FULL record history alongside the chain changes
    // nothing.
    let again = Monitor::recover(
        live.schema(),
        live.alphabet(),
        live.inventory(),
        live.kind(),
        snap,
        all_records.to_vec(),
    )
    .unwrap_or_else(|e| panic!("{label}: full-history recovery failed: {e}"))
    .with_policy(live.policy());
    assert_eq!(
        again.snapshot().encode(),
        live.snapshot().encode(),
        "{label}: pre-checkpoint blocks were not skipped"
    );
}

/// 60 random configurations, each crash-tested at every committed
/// prefix of a random run, with a random mix of full and incremental
/// checkpoints along the way.
#[test]
fn monitor_recovers_byte_identical_at_every_crash_point() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0021);
    let (mut commits, mut rejections, mut pre_snapshot_crashes, mut increments) =
        (0usize, 0usize, 0usize, 0usize);
    for case in 0..60 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut live =
            Monitor::new(&schema, &alphabet, &inv, kind).with_policy(policy).with_sink(wal.clone());
        let no_args = Assignment::empty();
        let run_len = rng.random_range(4usize..16);
        // The full record history, preserved across the checkpoints'
        // log truncations (exercises skip-by-clock on recovery).
        let mut folded_records: Vec<WalRecord> = Vec::new();
        let mut has_base = false;
        for step in 0..run_len {
            let t = common::random_transaction(&mut rng, &schema, &edges);
            match live.try_apply(&t, &no_args) {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(e) => panic!("unexpected {e}"),
            }
            // Checkpoint with probability ~1/4: incremental when a base
            // exists (2 of 3 times), full otherwise.
            if rng.random_range(0u32..4) == 0 {
                folded_records.extend(wal.lock().unwrap().records());
                if has_base && rng.random_range(0u32..3) != 0 {
                    let delta = live.checkpoint_delta();
                    wal.lock().unwrap().write_checkpoint_delta(&delta);
                    increments += 1;
                } else {
                    let snap = live.checkpoint_full();
                    wal.lock().unwrap().write_snapshot(&snap);
                    has_base = true;
                }
            }
            if wal.lock().unwrap().snapshot().unwrap().is_none() {
                pre_snapshot_crashes += 1;
            }
            let all_records: Vec<WalRecord> =
                folded_records.iter().cloned().chain(wal.lock().unwrap().records()).collect();
            assert_recovers_single(&live, &wal, &all_records, &format!("case {case} step {step}"));
        }
    }
    assert!(commits > 150, "only {commits} commits — workload too restrictive");
    assert!(rejections > 100, "only {rejections} rejections — workload too permissive");
    assert!(pre_snapshot_crashes > 50, "crashes before the first checkpoint untested");
    assert!(increments > 20, "only {increments} incremental checkpoints taken");
}

/// Sharded + batched: random batch admission with a sink over single-
/// and multi-component schemas (independent per-shard clocks!),
/// crash-checked after every block, with full and incremental
/// checkpoints at random block boundaries.
#[test]
fn sharded_batched_recovery_is_byte_identical() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0022);
    let (mut batch_commits, mut increments) = (0usize, 0usize);
    for case in 0..40 {
        let multi = rng.random_range(0u32..2) == 1;
        let (schema, edges, extra) = if multi {
            random_multi_schema(&mut rng)
        } else {
            let (s, e) = random_schema(&mut rng);
            (s, e, 0)
        };
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5);
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut live = ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(rng.random_range(0u32..2) == 1)
            .with_sink(wal.clone());
        let shards = live.num_shards();
        let no_args = Assignment::empty();
        let txns: Vec<Transaction> = (0..rng.random_range(6usize..20))
            .map(|_| random_multi_transaction(&mut rng, &schema, &edges, extra))
            .collect();
        let mut has_base = false;
        let mut pos = 0;
        let mut block_no = 0usize;
        while pos < txns.len() {
            let size = rng.random_range(1usize..(txns.len() - pos).min(5) + 1);
            let block = &txns[pos..pos + size];
            let (done, _) = live.try_apply_batch(block.iter().map(|t| (t, &no_args)));
            batch_commits += done;
            pos += size;
            if rng.random_range(0u32..3) == 0 {
                if has_base && rng.random_range(0u32..3) != 0 {
                    let delta = live.checkpoint_delta();
                    wal.lock().unwrap().write_checkpoint_delta(&delta);
                    increments += 1;
                } else {
                    let snap = live.checkpoint_full();
                    wal.lock().unwrap().write_snapshot(&snap);
                    has_base = true;
                }
            }
            block_no += 1;

            let (snap, blocks) = {
                let w = wal.lock().unwrap();
                (w.snapshot().expect("checkpoint chain folds"), w.records())
            };
            let recovered =
                ShardedMonitor::recover(&schema, &alphabet, &inv, kind, shards, snap, blocks)
                    .unwrap_or_else(|e| panic!("case {case} block {block_no}: {e}"))
                    .with_policy(policy);
            assert_eq!(
                recovered.snapshot().encode(),
                live.snapshot().encode(),
                "case {case} block {block_no}: shard states not byte-identical"
            );
            assert_eq!(recovered.db(), live.db());
            assert_eq!(recovered.clocks(), live.clocks());
            for oid in 1..=live.db().next_oid().0 {
                assert_eq!(recovered.pattern_of(Oid(oid)), live.pattern_of(Oid(oid)));
            }
        }
    }
    assert!(batch_commits > 100, "only {batch_commits} batch commits");
    assert!(increments > 10, "only {increments} incremental checkpoints taken");
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("migratory-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// File-backed torn-tail semantics: truncate `wal.log` at **every byte
/// length** and require recovery to land exactly on a committed prefix
/// of the run — never an error, never a half-applied block.
#[test]
fn file_wal_recovers_every_truncation_to_a_committed_prefix() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv =
        Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
        transaction Rm(x) { delete(PERSON, { SSN = x }); }
    "#,
    )
    .unwrap();
    let dir = temp_dir("torn");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());

    // Canonical state after each committed step, keyed by letter count.
    let mut state_at: Vec<Vec<u8>> = vec![live.snapshot().encode()];
    let script = [("Mk", "1"), ("St", "1"), ("Mk", "2"), ("UnSt", "1"), ("Rm", "2"), ("Rm", "1")];
    for (name, key) in script {
        let args = Assignment::new(vec![Value::str(key)]);
        live.try_apply(ts.get(name).unwrap(), &args).unwrap();
        state_at.push(live.snapshot().encode());
    }
    drop(wal); // flush + close the writer

    let log = std::fs::read(dir.join("wal.log")).unwrap();
    let mut prefixes_seen = std::collections::BTreeSet::new();
    for cut in 0..=log.len() {
        let blocks = migratory::core::enforce::wal::decode_records(&log[..cut])
            .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let steps: usize = blocks.iter().map(WalRecord::letters).sum();
        let recovered = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, None, blocks)
            .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(recovered.steps(), steps);
        assert_eq!(
            recovered.snapshot().encode(),
            state_at[steps],
            "cut at {cut} bytes must recover the exact state after {steps} letters"
        );
        prefixes_seen.insert(steps);
    }
    assert_eq!(
        prefixes_seen.into_iter().collect::<Vec<_>>(),
        (0..=script.len()).collect::<Vec<_>>(),
        "every committed prefix is reachable by some truncation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `--fsync batch` ack contract under the pipelined committer: the
/// instant an ack is released, the op's record is already inside the
/// WAL's durable horizon — so a `kill -9` at ANY later moment
/// (modelled as truncating the log to the horizon observed at ack
/// time; everything past a returned fdatasync survives a crash) can
/// never lose an acked op. Would fail loudly if acks ever raced ahead
/// of the batch fsync.
#[test]
fn pipelined_batch_acks_survive_any_crash_after_the_ack() {
    use migratory::core::enforce::{ingress, DurabilityPolicy, FsyncPolicy, Health, IngressConfig};
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let dir = temp_dir("batch-ack");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap().with_fsync(FsyncPolicy::Batch)));
    let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2);
    let health = Health::new();
    const N: usize = 24;
    // Serve serially; after each ack, read the durable horizon the
    // committer had published by that instant (it only grows, so any
    // later crash point is ≥ this cut).
    let (horizons, stats) = ingress::serve_pipelined(
        &mut m,
        &IngressConfig { queue_capacity: 8, max_block: 4 },
        &DurabilityPolicy::default(),
        &health,
        wal.clone(),
        None,
        0,
        |_| {},
        |client| {
            let mk = ts.get("Mk").unwrap();
            (0..N)
                .map(|i| {
                    client
                        .post(mk, Assignment::new(vec![Value::str(&format!("s{i}"))]))
                        .wait()
                        .expect("creations conform");
                    wal.lock().unwrap().synced_len()
                })
                .collect::<Vec<u64>>()
        },
    );
    assert_eq!(stats.admitted, N);
    let log = std::fs::read(dir.join("wal.log")).unwrap();
    for (i, h) in horizons.iter().enumerate() {
        let cut = usize::try_from(*h).unwrap();
        assert!(cut <= log.len(), "the horizon never outruns the file");
        let blocks = migratory::core::enforce::wal::decode_records(&log[..cut])
            .unwrap_or_else(|e| panic!("ack {i}: horizon {cut} is a whole-record boundary: {e}"));
        let r =
            ShardedMonitor::recover(&schema, &alphabet, &inv, PatternKind::All, 2, None, blocks)
                .unwrap_or_else(|e| panic!("ack {i}: {e}"));
        assert!(
            r.db().num_objects() > i,
            "crash right after ack {i} (cut {cut}) must keep all {} acked op(s), found {}",
            i + 1,
            r.db().num_objects()
        );
    }
    // And the full log reproduces the served monitor byte-identically.
    let (snap, tail) = Wal::load(&dir).unwrap();
    let r =
        ShardedMonitor::recover(&schema, &alphabet, &inv, PatternKind::All, 2, snap, tail).unwrap();
    assert_eq!(r.snapshot().encode(), m.snapshot().encode());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupted length headers (the untrusted 4 bytes in front of every
/// record): flipping arbitrary bytes of the log must never panic,
/// allocate from the corrupt claim, or mis-handle the tail — decoding
/// either lands on a valid record prefix or reports corruption, and
/// `Wal::open` on an oversized tail claim truncates it like any other
/// torn append.
#[test]
fn fuzzed_length_headers_never_break_decoding() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let dir = temp_dir("fuzz-len");
    {
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
        let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
        for i in 0..8 {
            m.try_apply(ts.get("Mk").unwrap(), &Assignment::new(vec![Value::str(&format!("{i}"))]))
                .unwrap();
        }
    }
    let log = std::fs::read(dir.join("wal.log")).unwrap();
    let clean = migratory::core::enforce::wal::decode_records(&log).unwrap();
    assert_eq!(clean.len(), 8);

    let mut rng = StdRng::seed_from_u64(0x5eed_0040);
    for _ in 0..500 {
        let mut fuzzed = log.clone();
        for _ in 0..rng.random_range(1usize..4) {
            let i = rng.random_range(0..fuzzed.len());
            fuzzed[i] ^= 1 << rng.random_range(0u32..8);
        }
        // Must return promptly — a prefix or an explicit corruption
        // error — and never panic or size a buffer from a bogus claim.
        match migratory::core::enforce::wal::decode_records(&fuzzed) {
            Ok(records) => assert!(records.len() <= 8),
            Err(WalError::Corrupt(_)) => {}
            Err(e) => panic!("unexpected error class: {e}"),
        }
    }

    // An oversized claim at the tail is torn-append truncation: the
    // reopened log keeps every prior record and appends cleanly.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(dir.join("wal.log")).unwrap();
        f.write_all(&0xffff_ffffu32.to_le_bytes()).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01]).unwrap();
    }
    {
        let (snap, tail) = Wal::load(&dir).unwrap();
        assert_eq!(tail.len(), 8, "oversized tail claim dropped");
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
        let mut m = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail)
            .unwrap()
            .with_sink(wal.clone());
        m.try_apply(ts.get("Mk").unwrap(), &Assignment::new(vec![Value::str("9")])).unwrap();
    }
    let (_, tail) = Wal::load(&dir).unwrap();
    assert_eq!(tail.len(), 9);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Wal` checkpointing + `Wal::load`: restart without replay — the
/// checkpoint seals the log, recovery folds chain + tail, and a
/// recovered monitor can keep running (and keep logging) seamlessly.
#[test]
fn file_wal_snapshot_restart_resumes_mid_run() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
    "#,
    )
    .unwrap();
    let dir = temp_dir("restart");
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);

    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
    for k in ["a", "b", "c"] {
        live.try_apply(ts.get("Mk").unwrap(), &key(k)).unwrap();
    }
    wal.lock().unwrap().write_snapshot(&live.snapshot()).unwrap();
    assert_eq!(
        std::fs::metadata(dir.join("wal.log")).unwrap().len(),
        0,
        "checkpoint seals the live log"
    );
    live.try_apply(ts.get("St").unwrap(), &key("a")).unwrap();
    live.try_apply(ts.get("St").unwrap(), &key("b")).unwrap();
    let crash_state = live.snapshot().encode();
    drop((live, wal)); // "crash"

    let (snap, tail) = Wal::load(&dir).unwrap();
    let snap = snap.expect("checkpoint present");
    assert_eq!(snap.steps(), 3);
    assert_eq!(tail.len(), 2, "only the post-checkpoint tail remains");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut revived =
        Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, Some(snap), tail)
            .unwrap()
            .with_sink(wal.clone());
    assert_eq!(revived.snapshot().encode(), crash_state);
    // The revived monitor keeps enforcing and keeps logging.
    revived.try_apply(ts.get("UnSt").unwrap(), &key("a")).unwrap();
    assert_eq!(revived.steps(), 6);
    let (_, tail) = Wal::load(&dir).unwrap();
    assert_eq!(tail.len(), 3, "the new letter was appended to the same log");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The background-checkpoint crash windows, one by one, on a live
/// multi-component sharded run (shard clocks genuinely diverge, so the
/// per-shard fold logic is what is under test):
///
/// 1. a stale `*.tmp` from a crashed checkpoint job is ignored;
/// 2. crash after the log was sealed but before the checkpoint landed
///    — the sealed segment replays;
/// 3. crash after the checkpoint landed but before pruning — covered
///    records are skipped per shard, never double-applied;
/// 4. a stale increment from before a newer base is ignored.
#[test]
fn background_checkpoint_crash_windows_recover_byte_identically() {
    let mut b = migratory::model::SchemaBuilder::new();
    for r in 0..3 {
        let root = b.class(&format!("R{r}"), &[&format!("K{r}")]).unwrap();
        b.subclass(&format!("S{r}"), &[root], &[]).unwrap();
    }
    let schema = b.build().unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* ([R0] ∪ [S0])* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r"
        transaction Mk0(x) { create(R0, { K0 = x }); }
        transaction Up0(x) { specialize(R0, S0, { K0 = x }, {}); }
        transaction Mk1(x) { create(R1, { K1 = x }); }
        transaction Mk2(x) { create(R2, { K2 = x }); }
    ",
    )
    .unwrap();
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);
    let dir = temp_dir("ckpt-windows");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut live =
        ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 3).with_sink(wal.clone());
    let recover_and_check = |live: &ShardedMonitor<'_>, label: &str| {
        let (snap, tail) = Wal::load(&dir).unwrap_or_else(|e| panic!("{label}: load: {e}"));
        let recovered =
            ShardedMonitor::recover(&schema, &alphabet, &inv, PatternKind::All, 3, snap, tail)
                .unwrap_or_else(|e| panic!("{label}: recover: {e}"));
        assert_eq!(
            recovered.snapshot().encode(),
            live.snapshot().encode(),
            "{label}: not byte-identical"
        );
        assert_eq!(recovered.clocks(), live.clocks(), "{label}: clocks diverged");
    };

    // Uneven traffic: shard 0 races ahead of shards 1 and 2.
    for i in 0..6 {
        live.try_apply(ts.get("Mk0").unwrap(), &key(&format!("a{i}"))).unwrap();
    }
    live.try_apply(ts.get("Mk1").unwrap(), &key("b0")).unwrap();
    assert_eq!(live.clocks(), vec![6, 1, 0]);

    // Window 1: a stale tmp file from a crashed checkpoint job is
    // invisible to load …
    std::fs::write(dir.join("checkpoint-00000042.tmp"), b"half-written garbage").unwrap();
    recover_and_check(&live, "stale tmp");
    // … and swept by the next open (shown on a throwaway directory —
    // this test's Wal is already open).
    {
        let d2 = temp_dir("ckpt-tmp-clean");
        std::fs::create_dir_all(&d2).unwrap();
        std::fs::write(d2.join("checkpoint-00000007.tmp"), b"garbage").unwrap();
        let _w = Wal::open(&d2).unwrap();
        assert!(!d2.join("checkpoint-00000007.tmp").exists(), "stale tmp cleaned by open");
        let _ = std::fs::remove_dir_all(&d2);
    }

    // Base checkpoint (run inline so it is durable), then more uneven
    // traffic on top.
    let job =
        wal.lock().unwrap().begin_checkpoint(CheckpointData::Full(live.checkpoint_full())).unwrap();
    job.run().unwrap();
    for i in 0..3 {
        live.try_apply(ts.get("Up0").unwrap(), &key(&format!("a{i}"))).unwrap();
        live.try_apply(ts.get("Mk2").unwrap(), &key(&format!("c{i}"))).unwrap();
    }
    assert_eq!(live.clocks(), vec![9, 1, 3]);

    // Window 2: the admission thread sealed the log for an incremental
    // checkpoint, then the process died before the job ran. The sealed
    // segment must replay (per shard, at shard-local offsets).
    let delta = live.checkpoint_delta();
    let job = wal.lock().unwrap().begin_checkpoint(CheckpointData::Incremental(delta)).unwrap();
    let sealed: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.starts_with("sealed-").then_some(name)
        })
        .collect();
    assert_eq!(sealed.len(), 1, "the live log was sealed: {sealed:?}");
    recover_and_check(&live, "sealed without checkpoint");

    // Window 3: the checkpoint lands but the crash hits before pruning
    // — the sealed segment sits beside the increment that covers it.
    // Per-shard clock folding must skip its records exactly once.
    let sealed_path = dir.join(&sealed[0]);
    let sealed_bytes = std::fs::read(&sealed_path).unwrap();
    job.run().unwrap();
    assert!(!sealed_path.exists(), "the job pruned the covered segment");
    std::fs::write(&sealed_path, &sealed_bytes).unwrap(); // resurrect: crash before prune
    recover_and_check(&live, "checkpoint without prune (double-apply)");
    std::fs::remove_file(&sealed_path).unwrap();

    // Window 4: a newer base supersedes the increment; a crash before
    // pruning leaves the stale increment around. It must be ignored.
    let stale_delta = dir.join("delta-00000002.bin");
    assert!(stale_delta.exists(), "the incremental checkpoint landed at seq 2");
    let stale_bytes = std::fs::read(&stale_delta).unwrap();
    live.try_apply(ts.get("Mk1").unwrap(), &key("b1")).unwrap();
    let job =
        wal.lock().unwrap().begin_checkpoint(CheckpointData::Full(live.checkpoint_full())).unwrap();
    job.run().unwrap();
    assert!(!stale_delta.exists(), "the new base pruned the old increment");
    std::fs::write(&stale_delta, &stale_bytes).unwrap(); // resurrect: crash before prune
    recover_and_check(&live, "stale increment beside a newer base");

    // And the background path end-to-end: incremental checkpoints
    // through a Snapshotter thread, crash-checked after it finishes.
    let mut snapshotter = Snapshotter::spawn();
    for i in 3..6 {
        live.try_apply(ts.get("Mk2").unwrap(), &key(&format!("c{i}"))).unwrap();
        let delta = live.checkpoint_delta();
        let job = wal.lock().unwrap().begin_checkpoint(CheckpointData::Incremental(delta)).unwrap();
        snapshotter.submit(job).unwrap();
    }
    snapshotter.finish().unwrap();
    recover_and_check(&live, "snapshotter chain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash that kills an in-flight **incremental** checkpoint job
/// swallows its sequence number: the sealed segment exists, the
/// increment never landed. The resumed run's later increments must not
/// corrupt the chain — each increment records the checkpoint it chains
/// onto, so the hole is recognized as a crashed job (whose records the
/// later increment covers, via the replay-dirtied state), not as a
/// lost increment.
#[test]
fn crashed_incremental_job_does_not_corrupt_the_chain() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);
    let dir = temp_dir("incr-crash");
    {
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
        let mut live =
            Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
        live.try_apply(ts.get("Mk").unwrap(), &key("1")).unwrap();
        let snap = live.checkpoint_full();
        wal.lock().unwrap().write_snapshot(&snap).unwrap(); // base, seq 1
        live.try_apply(ts.get("Mk").unwrap(), &key("2")).unwrap();
        let delta = live.checkpoint_delta();
        let job = wal.lock().unwrap().begin_checkpoint(CheckpointData::Incremental(delta)).unwrap();
        assert_eq!(job.seq(), 2);
        drop(job); // crash: sealed-2.log exists, delta-2.bin never lands
    }
    // Recover (first time — this always worked), then RESUME: more
    // letters, another incremental checkpoint. Its job prunes the
    // crashed job's sealed segment — which is safe, because recovery
    // re-dirtied the replayed objects and this increment carries them.
    let (snap, tail) = Wal::load(&dir).unwrap();
    assert_eq!(tail.len(), 1, "the sealed segment replays");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut revived = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail)
        .unwrap()
        .with_sink(wal.clone());
    revived.try_apply(ts.get("Mk").unwrap(), &key("3")).unwrap();
    let delta = revived.checkpoint_delta();
    let job = wal.lock().unwrap().begin_checkpoint(CheckpointData::Incremental(delta)).unwrap();
    assert_eq!(job.seq(), 3, "the crashed job's sequence is never reused");
    job.run().unwrap();
    assert!(!dir.join("sealed-00000002.log").exists(), "covered segment pruned");
    assert!(!dir.join("delta-00000002.bin").exists(), "the crashed increment never landed");
    let crash_state = revived.snapshot().encode();
    drop((revived, wal));

    // The chain must still load — increment 3 declares it chains onto
    // the base (seq 1), so the missing seq 2 is not a lost increment.
    let (snap, tail) = Wal::load(&dir).unwrap();
    assert!(tail.is_empty());
    let recovered =
        Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail).unwrap();
    assert_eq!(recovered.snapshot().encode(), crash_state, "o2 must survive the crashed job");
    assert_eq!(recovered.db().num_objects(), 3);

    // A *genuinely* missing increment is still detected: resurrect the
    // situation where delta-3 chained onto delta-2 and delta-2 vanished.
    let d3 = std::fs::read(dir.join("delta-00000003.bin")).unwrap();
    std::fs::write(dir.join("delta-00000004.bin"), &d3).unwrap(); // wrong seq AND parent
    let err = Wal::load(&dir).err().expect("chain inconsistency must be detected");
    assert!(matches!(err, WalError::Corrupt(_)), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A crash can kill the **base** checkpoint job itself: the log was
/// sealed, `snapshot.bin` never landed. Recovery replays the sealed
/// segment from the empty monitor; a reopened `Wal` reports no base
/// and refuses increments until a full checkpoint re-establishes the
/// chain.
#[test]
fn crashed_base_checkpoint_job_recovers_and_reestablishes_base() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);
    let dir = temp_dir("base-crash");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
    for k in ["1", "2", "3"] {
        live.try_apply(ts.get("Mk").unwrap(), &key(k)).unwrap();
    }
    let job =
        wal.lock().unwrap().begin_checkpoint(CheckpointData::Full(live.checkpoint_full())).unwrap();
    drop(job); // crash: the snapshotter died before the job ran
    let crash_state = live.snapshot().encode();
    drop((live, wal));

    let (snap, tail) = Wal::load(&dir).unwrap();
    assert!(snap.is_none(), "the base never landed");
    assert_eq!(tail.len(), 3, "the sealed segment replays instead");
    let mut revived =
        Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail).unwrap();
    assert_eq!(revived.snapshot().encode(), crash_state);

    // The reopened log knows the chain has no base: increments are
    // refused until a full checkpoint re-establishes it.
    let mut wal = Wal::open(&dir).unwrap();
    assert!(!wal.has_base());
    let delta = revived.checkpoint_delta();
    assert!(
        matches!(
            wal.begin_checkpoint(CheckpointData::Incremental(delta)),
            Err(WalError::Mismatch(_))
        ),
        "an increment must not chain onto a missing base"
    );
    wal.begin_checkpoint(CheckpointData::Full(revived.checkpoint_full())).unwrap().run().unwrap();
    assert!(wal.has_base());
    // The chain works again: run a letter through a reattached sink,
    // take an increment, recover byte-identically.
    let wal = Arc::new(Mutex::new(wal));
    let mut revived = revived.with_sink(wal.clone());
    revived.try_apply(ts.get("Mk").unwrap(), &key("4")).unwrap();
    let delta = revived.checkpoint_delta();
    wal.lock()
        .unwrap()
        .begin_checkpoint(CheckpointData::Incremental(delta))
        .unwrap()
        .run()
        .unwrap();
    drop(wal);
    let (snap, tail) = Wal::load(&dir).unwrap();
    assert!(tail.is_empty(), "the increment pruned the covered records");
    let recovered =
        Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail).unwrap();
    assert_eq!(recovered.snapshot().encode(), revived.snapshot().encode());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compaction rewrites every record's cohort slot without touching the
/// objects; the incremental-checkpoint chain must still fold
/// byte-identically (the shard flips to a full record capture).
#[test]
fn incremental_checkpoints_survive_cohort_compaction() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
    "#,
    )
    .unwrap();
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);
    for kind in [PatternKind::All, PatternKind::Proper, PatternKind::Lazy] {
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut live = Monitor::new(&schema, &alphabet, &inv, kind).with_sink(wal.clone());
        let keys = ["a", "b", "c"];
        for k in keys {
            live.try_apply(ts.get("Mk").unwrap(), &key(k)).unwrap();
        }
        wal.lock().unwrap().write_snapshot(&live.snapshot());
        // Rotating toggles leave forwarder slots behind each fold/merge;
        // 300 of them force compaction (slot table bounded by 65).
        for i in 0..300 {
            let t = if i % 2 == 0 { "St" } else { "UnSt" };
            live.try_apply(ts.get(t).unwrap(), &key(keys[(i / 2) % keys.len()])).unwrap();
            if i % 40 == 39 {
                let delta = live.checkpoint_delta();
                wal.lock().unwrap().write_checkpoint_delta(&delta);
            }
        }
        let (snap, tail) = {
            let w = wal.lock().unwrap();
            (w.snapshot().unwrap(), w.records())
        };
        let recovered = Monitor::recover(&schema, &alphabet, &inv, kind, snap, tail).unwrap();
        assert_eq!(
            recovered.snapshot().encode(),
            live.snapshot().encode(),
            "chain across compaction not byte-identical under {kind}"
        );
    }
}

/// A failing sink aborts the commit atomically: nothing applied, nothing
/// tracked, nothing logged — and the monitor resumes cleanly once the
/// sink heals.
#[test]
fn sink_failure_rolls_back_and_heals() {
    use migratory::core::enforce::wal::FailingSink;
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let sink = Arc::new(Mutex::new(FailingSink::default()));
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);

    let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(sink.clone());
    m.try_apply(ts.get("Mk").unwrap(), &key("1")).unwrap();
    sink.lock().unwrap().fail = true;
    let before = m.snapshot().encode();
    let err = m.try_apply(ts.get("Mk").unwrap(), &key("2")).unwrap_err();
    assert!(matches!(err, EnforceError::Durability(_)), "got {err:?}");
    assert_eq!(m.snapshot().encode(), before, "failed commit left state behind");
    assert_eq!(m.db().num_objects(), 1);
    sink.lock().unwrap().fail = false;
    m.try_apply(ts.get("Mk").unwrap(), &key("2")).unwrap();
    assert_eq!(m.db().num_objects(), 2);
    assert_eq!(sink.lock().unwrap().accepted, 2);

    // Sharded batch: a failing sink rejects the whole block atomically.
    let sink = Arc::new(Mutex::new(FailingSink { fail: true, accepted: 0 }));
    let mut sm =
        ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 2).with_sink(sink.clone());
    let assigns: Vec<Assignment> = (0..4).map(|i| key(&format!("{i}"))).collect();
    let batch: Vec<(&Transaction, &Assignment)> =
        assigns.iter().map(|a| (ts.get("Mk").unwrap(), a)).collect();
    let (done, err) = sm.try_apply_batch(batch.clone());
    assert_eq!(done, 0);
    assert!(matches!(err, Some(EnforceError::Durability(_))));
    assert_eq!(sm.db().num_objects(), 0, "block rolled back");
    assert_eq!(sm.clocks(), vec![0, 0]);
    sink.lock().unwrap().fail = false;
    let (done, err) = sm.try_apply_batch(batch);
    assert_eq!((done, err), (4, None));
}

/// A durable certified monitor logs its (unchecked) applications and
/// recovers from a post-certification checkpoint, patterns frozen at
/// the certification horizon.
#[test]
fn certified_monitor_logs_and_recovers() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [STUDENT]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction T1(n, sv, t, mj) {
          create(PERSON, { SSN = sv, Name = n });
          specialize(PERSON, STUDENT, { SSN = sv }, { Major = mj, FirstEnroll = t });
        }
        transaction T4(sv) { delete(PERSON, { SSN = sv }); }
    "#,
    )
    .unwrap();
    let args = |k: &str| {
        Assignment::new(vec![Value::str("ann"), Value::str(k), Value::int(1990), Value::str("CS")])
    };
    let wal = Arc::new(Mutex::new(MemoryWal::new()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
    live.try_apply(ts.get("T1").unwrap(), &args("1")).unwrap();
    // Checkpoint BEFORE certification: the certification event reaches
    // the log as its own write-ahead marker record, so recovery from
    // this pre-certification snapshot must still freeze tracking at the
    // right letter instead of replaying certified blocks as checked.
    wal.lock().unwrap().write_snapshot(&live.snapshot());
    assert!(live.certify(&ts).unwrap());
    live.try_apply(ts.get("T1").unwrap(), &args("2")).unwrap();
    live.try_apply(ts.get("T4").unwrap(), &Assignment::new(vec![Value::str("1")])).unwrap();
    let (snap, records) = {
        let w = wal.lock().unwrap();
        (w.snapshot().unwrap().unwrap(), w.records())
    };
    assert_eq!(records.len(), 3, "two certified blocks plus the certification marker");
    assert!(records.iter().any(|r| matches!(r, WalRecord::Certified { steps: 1 })));
    let recovered =
        Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, Some(snap), records).unwrap();
    assert_eq!(recovered.snapshot().encode(), live.snapshot().encode());
    assert_eq!(recovered.db(), live.db());
    assert!(recovered.is_certified());
    assert_eq!(recovered.steps(), 3);
    assert_eq!(recovered.pattern_of(Oid(1)), live.pattern_of(Oid(1)));
    assert_eq!(recovered.pattern_of(Oid(1)).unwrap().len(), 1, "frozen at certification");
    assert!(recovered.pattern_of(Oid(2)).is_none(), "post-certification objects untracked");

    // An incremental checkpoint taken while certified must carry the
    // certified monitor's database changes (tracking is frozen but the
    // heap moves).
    let delta = live.checkpoint_delta();
    wal.lock().unwrap().write_checkpoint_delta(&delta);
    live.try_apply(ts.get("T1").unwrap(), &args("3")).unwrap();
    let (snap, records) = {
        let w = wal.lock().unwrap();
        (w.snapshot().unwrap(), w.records())
    };
    let recovered =
        Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, records).unwrap();
    assert_eq!(recovered.snapshot().encode(), live.snapshot().encode());

    // A failing sink vetoes certification itself (write-ahead marker).
    use migratory::core::enforce::wal::FailingSink;
    let sink = Arc::new(Mutex::new(FailingSink { fail: true, accepted: 0 }));
    let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(sink.clone());
    assert!(m.certify(&ts).is_err(), "unloggable certification must not take effect");
    assert!(!m.is_certified());
    sink.lock().unwrap().fail = false;
    assert!(m.certify(&ts).unwrap());
    assert!(m.is_certified());
}

/// Re-opening a log with a torn tail must truncate it before appending:
/// otherwise every post-reopen record hides behind the garbage and is
/// silently lost on the next recovery.
#[test]
fn reopening_a_torn_log_truncates_before_appending() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let dir = temp_dir("torn-reopen");
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);
    {
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
        let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
        m.try_apply(ts.get("Mk").unwrap(), &key("1")).unwrap();
        m.try_apply(ts.get("Mk").unwrap(), &key("2")).unwrap();
    }
    // Crash mid-append: garbage half-record at the end of the log.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(dir.join("wal.log")).unwrap();
        f.write_all(&[0x99, 0x03, 0x00, 0x00, 0xde, 0xad]).unwrap();
    }
    // Resume: the reopened log must drop the torn bytes, so the new
    // letter lands right after the two good records.
    {
        let (snap, tail) = Wal::load(&dir).unwrap();
        assert_eq!(tail.len(), 2, "torn tail dropped on load");
        let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
        let mut m = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail)
            .unwrap()
            .with_sink(wal.clone());
        m.try_apply(ts.get("Mk").unwrap(), &key("3")).unwrap();
    }
    let (snap, tail) = Wal::load(&dir).unwrap();
    assert_eq!(tail.len(), 3, "the post-reopen record must be recoverable");
    let m = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, snap, tail).unwrap();
    assert_eq!(m.steps(), 3);
    assert_eq!(m.db().num_objects(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Gap detection: a tail that skips a block is refused rather than
/// silently replayed out of order.
#[test]
fn recovery_rejects_wal_gaps() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }"#,
    )
    .unwrap();
    let wal = Arc::new(Mutex::new(MemoryWal::new()));
    let mut live = Monitor::new(&schema, &alphabet, &inv, PatternKind::All).with_sink(wal.clone());
    for k in ["1", "2", "3"] {
        live.try_apply(ts.get("Mk").unwrap(), &Assignment::new(vec![Value::str(k)])).unwrap();
    }
    let mut blocks = wal.lock().unwrap().records();
    blocks.remove(1); // lose the middle block
    let err = Monitor::recover(&schema, &alphabet, &inv, PatternKind::All, None, blocks)
        .err()
        .expect("gap must be detected");
    assert!(err.to_string().contains("gap"), "got {err}");
}

/// The bulk-load fast path (create-only transactions above the routing
/// threshold stage without a per-object touched map) must stay on the
/// durability contract: WAL **replay** runs the generic staging path,
/// so a recovered monitor is byte-identical only if the two paths
/// produce the same tracking state. Load above the threshold, mix in
/// regular follow-up letters, and crash-check single and sharded
/// monitors over a folding (Proper) and a non-folding (All) kind.
#[test]
fn bulk_load_recovery_is_byte_identical() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(
        &schema,
        &alphabet,
        "\u{2205}* ([PERSON] \u{222a} [STUDENT])* \u{2205}*",
    )
    .unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        "#,
    )
    .unwrap();
    // Above the bulk threshold (4096).
    let bulk = {
        use migratory::lang::AtomicUpdate;
        use migratory::model::{Atom, Condition};
        let person = schema.class_id("PERSON").unwrap();
        let ssn = schema.attr_id("SSN").unwrap();
        let updates: Vec<AtomicUpdate> = (0..4200)
            .map(|i| AtomicUpdate::Create {
                class: person,
                gamma: Condition::from_atoms([Atom::eq_const(ssn, format!("b{i}"))]),
            })
            .collect();
        Transaction::sl("BulkLoad", &[], updates)
    };
    let no_args = Assignment::empty();
    // (kind, shard count): 0 shards = single monitor.
    for (kind, shards) in
        [(PatternKind::All, 0usize), (PatternKind::All, 3), (PatternKind::Proper, 2)]
    {
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let seed = Assignment::new(vec![Value::str("seed")]);
        let follow = Assignment::new(vec![Value::str("b7")]);
        let (live_bytes, live_db, recovered) = if shards == 0 {
            let mut live = Monitor::new(&schema, &alphabet, &inv, kind).with_sink(wal.clone());
            live.try_apply(ts.get("Mk").unwrap(), &seed).unwrap();
            live.try_apply(&bulk, &no_args).unwrap();
            live.try_apply(ts.get("St").unwrap(), &follow).unwrap();
            let r = Monitor::recover(
                &schema,
                &alphabet,
                &inv,
                kind,
                None,
                wal.lock().unwrap().records(),
            )
            .unwrap_or_else(|e| panic!("{kind:?}: recovery failed: {e}"));
            (live.snapshot().encode(), live.db().clone(), (r.snapshot().encode(), r.db().clone()))
        } else {
            let mut live =
                ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards).with_sink(wal.clone());
            live.try_apply(ts.get("Mk").unwrap(), &seed).unwrap();
            live.try_apply(&bulk, &no_args).unwrap();
            live.try_apply(ts.get("St").unwrap(), &follow).unwrap();
            let r = ShardedMonitor::recover(
                &schema,
                &alphabet,
                &inv,
                kind,
                shards,
                None,
                wal.lock().unwrap().records(),
            )
            .unwrap_or_else(|e| panic!("{kind:?}/{shards}: recovery failed: {e}"));
            assert_eq!(r.clocks(), live.clocks());
            (live.snapshot().encode(), live.db().clone(), (r.snapshot().encode(), r.db().clone()))
        };
        assert_eq!(
            recovered.0, live_bytes,
            "{kind:?}/{shards} shards: bulk load not byte-identical after replay"
        );
        assert_eq!(recovered.1, live_db, "{kind:?}/{shards} shards: database diverged");
    }
}

// ---------------------------------------------------------------------
// Constraint evolution (`RedefineRecord`) crash suites
// ---------------------------------------------------------------------

use migratory::core::enforce::wal::BlockRef;
use migratory::core::enforce::ResiduePolicy;

/// Like [`assert_recovers_single`], but recovery is seeded with the
/// **base** (epoch-0) inventory: when the tail spans a `Redefined`
/// record, replay itself must reproduce the inventory swap — feeding
/// recovery the live monitor's *current* inventory would hide a broken
/// record.
fn assert_recovers_single_from_base(
    live: &Monitor<'_>,
    base: &Inventory,
    wal: &Arc<Mutex<MemoryWal>>,
    all_records: &[WalRecord],
    label: &str,
) {
    let (snap, blocks) = {
        let w = wal.lock().unwrap();
        (w.snapshot().expect("checkpoint chain folds"), w.records())
    };
    let recovered =
        Monitor::recover(live.schema(), live.alphabet(), base, live.kind(), snap.clone(), blocks)
            .unwrap_or_else(|e| panic!("{label}: recovery failed: {e}"))
            .with_policy(live.policy());
    assert_eq!(
        recovered.snapshot().encode(),
        live.snapshot().encode(),
        "{label}: tracking state not byte-identical after recovery"
    );
    assert_eq!(recovered.db(), live.db(), "{label}: database diverged");
    assert_eq!(recovered.steps(), live.steps(), "{label}: letter counts diverged");
    assert_eq!(recovered.epoch(), live.epoch(), "{label}: epoch diverged");
    assert_eq!(recovered.redefine_total(), live.redefine_total(), "{label}");
    assert_eq!(recovered.quarantined_total(), live.quarantined_total(), "{label}");
    assert_eq!(
        recovered.inventory().encode(),
        live.inventory().encode(),
        "{label}: recovered inventory diverged"
    );
    for oid in 1..=live.db().next_oid().0 {
        assert_eq!(
            recovered.pattern_of(Oid(oid)),
            live.pattern_of(Oid(oid)),
            "{label}: pattern of o{oid} diverged"
        );
    }
    // Full-history replay must skip folded blocks AND folded
    // redefinitions (epoch-stamped skip, the checkpoint-without-prune
    // window).
    let again = Monitor::recover(
        live.schema(),
        live.alphabet(),
        base,
        live.kind(),
        snap,
        all_records.to_vec(),
    )
    .unwrap_or_else(|e| panic!("{label}: full-history recovery failed: {e}"))
    .with_policy(live.policy());
    assert_eq!(
        again.snapshot().encode(),
        live.snapshot().encode(),
        "{label}: pre-checkpoint records were not skipped"
    );
}

/// 50 random configurations with **redefinitions sprinkled mid-run**,
/// crash-tested at every committed prefix: a log spanning any number of
/// `Redefined` records (interleaved with blocks, full and incremental
/// checkpoints) recovers byte-identically from the epoch-0 inventory —
/// epoch, totals, swapped automaton, quarantined cohorts and all.
#[test]
fn redefined_monitor_recovers_byte_identical_at_every_crash_point() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0051);
    let (mut commits, mut redefines, mut post_redefine_crashes, mut increments) =
        (0usize, 0usize, 0usize, 0usize);
    for case in 0..50 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let base = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut live = Monitor::new(&schema, &alphabet, &base, kind)
            .with_policy(policy)
            .with_sink(wal.clone());
        let no_args = Assignment::empty();
        let mut folded_records: Vec<WalRecord> = Vec::new();
        let mut has_base = false;
        for step in 0..rng.random_range(6usize..16) {
            // Redefine with probability ~1/4 (refusals are fine — they
            // must leave the log untouched and recovery unaffected).
            if rng.random_range(0u32..4) == 0 {
                let next = random_inventory(&mut rng, &schema, &alphabet);
                let residue_policy = if rng.random_range(0u32..2) == 0 {
                    ResiduePolicy::Quarantine
                } else {
                    ResiduePolicy::CertifyAndReset
                };
                match live.redefine(&next, residue_policy) {
                    Ok(out) => {
                        assert_eq!(out.epoch, live.epoch(), "case {case}");
                        redefines += 1;
                    }
                    Err(EnforceError::Redefine(_)) => {}
                    Err(e) => panic!("case {case}: unexpected {e}"),
                }
            }
            let t = common::random_transaction(&mut rng, &schema, &edges);
            match live.try_apply(&t, &no_args) {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => {}
                Err(e) => panic!("unexpected {e}"),
            }
            if rng.random_range(0u32..4) == 0 {
                folded_records.extend(wal.lock().unwrap().records());
                if has_base && rng.random_range(0u32..3) != 0 {
                    let delta = live.checkpoint_delta();
                    wal.lock().unwrap().write_checkpoint_delta(&delta);
                    increments += 1;
                } else {
                    let snap = live.checkpoint_full();
                    wal.lock().unwrap().write_snapshot(&snap);
                    has_base = true;
                }
            }
            post_redefine_crashes += usize::from(live.epoch() > 0);
            let all_records: Vec<WalRecord> =
                folded_records.iter().cloned().chain(wal.lock().unwrap().records()).collect();
            assert_recovers_single_from_base(
                &live,
                &base,
                &wal,
                &all_records,
                &format!("case {case} step {step}"),
            );
        }
    }
    assert!(commits > 150, "only {commits} commits — workload too restrictive");
    assert!(redefines > 30, "only {redefines} admitted redefinitions — suite not exercised");
    assert!(post_redefine_crashes > 100, "crashes after a redefinition untested");
    assert!(increments > 15, "only {increments} incremental checkpoints taken");
}

/// Sharded + batched + redefined: random batch admission with redefines
/// at random block boundaries over single- and multi-component schemas
/// (independent per-shard clocks — the `Redefined` record carries every
/// shard's clock), crash-checked after every block from the epoch-0
/// inventory.
#[test]
fn sharded_redefined_recovery_is_byte_identical() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0052);
    let (mut batch_commits, mut redefines) = (0usize, 0usize);
    for case in 0..40 {
        let multi = rng.random_range(0u32..2) == 1;
        let (schema, edges, extra) = if multi {
            random_multi_schema(&mut rng)
        } else {
            let (s, e) = random_schema(&mut rng);
            (s, e, 0)
        };
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let base = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5);
        let wal = Arc::new(Mutex::new(MemoryWal::new()));
        let mut live = ShardedMonitor::new(&schema, &alphabet, &base, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(rng.random_range(0u32..2) == 1)
            .with_sink(wal.clone());
        let shards = live.num_shards();
        let no_args = Assignment::empty();
        let txns: Vec<Transaction> = (0..rng.random_range(6usize..18))
            .map(|_| random_multi_transaction(&mut rng, &schema, &edges, extra))
            .collect();
        let mut has_base = false;
        let mut pos = 0;
        let mut block_no = 0usize;
        while pos < txns.len() {
            if rng.random_range(0u32..4) == 0 {
                let next = random_inventory(&mut rng, &schema, &alphabet);
                let residue_policy = if rng.random_range(0u32..2) == 0 {
                    ResiduePolicy::Quarantine
                } else {
                    ResiduePolicy::CertifyAndReset
                };
                match live.redefine(&next, residue_policy) {
                    Ok(_) => redefines += 1,
                    Err(EnforceError::Redefine(_)) => {}
                    Err(e) => panic!("case {case}: unexpected {e}"),
                }
            }
            let size = rng.random_range(1usize..(txns.len() - pos).min(5) + 1);
            let block = &txns[pos..pos + size];
            let (done, _) = live.try_apply_batch(block.iter().map(|t| (t, &no_args)));
            batch_commits += done;
            pos += size;
            if rng.random_range(0u32..3) == 0 {
                if has_base && rng.random_range(0u32..3) != 0 {
                    let delta = live.checkpoint_delta();
                    wal.lock().unwrap().write_checkpoint_delta(&delta);
                } else {
                    let snap = live.checkpoint_full();
                    wal.lock().unwrap().write_snapshot(&snap);
                    has_base = true;
                }
            }
            block_no += 1;
            let (snap, blocks) = {
                let w = wal.lock().unwrap();
                (w.snapshot().expect("checkpoint chain folds"), w.records())
            };
            let recovered =
                ShardedMonitor::recover(&schema, &alphabet, &base, kind, shards, snap, blocks)
                    .unwrap_or_else(|e| panic!("case {case} block {block_no}: {e}"))
                    .with_policy(policy);
            assert_eq!(
                recovered.snapshot().encode(),
                live.snapshot().encode(),
                "case {case} block {block_no}: shard states not byte-identical"
            );
            assert_eq!(recovered.db(), live.db());
            assert_eq!(recovered.clocks(), live.clocks());
            assert_eq!(recovered.epoch(), live.epoch());
            assert_eq!(recovered.quarantined_total(), live.quarantined_total());
            for oid in 1..=live.db().next_oid().0 {
                assert_eq!(recovered.pattern_of(Oid(oid)), live.pattern_of(Oid(oid)));
            }
        }
    }
    assert!(batch_commits > 100, "only {batch_commits} batch commits");
    assert!(redefines > 20, "only {redefines} admitted redefinitions — suite not exercised");
}

/// File-backed torn-tail semantics across a `RedefineRecord`: truncate
/// `wal.log` at **every byte length** of a run whose log contains a
/// mid-stream redefinition, and require recovery (from the epoch-0
/// inventory) to land exactly on a committed record prefix — before,
/// on, or after the redefinition, never half of it.
#[test]
fn file_wal_truncation_across_a_redefine_record_recovers_every_prefix() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let base =
        Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
    let next = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
        transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
        transaction Rm(x) { delete(PERSON, { SSN = x }); }
    "#,
    )
    .unwrap();
    let dir = temp_dir("torn-redefine");
    let wal = Arc::new(Mutex::new(Wal::open(&dir).unwrap()));
    let mut live = Monitor::new(&schema, &alphabet, &base, PatternKind::All).with_sink(wal.clone());

    // Canonical state after each appended record (blocks AND the
    // redefinition — a zero-letter record, so keying by record count,
    // not letter count, is what distinguishes pre- from post-swap).
    let mut state_at: Vec<Vec<u8>> = vec![live.snapshot().encode()];
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);
    for (name, k) in [("Mk", "1"), ("St", "1"), ("Mk", "2"), ("UnSt", "1")] {
        live.try_apply(ts.get(name).unwrap(), &key(k)).unwrap();
        state_at.push(live.snapshot().encode());
    }
    let out = live.redefine(&next, ResiduePolicy::Quarantine).unwrap();
    assert_eq!(out.epoch, 1);
    state_at.push(live.snapshot().encode());
    for (name, k) in [("Mk", "3"), ("Rm", "2"), ("Rm", "3")] {
        live.try_apply(ts.get(name).unwrap(), &key(k)).unwrap();
        state_at.push(live.snapshot().encode());
    }
    let live_state = live.snapshot().encode();
    drop(wal); // flush + close the writer
    drop(live);

    let log = std::fs::read(dir.join("wal.log")).unwrap();
    let mut prefixes_seen = std::collections::BTreeSet::new();
    for cut in 0..=log.len() {
        let records = migratory::core::enforce::wal::decode_records(&log[..cut])
            .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let n = records.len();
        let recovered =
            Monitor::recover(&schema, &alphabet, &base, PatternKind::All, None, records)
                .unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(
            recovered.snapshot().encode(),
            state_at[n],
            "cut at {cut} bytes must recover the exact state after {n} records"
        );
        assert_eq!(recovered.epoch(), u64::from(n >= 5), "cut {cut}: epoch swaps at record 5");
        prefixes_seen.insert(n);
    }
    assert_eq!(
        prefixes_seen.into_iter().collect::<Vec<_>>(),
        (0..=state_at.len() - 1).collect::<Vec<_>>(),
        "every record prefix is reachable by some truncation"
    );
    // The full log lands on the live state.
    let (snap, tail) = Wal::load(&dir).unwrap();
    let recovered =
        Monitor::recover(&schema, &alphabet, &base, PatternKind::All, snap, tail).unwrap();
    assert_eq!(recovered.snapshot().encode(), live_state);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A sink that appends every record to an inner [`MemoryWal`] but
/// **reports failure for the redefinition record after writing it** —
/// the exact crash window between the write-ahead append and the
/// in-memory tracking swap.
struct DieAfterRedefineAppend {
    inner: MemoryWal,
    armed: bool,
}

impl migratory::core::enforce::wal::CommitSink for DieAfterRedefineAppend {
    fn committed(&mut self, block: &BlockRef<'_>) -> Result<(), WalError> {
        self.inner.committed(block)
    }
    fn certified(&mut self, steps: usize) -> Result<(), WalError> {
        self.inner.certified(steps)
    }
    fn redefined(
        &mut self,
        epoch: u64,
        policy: ResiduePolicy,
        shards: &[(u32, usize)],
        inventory: &[u8],
    ) -> Result<(), WalError> {
        self.inner.redefined(epoch, policy, shards, inventory)?;
        if self.armed {
            return Err(WalError::Corrupt("crash after the record append".into()));
        }
        Ok(())
    }
}

/// The crash window **between the `RedefineRecord` append and the
/// tracking swap**: the record is durable, the swap never happened. The
/// live monitor must report the failure and keep enforcing the OLD
/// inventory at epoch 0 — while recovery from the log replays the
/// record and lands on the post-swap state, byte-identical to a monitor
/// whose redefinition completed.
#[test]
fn crash_between_redefine_append_and_swap_replays_the_redefinition() {
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let base =
        Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* [STUDENT]* [PERSON]* ∅*").unwrap();
    let next = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) {
          specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS", FirstEnroll = 1 });
        }
    "#,
    )
    .unwrap();
    let key = |k: &str| Assignment::new(vec![Value::str(k)]);
    let sink =
        Arc::new(Mutex::new(DieAfterRedefineAppend { inner: MemoryWal::new(), armed: false }));
    let mut live =
        Monitor::new(&schema, &alphabet, &base, PatternKind::All).with_sink(sink.clone());
    // An oracle that runs the same history with the swap completing.
    let mut oracle = Monitor::new(&schema, &alphabet, &base, PatternKind::All);
    for (name, k) in [("Mk", "1"), ("St", "1"), ("Mk", "2")] {
        live.try_apply(ts.get(name).unwrap(), &key(k)).unwrap();
        oracle.try_apply(ts.get(name).unwrap(), &key(k)).unwrap();
    }
    sink.lock().unwrap().armed = true;
    let err = live.redefine(&next, ResiduePolicy::Quarantine).unwrap_err();
    assert!(matches!(err, EnforceError::Durability(_)), "got {err:?}");
    // The live monitor never swapped: old inventory, epoch 0 — a
    // [STUDENT] specialization on o2 is still legal.
    assert_eq!(live.epoch(), 0);
    assert_eq!(live.redefine_total(), 0);
    sink.lock().unwrap().armed = false;
    live.try_apply(ts.get("St").unwrap(), &key("2")).unwrap();

    // …but the record IS in the log: recovery up to the redefinition
    // replays the swap, byte-identical to the oracle completing it.
    let records = sink.lock().unwrap().inner.records();
    assert_eq!(records.len(), 5, "three blocks, the redefinition, the post-crash block");
    let upto_redefine: Vec<WalRecord> = records[..4].to_vec();
    let out = oracle.redefine(&next, ResiduePolicy::Quarantine).unwrap();
    assert_eq!((out.epoch, out.residue, out.quarantined), (1, 1, 1), "o1 is [PERSON][STUDENT]");
    let recovered =
        Monitor::recover(&schema, &alphabet, &base, PatternKind::All, None, upto_redefine).unwrap();
    assert_eq!(recovered.epoch(), 1, "the durable record replays");
    assert_eq!(recovered.snapshot().encode(), oracle.snapshot().encode());
    assert_eq!(recovered.quarantined_total(), 1);
    // Post-swap, the recovered monitor enforces the NEW inventory: the
    // same [STUDENT] specialization the live (unswapped) monitor
    // admitted is now a violation quoting the new epoch.
    let mut recovered = recovered;
    match recovered.try_apply(ts.get("St").unwrap(), &key("2")) {
        Err(EnforceError::Violation(v)) => {
            assert_eq!(v.epoch, 1, "violation quotes the post-swap epoch");
            assert!(v.display(&alphabet).ends_with("[epoch 1]"), "{}", v.display(&alphabet));
        }
        other => panic!("expected a violation under the new inventory, got {other:?}"),
    }
    // The full log (redefinition + the block the unswapped live monitor
    // admitted after it) does NOT recover: the post-crash block was
    // admitted under the old automaton and no longer admits — the log
    // records a history the swapped monitor refuses, which recovery
    // must surface as a mismatch rather than silently accept.
    let err = Monitor::recover(&schema, &alphabet, &base, PatternKind::All, None, records)
        .err()
        .expect("divergent post-crash history must be detected");
    assert!(matches!(err, WalError::Mismatch(_)), "got {err}");
}

//! The fault matrix: every injectable I/O site × {transient, persistent},
//! exercised under pipelined load through the real admission path
//! (`enforce::ingress::serve_guarded` with a real on-disk [`Wal`]).
//!
//! The invariants this file locks down:
//!
//! * **No lying acks.** In durable mode, `ok` is never sent for an op
//!   whose block did not reach the WAL — after every injected failure,
//!   folding the directory back equals a fresh monitor fed exactly the
//!   acked ops, byte for byte (the uncrashed oracle).
//! * **Transient faults are absorbed.** A fault that clears within the
//!   retry budget costs retries, never acks and never degrades.
//! * **Persistent append faults degrade, visibly.** The server flips to
//!   read-only, refuses loudly, and resumes after the operator clears
//!   the fault and re-arms — with the resumed acks durable too.
//! * **Checkpoint faults never block admission.** A dead checkpoint
//!   pipeline surfaces in [`Health`], while appends (and therefore
//!   acks) keep flowing, and recovery still replays the uncovered log.

use migratory::core::enforce::{
    ingress, CheckpointData, DurabilityPolicy, EnforceError, FaultKind, FaultSite, FsyncPolicy,
    Health, IngressConfig, IoFaults, ShardedMonitor, Snapshotter, Wal,
};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{parse_transactions, Assignment};
use migratory::model::text::parse_schema;
use migratory::model::Value;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SCHEMA: &str = r"
schema Uni {
  class PERSON { SSN }
  class STUDENT isa PERSON { }
}";
const TX: &str = "transaction Mk(x) { create(PERSON, { SSN = x }); }";
const INV: &str = "∅* [PERSON]* ∅*";
const SHARDS: usize = 2;

/// What a run of one matrix cell observed.
struct Outcome {
    /// Keys whose ops were acknowledged `ok`, in admission order.
    acked: Vec<String>,
    /// Ops refused with `EnforceError::Degraded`.
    refused: usize,
    /// Whether the server entered degraded mode at any point.
    degraded: bool,
    /// Append retries spent by the admission worker.
    retries: usize,
    /// The sticky checkpoint failure, if the pipeline recorded one.
    checkpoint_failed: Option<String>,
    /// Result of `Snapshotter::finish` (Err = the worker gave up).
    finish_failed: bool,
}

/// A fresh monitor fed exactly `acked`, in order — the uncrashed oracle.
fn oracle(acked: &[String]) -> Vec<u8> {
    let schema = parse_schema(SCHEMA).unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, INV).unwrap();
    let ts = parse_transactions(&schema, TX).unwrap();
    let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, SHARDS);
    for key in acked {
        m.try_apply(ts.get("Mk").unwrap(), &Assignment::new(vec![Value::str(key)]))
            .expect("acked ops conform");
    }
    m.snapshot().encode()
}

/// Fold the WAL directory back and return the canonical state bytes.
fn recovered(dir: &std::path::Path) -> Vec<u8> {
    let schema = parse_schema(SCHEMA).unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, INV).unwrap();
    let (snap, tail) = Wal::load(dir).expect("load survives any injected failure");
    ShardedMonitor::recover(&schema, &alphabet, &inv, PatternKind::All, SHARDS, snap, tail)
        .expect("recover")
        .snapshot()
        .encode()
}

/// Run one matrix cell: serve 16 pipelined creations (one per block,
/// so WAL calls are deterministic) with `site` scheduled to fail from
/// its `from_nth`-th call on, incremental checkpoints every 2 blocks,
/// an append retry budget of 2 and a checkpoint retry budget of 3. If
/// the run degrades, clear the fault, re-arm, and push 4 more ops.
fn run_case(dir: &std::path::Path, site: FaultSite, from_nth: u64, kind: FaultKind) -> Outcome {
    let schema = parse_schema(SCHEMA).unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, INV).unwrap();
    let ts = parse_transactions(&schema, TX).unwrap();
    let mut monitor = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, SHARDS);

    let faults = IoFaults::new().fail(site, from_nth, kind);
    let wal = Wal::open(dir).unwrap().with_sync(true).with_faults(faults.clone());
    let wal = Arc::new(Mutex::new(wal));
    monitor = monitor.with_sink(wal.clone());
    let health = Arc::new(Health::new());
    let mut snapshotter =
        Snapshotter::spawn_with(3, Duration::from_millis(1), Some(health.clone()));
    let base = wal
        .lock()
        .unwrap()
        .begin_checkpoint(CheckpointData::Full(monitor.checkpoint_full()))
        .expect("staging the base checkpoint does no I/O");
    snapshotter.submit(base).unwrap();

    let policy = DurabilityPolicy { retries: 2, backoff: Duration::from_millis(1) };
    let config = IngressConfig { queue_capacity: 64, max_block: 1 };
    let maintenance_wal = wal.clone();
    let maintenance_health = health.clone();
    let snapshotter_slot = &mut snapshotter;
    let ((acked, refused, degraded), stats) = ingress::serve_guarded(
        &mut monitor,
        &config,
        &policy,
        &health,
        2,
        move |m| {
            let delta = m.checkpoint_delta();
            let touched = delta.oids();
            match maintenance_wal
                .lock()
                .unwrap()
                .begin_checkpoint(CheckpointData::Incremental(delta))
            {
                Ok(job) => {
                    if let Err(e) = snapshotter_slot.submit(job) {
                        maintenance_health.checkpoint_failed(&e);
                    }
                }
                Err(e) => {
                    // The drained delta never reached the chain: restore
                    // the dirty tracking or the next prune loses it.
                    m.restore_dirty(&touched);
                    maintenance_health.checkpoint_failed(&e);
                }
            }
        },
        |client| {
            let mk = ts.get("Mk").unwrap();
            let post = |k: &str| client.post(mk, Assignment::new(vec![Value::str(k)]));
            let mut acked = Vec::new();
            let mut refused = 0usize;
            for batch in 0..4 {
                // Pipelined: a whole window is in flight before the
                // first reply is read.
                let keys: Vec<String> = (0..4).map(|i| format!("k{batch}{i}")).collect();
                let tickets: Vec<_> = keys.iter().map(|k| post(k)).collect();
                for (key, ticket) in keys.iter().zip(tickets) {
                    match ticket.wait() {
                        Ok(()) => acked.push(key.clone()),
                        Err(EnforceError::Degraded(_)) => refused += 1,
                        Err(e) => panic!("injected faults surface as ok or degraded, got {e}"),
                    }
                }
            }
            // Operator story: a degraded server resumes after the fault
            // is cleared ("disk replaced") and the flag re-armed — and
            // the resumed acks must be just as durable.
            let degraded = health.is_degraded();
            if degraded {
                faults.clear();
                assert!(health.rearm(), "the degraded flag was set");
                for i in 0..4 {
                    let key = format!("r{i}");
                    post(&key).wait().expect("a re-armed server admits again");
                    acked.push(key);
                }
            }
            (acked, refused, degraded)
        },
    );
    let finish_failed = snapshotter.finish().is_err();
    drop(monitor);
    Outcome {
        acked,
        refused,
        degraded,
        retries: stats.retries,
        checkpoint_failed: health.checkpoint().failed,
        finish_failed,
    }
}

/// [`run_case`] through the two-stage pipeline
/// (`ingress::serve_pipelined`): the committer thread owns every WAL
/// call, acks are released only after its batch fsync, and a degraded
/// server resyncs its tracking against the durable log when the
/// operator re-arms. The driver posts serially (one op in flight) so
/// the committer's WAL call sequence is deterministic — append/sync
/// call N belongs to op N — and every cell's counts are exact.
fn run_case_pipelined(
    dir: &std::path::Path,
    site: FaultSite,
    from_nth: u64,
    kind: FaultKind,
) -> Outcome {
    let schema = parse_schema(SCHEMA).unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, INV).unwrap();
    let ts = parse_transactions(&schema, TX).unwrap();
    let mut monitor = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, SHARDS);

    let faults = IoFaults::new().fail(site, from_nth, kind);
    let wal = Wal::open(dir).unwrap().with_fsync(FsyncPolicy::Batch).with_faults(faults.clone());
    let wal = Arc::new(Mutex::new(wal));
    let health = Arc::new(Health::new());
    let mut snapshotter =
        Snapshotter::spawn_with(3, Duration::from_millis(1), Some(health.clone()));
    let base = wal
        .lock()
        .unwrap()
        .begin_checkpoint(CheckpointData::Full(monitor.checkpoint_full()))
        .expect("staging the base checkpoint does no I/O");
    snapshotter.submit(base).unwrap();

    let policy = DurabilityPolicy { retries: 2, backoff: Duration::from_millis(1) };
    let config = IngressConfig { queue_capacity: 64, max_block: 1 };
    let maintenance_wal = wal.clone();
    let maintenance_health = health.clone();
    let snapshotter_slot = &mut snapshotter;
    let ((acked, refused, degraded), stats) = ingress::serve_pipelined(
        &mut monitor,
        &config,
        &policy,
        &health,
        wal.clone(),
        None,
        2,
        move |m| {
            let delta = m.checkpoint_delta();
            let touched = delta.oids();
            match maintenance_wal
                .lock()
                .unwrap()
                .begin_checkpoint(CheckpointData::Incremental(delta))
            {
                Ok(job) => {
                    if let Err(e) = snapshotter_slot.submit(job) {
                        maintenance_health.checkpoint_failed(&e);
                    }
                }
                Err(e) => {
                    m.restore_dirty(&touched);
                    maintenance_health.checkpoint_failed(&e);
                }
            }
        },
        |client| {
            let mk = ts.get("Mk").unwrap();
            let mut acked = Vec::new();
            let mut refused = 0usize;
            for i in 0..16 {
                let key = format!("k{i:02}");
                match client.post(mk, Assignment::new(vec![Value::str(&key)])).wait() {
                    Ok(()) => acked.push(key),
                    Err(EnforceError::Degraded(_)) => refused += 1,
                    Err(e) => panic!("injected faults surface as ok or degraded, got {e}"),
                }
            }
            let degraded = health.is_degraded();
            if degraded {
                faults.clear();
                assert!(health.rearm(), "the degraded flag was set");
                for i in 0..4 {
                    let key = format!("r{i}");
                    client
                        .post(mk, Assignment::new(vec![Value::str(&key)]))
                        .wait()
                        .expect("a re-armed pipelined server resyncs and admits again");
                    acked.push(key);
                }
            }
            (acked, refused, degraded)
        },
    );
    let finish_failed = snapshotter.finish().is_err();
    drop(monitor);
    Outcome {
        acked,
        refused,
        degraded,
        retries: stats.retries,
        checkpoint_failed: health.checkpoint().failed,
        finish_failed,
    }
}

/// One scratch directory per cell, torn down on success.
fn with_dir(name: &str, f: impl FnOnce(&std::path::Path)) {
    let dir = std::env::temp_dir().join(format!("migratory-faults-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    f(&dir);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Append-path sites fail the op's own WAL call; checkpoint-path sites
/// fail the background pipeline. Each has its own contract.
fn is_append_site(site: FaultSite) -> bool {
    matches!(site, FaultSite::AppendWrite | FaultSite::AppendSync)
}

#[test]
fn every_site_transient_is_absorbed_and_byte_identical() {
    for site in FaultSite::ALL {
        // Append calls are per-op (from the 6th op); checkpoint calls
        // are per-job (from the 2nd job, so the base succeeds).
        let from_nth = if is_append_site(site) { 6 } else { 2 };
        with_dir(&format!("t-{site}"), |dir| {
            let out = run_case(dir, site, from_nth, FaultKind::Transient(1));
            assert_eq!(out.acked.len(), 16, "{site}: a transient fault loses no ops");
            assert_eq!(out.refused, 0, "{site}: a transient fault refuses nothing");
            assert!(!out.degraded, "{site}: a transient fault never degrades");
            if is_append_site(site) {
                assert!(out.retries >= 1, "{site}: the absorbed failure cost a retry");
                assert!(out.checkpoint_failed.is_none(), "{site}: checkpoints unaffected");
                assert!(!out.finish_failed, "{site}: the snapshotter outlives the fault");
            }
            // Staging faults (seal) are recorded even when the next
            // cadence succeeds; job-side faults are retried invisibly.
            if matches!(
                site,
                FaultSite::CheckpointWrite
                    | FaultSite::CheckpointSync
                    | FaultSite::CheckpointRename
                    | FaultSite::CheckpointPrune
            ) {
                assert!(out.checkpoint_failed.is_none(), "{site}: absorbed by the job retry");
                assert!(!out.finish_failed, "{site}: the snapshotter outlives the fault");
            }
            assert_eq!(
                recovered(dir),
                oracle(&out.acked),
                "{site}: recovery must be byte-identical to the acked history"
            );
        });
    }
}

#[test]
fn persistent_append_faults_degrade_then_resume_byte_identical() {
    for site in [FaultSite::AppendWrite, FaultSite::AppendSync] {
        with_dir(&format!("p-{site}"), |dir| {
            let out = run_case(dir, site, 6, FaultKind::Persistent);
            // Ops 1–5 appended; op 6 exhausted its 2 retries and
            // degraded the server; ops 6–16 were refused; the 4
            // post-re-arm ops were admitted again.
            assert!(out.degraded, "{site}: a persistent append fault degrades");
            assert_eq!(out.acked.len(), 5 + 4, "{site}: acked = pre-fault + post-re-arm");
            assert_eq!(out.refused, 11, "{site}: everything in between refused loudly");
            assert_eq!(out.retries, 2, "{site}: the budget was spent before degrading");
            assert!(out.checkpoint_failed.is_none(), "{site}: checkpoints unaffected");
            assert_eq!(
                recovered(dir),
                oracle(&out.acked),
                "{site}: refusals leave no trace; resumed acks are durable"
            );
        });
    }
}

#[test]
fn persistent_checkpoint_faults_surface_without_blocking_admission() {
    for site in [
        FaultSite::SealRename,
        FaultSite::CheckpointWrite,
        FaultSite::CheckpointSync,
        FaultSite::CheckpointRename,
        FaultSite::CheckpointPrune,
    ] {
        with_dir(&format!("p-{site}"), |dir| {
            let out = run_case(dir, site, 2, FaultKind::Persistent);
            assert_eq!(out.acked.len(), 16, "{site}: checkpoint faults never refuse writes");
            assert_eq!(out.refused, 0, "{site}: admission is not the checkpoint pipeline");
            assert!(!out.degraded, "{site}: degraded mode is for the append path");
            assert!(
                out.checkpoint_failed.is_some(),
                "{site}: a dead checkpoint pipeline is visible, not silent"
            );
            if !matches!(site, FaultSite::SealRename) {
                // The worker exhausted its retries and stopped; seal
                // faults fail at staging, so the worker never sees them.
                assert!(out.finish_failed, "{site}: finish reports the job the worker gave up on");
            }
            assert_eq!(
                recovered(dir),
                oracle(&out.acked),
                "{site}: the uncovered log replays — nothing acked is lost"
            );
        });
    }
}

#[test]
fn pipelined_every_site_transient_is_absorbed_and_byte_identical() {
    for site in FaultSite::ALL {
        let from_nth = if is_append_site(site) { 6 } else { 2 };
        with_dir(&format!("pt-{site}"), |dir| {
            let out = run_case_pipelined(dir, site, from_nth, FaultKind::Transient(1));
            assert_eq!(out.acked.len(), 16, "{site}: a transient fault loses no ops");
            assert_eq!(out.refused, 0, "{site}: a transient fault refuses nothing");
            assert!(!out.degraded, "{site}: a transient fault never degrades");
            if is_append_site(site) {
                assert!(out.retries >= 1, "{site}: the committer absorbed it with a retry");
                assert!(out.checkpoint_failed.is_none(), "{site}: checkpoints unaffected");
                assert!(!out.finish_failed, "{site}: the snapshotter outlives the fault");
            }
            assert_eq!(
                recovered(dir),
                oracle(&out.acked),
                "{site}: pipelined recovery must be byte-identical to the acked history"
            );
        });
    }
}

#[test]
fn pipelined_persistent_append_faults_degrade_then_resync_byte_identical() {
    // Under `--fsync batch` both sites sit on the committer thread: the
    // append (write) or the batch fdatasync. Either way the batch's
    // tickets are refused — never acked — the worker's run-ahead
    // tracking is wound back to the durable prefix on re-arm, and the
    // resumed acks land on a log that replays exactly the acked set.
    for site in [FaultSite::AppendWrite, FaultSite::AppendSync] {
        with_dir(&format!("pp-{site}"), |dir| {
            let out = run_case_pipelined(dir, site, 6, FaultKind::Persistent);
            assert!(out.degraded, "{site}: a persistent committer fault degrades");
            assert_eq!(out.acked.len(), 5 + 4, "{site}: acked = pre-fault + post-re-arm");
            assert_eq!(out.refused, 11, "{site}: everything in between refused loudly");
            assert_eq!(out.retries, 2, "{site}: the budget was spent before degrading");
            assert!(out.checkpoint_failed.is_none(), "{site}: checkpoints unaffected");
            assert_eq!(
                recovered(dir),
                oracle(&out.acked),
                "{site}: the re-armed server resynced to the durable prefix"
            );
        });
    }
}

#[test]
fn pipelined_persistent_checkpoint_faults_do_not_block_the_committer() {
    for site in [
        FaultSite::SealRename,
        FaultSite::CheckpointWrite,
        FaultSite::CheckpointSync,
        FaultSite::CheckpointRename,
        FaultSite::CheckpointPrune,
    ] {
        with_dir(&format!("pc-{site}"), |dir| {
            let out = run_case_pipelined(dir, site, 2, FaultKind::Persistent);
            assert_eq!(out.acked.len(), 16, "{site}: checkpoint faults never refuse writes");
            assert_eq!(out.refused, 0, "{site}: admission is not the checkpoint pipeline");
            assert!(!out.degraded, "{site}: degraded mode is for the append path");
            assert!(
                out.checkpoint_failed.is_some(),
                "{site}: a dead checkpoint pipeline is visible, not silent"
            );
            assert_eq!(
                recovered(dir),
                oracle(&out.acked),
                "{site}: the uncovered log replays — nothing acked is lost"
            );
        });
    }
}

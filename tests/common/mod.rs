//! Shared randomized generators for the enforcement test suites
//! (`delta_monitor.rs`, `wal_recovery.rs`): random single- and
//! multi-component schemas, random regular inventories over their role
//! alphabets, and random ground SL transactions over a small key pool
//! (collisions intended). Deterministic via the caller's seeded rng.
#![allow(dead_code)]

use migratory::automata::Regex;
use migratory::core::{Inventory, RoleAlphabet};
use migratory::lang::{AtomicUpdate, Transaction};
use migratory::model::{Atom, ClassId, Condition, Schema, SchemaBuilder};
use rand::rngs::StdRng;
use rand::RngExt as _;

/// A random single-component hierarchy: root `C0(K, A)` plus 1–4
/// subclasses, each hanging off a random earlier class and owning one
/// fresh attribute.
pub fn random_schema(rng: &mut StdRng) -> (Schema, Vec<(ClassId, ClassId)>) {
    let mut b = SchemaBuilder::new();
    let root = b.class("C0", &["K", "A"]).expect("fresh root");
    let mut classes = vec![root];
    let mut edges = Vec::new();
    for i in 0..rng.random_range(1usize..5) {
        let parent = classes[rng.random_range(0..classes.len())];
        let attr = format!("X{i}");
        let c = b.subclass(&format!("C{}", i + 1), &[parent], &[&attr]).expect("fresh subclass");
        classes.push(c);
        edges.push((parent, c));
    }
    (b.build().expect("valid hierarchy"), edges)
}

/// A random regular inventory over the component's role alphabet:
/// `Init(·)` of a random regex, intersected with the well-formed shape —
/// always a valid (possibly very restrictive) inventory.
pub fn random_inventory(rng: &mut StdRng, schema: &Schema, alphabet: &RoleAlphabet) -> Inventory {
    fn random_regex(rng: &mut StdRng, syms: u32, depth: usize) -> Regex {
        if depth == 0 || rng.random_range(0u32..4) == 0 {
            return Regex::Sym(rng.random_range(0..syms));
        }
        match rng.random_range(0u32..4) {
            0 => Regex::concat([
                random_regex(rng, syms, depth - 1),
                random_regex(rng, syms, depth - 1),
            ]),
            1 => Regex::union([
                random_regex(rng, syms, depth - 1),
                random_regex(rng, syms, depth - 1),
            ]),
            2 => Regex::star(random_regex(rng, syms, depth - 1)),
            _ => Regex::plus(random_regex(rng, syms, depth - 1)),
        }
    }
    let r = random_regex(rng, alphabet.num_symbols(), 3);
    // Embed in ∅* · r · ∅* half the time so runs have room to breathe.
    let r = if rng.random_range(0u32..2) == 0 {
        Regex::concat([
            Regex::star(Regex::Sym(alphabet.empty_symbol())),
            r,
            Regex::star(Regex::Sym(alphabet.empty_symbol())),
        ])
    } else {
        r
    };
    Inventory::init_of_regex(schema, alphabet, &r).expect("Init(regex) is an inventory")
}

/// A random ground transaction of 1–3 well-formed SL updates over a
/// small key pool (collisions intended).
pub fn random_transaction(
    rng: &mut StdRng,
    schema: &Schema,
    edges: &[(ClassId, ClassId)],
) -> Transaction {
    let root = schema.class_id("C0").expect("root");
    let k = schema.attr_id("K").expect("key attr");
    let a = schema.attr_id("A").expect("root attr");
    let key = |rng: &mut StdRng| format!("k{}", rng.random_range(0u32..4));
    let n_updates = rng.random_range(1usize..4);
    let updates = (0..n_updates)
        .map(|_| match rng.random_range(0u32..5) {
            0 => AtomicUpdate::Create {
                class: root,
                gamma: Condition::from_atoms([Atom::eq_const(k, key(rng)), Atom::eq_const(a, "v")]),
            },
            1 => AtomicUpdate::Delete {
                class: root,
                gamma: Condition::from_atoms([Atom::eq_const(k, key(rng))]),
            },
            2 => AtomicUpdate::Modify {
                class: root,
                select: Condition::from_atoms([Atom::eq_const(k, key(rng))]),
                set: Condition::from_atoms([Atom::eq_const(
                    a,
                    format!("v{}", rng.random_range(0u32..3)),
                )]),
            },
            3 if !edges.is_empty() => {
                let (from, to) = edges[rng.random_range(0..edges.len())];
                let own = schema.attrs_of(to).to_vec();
                AtomicUpdate::Specialize {
                    from,
                    to,
                    select: Condition::from_atoms([Atom::eq_const(k, key(rng))]),
                    set: Condition::from_atoms(
                        own.into_iter().map(|attr| Atom::eq_const(attr, "w")),
                    ),
                }
            }
            _ => {
                let (_, child) = if edges.is_empty() {
                    (root, root)
                } else {
                    edges[rng.random_range(0..edges.len())]
                };
                AtomicUpdate::Generalize {
                    class: child,
                    gamma: Condition::from_atoms([Atom::eq_const(k, key(rng))]),
                }
            }
        })
        .collect();
    Transaction::sl("step", &[], updates)
}

/// Like [`random_schema`], but with 1–3 *extra* weakly-connected
/// components (independent root hierarchies `R1`, `R2`, …), so
/// component routing gets exercised. The returned edges and the
/// transactions below only migrate component-0 objects; extra
/// components contribute create/delete/modify traffic whose role symbol
/// is always ∅ for component 0's alphabet.
pub fn random_multi_schema(rng: &mut StdRng) -> (Schema, Vec<(ClassId, ClassId)>, usize) {
    let mut b = SchemaBuilder::new();
    let root = b.class("C0", &["K", "A"]).expect("fresh root");
    let mut classes = vec![root];
    let mut edges = Vec::new();
    for i in 0..rng.random_range(1usize..4) {
        let parent = classes[rng.random_range(0..classes.len())];
        let attr = format!("X{i}");
        let c = b.subclass(&format!("C{}", i + 1), &[parent], &[&attr]).expect("fresh subclass");
        classes.push(c);
        edges.push((parent, c));
    }
    let extra = rng.random_range(1usize..4);
    for r in 1..=extra {
        b.class(&format!("R{r}"), &[&format!("RK{r}")]).expect("fresh extra root");
    }
    (b.build().expect("valid hierarchy"), edges, extra)
}

/// A random ground transaction that, with probability ~1/4, targets a
/// random extra component instead of component 0.
pub fn random_multi_transaction(
    rng: &mut StdRng,
    schema: &Schema,
    edges: &[(ClassId, ClassId)],
    extra: usize,
) -> Transaction {
    if extra > 0 && rng.random_range(0u32..4) == 0 {
        let r = rng.random_range(1..extra + 1);
        let root = schema.class_id(&format!("R{r}")).expect("extra root");
        let k = schema.attr_id(&format!("RK{r}")).expect("extra key");
        let key = format!("k{}", rng.random_range(0u32..3));
        let update = match rng.random_range(0u32..3) {
            0 => AtomicUpdate::Create {
                class: root,
                gamma: Condition::from_atoms([Atom::eq_const(k, key)]),
            },
            1 => AtomicUpdate::Delete {
                class: root,
                gamma: Condition::from_atoms([Atom::eq_const(k, key)]),
            },
            _ => AtomicUpdate::Modify {
                class: root,
                select: Condition::from_atoms([Atom::eq_const(k, key)]),
                set: Condition::from_atoms([Atom::eq_const(
                    k,
                    format!("k{}", rng.random_range(0u32..3)),
                )]),
            },
        };
        Transaction::sl("other", &[], vec![update])
    } else {
        random_transaction(rng, schema, edges)
    }
}

//! The paper's central equivalence, as a property test: for random
//! regular expressions η over the role sets of a component, the schema
//! Σ_η synthesized by Lemma 3.4 is analyzed back by Theorem 3.2(1) and
//! the four families must equal their closed forms.

use migratory::automata::{concat as nfa_concat, Dfa, Nfa, Regex};
use migratory::core::{analyze_families, synthesize, AnalyzeOptions, PatternKind, RoleAlphabet};
use migratory::model::{RoleSet, Schema, SchemaBuilder};
use proptest::prelude::*;

fn pq_schema() -> (Schema, RoleAlphabet) {
    let mut b = SchemaBuilder::new();
    let r = b.class("R", &["A", "B", "C"]).unwrap();
    b.subclass("p", &[r], &[]).unwrap();
    b.subclass("q", &[r], &[]).unwrap();
    let schema = b.build().unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    (schema, alphabet)
}

/// Random regexes over the non-empty role symbols {1..=3} of the pq
/// schema ([p], [q], [p,q] — whatever the alphabet ordering is, symbols
/// 1..4 are the non-empty ones).
fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![(1u32..4).prop_map(Regex::Sym), Just(Regex::Epsilon),];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::union),
            inner.prop_map(Regex::star),
        ]
    })
}

fn nonempty_start(alphabet: &RoleAlphabet) -> Dfa {
    let ns = alphabet.num_symbols();
    let any = Regex::union((0..ns).map(Regex::Sym).collect::<Vec<_>>());
    let bad = Regex::concat([Regex::Sym(alphabet.empty_symbol()), Regex::star(any)]);
    Dfa::from_nfa(&Nfa::from_regex(&bad, ns)).complement()
}

fn check_round_trip(schema: &Schema, alphabet: &RoleAlphabet, eta: &Regex) {
    let ns = alphabet.num_symbols();
    let e = alphabet.empty_symbol();
    let synth = synthesize(schema, alphabet, eta).expect("R has three attributes");
    let (_, fams) =
        analyze_families(schema, alphabet, &synth.transactions, &AnalyzeOptions::default())
            .expect("synthesized schema is SL");

    let ns_start = nonempty_start(alphabet);
    let walks_imm = Dfa::from_nfa(&synth.graph.walks_nfa(ns, e, PatternKind::ImmediateStart));
    let expected_imm = walks_imm.intersect(&ns_start).minimize();
    assert!(fams.imm.equivalent(&expected_imm), "imm mismatch for {eta}");

    let empty_star = Nfa::from_regex(&Regex::star(Regex::Sym(e)), ns);
    let expected_all =
        Dfa::from_nfa(&nfa_concat(&empty_star, &walks_imm.to_nfa()).unwrap()).minimize();
    assert!(fams.all.equivalent(&expected_all), "all mismatch for {eta}");

    let empty_opt = Nfa::from_regex(&Regex::opt(Regex::Sym(e)), ns);
    for (kind, got) in [(PatternKind::Proper, &fams.pro), (PatternKind::Lazy, &fams.lazy)] {
        let walks = Dfa::from_nfa(&synth.graph.walks_nfa(ns, e, kind)).intersect(&ns_start);
        let expected = Dfa::from_nfa(&nfa_concat(&empty_opt, &walks.to_nfa()).unwrap()).minimize();
        assert!(got.equivalent(&expected), "{kind} mismatch for {eta}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn random_regular_inventories_round_trip(eta in regex_strategy()) {
        let (schema, alphabet) = pq_schema();
        check_round_trip(&schema, &alphabet, &eta);
    }
}

#[test]
fn pinned_regressions_round_trip() {
    let (schema, alphabet) = pq_schema();
    let p = alphabet.symbol_of(RoleSet::closure_of_named(&schema, &["p"]).unwrap()).unwrap();
    let q = alphabet.symbol_of(RoleSet::closure_of_named(&schema, &["q"]).unwrap()).unwrap();
    for eta in [
        Regex::Sym(p),
        Regex::word([p, q, p]),
        Regex::star(Regex::union([Regex::word([p, q]), Regex::Sym(q)])),
        Regex::concat([Regex::opt(Regex::Sym(q)), Regex::plus(Regex::Sym(p))]),
    ] {
        check_round_trip(&schema, &alphabet, &eta);
    }
}

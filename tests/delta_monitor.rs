//! Cross-engine equivalence and O(touched) regression tests for the
//! delta/cohort enforcement engine.
//!
//! The delta engine ([`Monitor::new`]) must be observationally identical
//! to the reference engine ([`Monitor::new_reference`]): same
//! accept/reject decision on every prefix, byte-identical [`Violation`]s,
//! identical databases and identical recorded patterns — across random
//! schemas, random inventories, all four pattern kinds and random runs.
//! Randomness is a seeded [`StdRng`] (deterministic, no external fuzzer);
//! the schema/inventory/transaction generators live in `common` (shared
//! with the WAL recovery suite).

mod common;

use common::{
    random_inventory, random_multi_schema, random_multi_transaction, random_schema,
    random_transaction,
};
use migratory::core::enforce::{EnforceError, Monitor, ShardedMonitor, StepPolicy};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{apply_transaction_delta, Assignment, AtomicUpdate, Transaction};
use migratory::model::{Atom, Condition, Instance, Oid};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// 120 random (schema, inventory, kind, policy) configurations, each
/// driven through a random run on both engines in lockstep.
#[test]
fn delta_engine_equals_reference_engine_on_random_runs() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    let mut rejections = 0usize;
    let mut commits = 0usize;
    for case in 0..120 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let mut fast = Monitor::new(&schema, &alphabet, &inv, kind).with_policy(policy);
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv, kind).with_policy(policy);
        let no_args = Assignment::empty();
        let run_len = rng.random_range(4usize..24);
        for step in 0..run_len {
            let t = random_transaction(&mut rng, &schema, &edges);
            let rf = fast.try_apply(&t, &no_args);
            let ro = oracle.try_apply(&t, &no_args);
            assert_eq!(
                rf, ro,
                "case {case} step {step}: engines disagree (kind {kind}, policy {policy:?})"
            );
            assert_eq!(fast.db(), oracle.db(), "case {case} step {step}: db diverged");
            assert_eq!(fast.steps(), oracle.steps(), "case {case} step {step}");
            match rf {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(EnforceError::Lang(e)) => panic!("unexpected lang error {e}"),
                Err(EnforceError::Durability(e)) => panic!("unexpected wal error {e}"),
            }
        }
        // Recorded patterns agree for every object that ever existed.
        for oid in 1..=fast.db().next_oid().0 {
            assert_eq!(
                fast.pattern_of(Oid(oid)),
                oracle.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    // The workload must actually exercise both outcomes.
    assert!(commits > 200, "only {commits} commits — workload too restrictive");
    assert!(rejections > 200, "only {rejections} rejections — workload too permissive");
}

/// Regression: a no-op application on a large database is recognized from
/// the delta alone — the change-set is empty (no O(|DB|) before-images,
/// no letter under `OnlyChanging`), and an admitted single-object step
/// reports `last_touched == 1` no matter the store size.
#[test]
fn noop_on_large_database_yields_empty_delta() {
    const N: usize = 10_000;
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let person = schema.class_id("PERSON").unwrap();
    let ssn = schema.attr_id("SSN").unwrap();
    let name = schema.attr_id("Name").unwrap();
    let bulk = Transaction::sl(
        "bulk",
        &[],
        (0..N)
            .map(|i| AtomicUpdate::Create {
                class: person,
                gamma: Condition::from_atoms([
                    Atom::eq_const(ssn, format!("s{i}")),
                    Atom::eq_const(name, "n"),
                ]),
            })
            .collect(),
    );
    let no_args = Assignment::empty();

    // Lang level: a delete that selects nothing touches nothing; a rename
    // writing back the stored value touches exactly one object. Neither
    // change-set scales with |DB|.
    let mut db = Instance::empty();
    migratory::lang::apply_transaction(&schema, &mut db, &bulk, &no_args).unwrap();
    let miss = Transaction::sl(
        "miss",
        &[],
        vec![AtomicUpdate::Delete {
            class: person,
            gamma: Condition::from_atoms([Atom::eq_const(ssn, "nope")]),
        }],
    );
    let d = apply_transaction_delta(&schema, &mut db, &miss, &no_args).unwrap();
    assert!(d.objects().is_empty(), "unselected objects must not be touched");
    assert!(d.is_identity());
    let noop_rename = Transaction::sl(
        "noop",
        &[],
        vec![AtomicUpdate::Modify {
            class: person,
            select: Condition::from_atoms([Atom::eq_const(ssn, "s7")]),
            set: Condition::from_atoms([Atom::eq_const(name, "n")]),
        }],
    );
    let d = apply_transaction_delta(&schema, &mut db, &noop_rename, &no_args).unwrap();
    assert_eq!(d.objects().len(), 1, "exactly the selected object");
    assert!(d.is_identity(), "identical write-back is a null application");

    // Monitor level: under OnlyChanging the null application emits no
    // letter (decided from the delta, not from an O(|DB|) instance
    // comparison), while a real single-object step reports one touched
    // object on a 10k-object store.
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
    let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All)
        .with_policy(StepPolicy::OnlyChanging);
    m.try_apply(&bulk, &no_args).unwrap();
    assert_eq!(m.steps(), 1);
    assert_eq!(m.last_touched(), Some(N));
    m.try_apply(&noop_rename, &no_args).unwrap();
    assert_eq!(m.steps(), 1, "null application contributed no letter");
    m.try_apply(&miss, &no_args).unwrap();
    assert_eq!(m.steps(), 1, "empty-selection application contributed no letter");
    let real = Transaction::sl(
        "real",
        &[],
        vec![AtomicUpdate::Modify {
            class: person,
            select: Condition::from_atoms([Atom::eq_const(ssn, "s7")]),
            set: Condition::from_atoms([Atom::eq_const(name, "renamed")]),
        }],
    );
    m.try_apply(&real, &no_args).unwrap();
    assert_eq!(m.steps(), 2);
    assert_eq!(
        m.last_touched(),
        Some(1),
        "admit-path work tracks the touched set, not the database"
    );
}

/// 100 random configurations: the sharded monitor (1–4 shards, random
/// parallel staging, oid-stripe *and* component routing) driven in
/// lockstep with the reference engine, one application at a time.
#[test]
fn sharded_monitor_equals_reference_engine_on_random_runs() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0011);
    let mut rejections = 0usize;
    let mut commits = 0usize;
    let mut component_routed = 0usize;
    for case in 0..100 {
        let multi = rng.random_range(0u32..2) == 1;
        let (schema, edges, extra) = if multi {
            random_multi_schema(&mut rng)
        } else {
            let (s, e) = random_schema(&mut rng);
            (s, e, 0)
        };
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5);
        let parallel = rng.random_range(0u32..2) == 1;
        let mut sharded = ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(parallel);
        component_routed += usize::from(sharded.routes_by_component());
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv, kind).with_policy(policy);
        let no_args = Assignment::empty();
        for step in 0..rng.random_range(4usize..20) {
            let t = random_multi_transaction(&mut rng, &schema, &edges, extra);
            let rs = sharded.try_apply(&t, &no_args);
            let ro = oracle.try_apply(&t, &no_args);
            assert_eq!(
                rs, ro,
                "case {case} step {step}: sharded({shards}) disagrees (kind {kind}, {policy:?})"
            );
            assert_eq!(sharded.db(), oracle.db(), "case {case} step {step}: db diverged");
            assert_eq!(sharded.steps(), oracle.steps(), "case {case} step {step}");
            match rs {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(EnforceError::Lang(e)) => panic!("unexpected lang error {e}"),
                Err(EnforceError::Durability(e)) => panic!("unexpected wal error {e}"),
            }
        }
        for oid in 1..=sharded.db().next_oid().0 {
            assert_eq!(
                sharded.pattern_of(Oid(oid)),
                oracle.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    assert!(commits > 150, "only {commits} commits — workload too restrictive");
    assert!(rejections > 150, "only {rejections} rejections — workload too permissive");
    assert!(component_routed > 10, "component routing untested ({component_routed} cases)");
}

/// Random runs split into random-size blocks admitted through
/// `try_apply_batch`, compared against the reference engine applying the
/// same transactions one at a time: identical committed prefixes,
/// byte-identical violations (including rejection order), identical
/// databases, step counts and recorded patterns.
#[test]
fn sharded_batch_admission_equals_reference_engine() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0012);
    let mut batch_rejections = 0usize;
    let mut batch_commits = 0usize;
    for case in 0..80 {
        let multi = rng.random_range(0u32..2) == 1;
        let (schema, edges, extra) = if multi {
            random_multi_schema(&mut rng)
        } else {
            let (s, e) = random_schema(&mut rng);
            (s, e, 0)
        };
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5);
        let mut sharded = ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(rng.random_range(0u32..2) == 1);
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv, kind).with_policy(policy);
        let no_args = Assignment::empty();
        let txns: Vec<Transaction> = (0..rng.random_range(6usize..24))
            .map(|_| random_multi_transaction(&mut rng, &schema, &edges, extra))
            .collect();
        let mut pos = 0;
        while pos < txns.len() {
            let size = rng.random_range(1usize..(txns.len() - pos).min(5) + 1);
            let block = &txns[pos..pos + size];
            let (done, err) = sharded.try_apply_batch(block.iter().map(|t| (t, &no_args)));
            // The oracle admits the block one transaction at a time,
            // stopping at the first rejection — the semantics the batch
            // API must reproduce.
            let mut odone = 0usize;
            let mut oerr = None;
            for t in block {
                match oracle.try_apply(t, &no_args) {
                    Ok(()) => odone += 1,
                    Err(e) => {
                        oerr = Some(e);
                        break;
                    }
                }
            }
            assert_eq!(
                (done, &err),
                (odone, &oerr),
                "case {case} at {pos}: batch of {size} diverged (kind {kind}, {policy:?})"
            );
            assert_eq!(sharded.db(), oracle.db(), "case {case} at {pos}: db diverged");
            assert_eq!(sharded.steps(), oracle.steps(), "case {case} at {pos}");
            batch_commits += done;
            batch_rejections += usize::from(err.is_some());
            pos += size;
        }
        for oid in 1..=sharded.db().next_oid().0 {
            assert_eq!(
                sharded.pattern_of(Oid(oid)),
                oracle.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    assert!(batch_commits > 150, "only {batch_commits} commits");
    assert!(batch_rejections > 80, "only {batch_rejections} rejected blocks");
}

//! Cross-engine equivalence and O(touched) regression tests for the
//! delta/cohort enforcement engine.
//!
//! The delta engine ([`Monitor::new`]) must be observationally identical
//! to the reference engine ([`Monitor::new_reference`]): same
//! accept/reject decision on every prefix, byte-identical [`Violation`]s,
//! identical databases and identical recorded patterns — across random
//! schemas, random inventories, all four pattern kinds and random runs.
//! Randomness is a seeded [`StdRng`] (deterministic, no external fuzzer).

use migratory::automata::Regex;
use migratory::core::enforce::{EnforceError, Monitor, StepPolicy};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{apply_transaction_delta, Assignment, AtomicUpdate, Transaction};
use migratory::model::{Atom, ClassId, Condition, Instance, Oid, Schema, SchemaBuilder};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// A random single-component hierarchy: root `C0(K, A)` plus 1–4
/// subclasses, each hanging off a random earlier class and owning one
/// fresh attribute.
fn random_schema(rng: &mut StdRng) -> (Schema, Vec<(ClassId, ClassId)>) {
    let mut b = SchemaBuilder::new();
    let root = b.class("C0", &["K", "A"]).expect("fresh root");
    let mut classes = vec![root];
    let mut edges = Vec::new();
    for i in 0..rng.random_range(1usize..5) {
        let parent = classes[rng.random_range(0..classes.len())];
        let attr = format!("X{i}");
        let c = b.subclass(&format!("C{}", i + 1), &[parent], &[&attr]).expect("fresh subclass");
        classes.push(c);
        edges.push((parent, c));
    }
    (b.build().expect("valid hierarchy"), edges)
}

/// A random regular inventory over the component's role alphabet:
/// `Init(·)` of a random regex, intersected with the well-formed shape —
/// always a valid (possibly very restrictive) inventory.
fn random_inventory(rng: &mut StdRng, schema: &Schema, alphabet: &RoleAlphabet) -> Inventory {
    fn random_regex(rng: &mut StdRng, syms: u32, depth: usize) -> Regex {
        if depth == 0 || rng.random_range(0u32..4) == 0 {
            return Regex::Sym(rng.random_range(0..syms));
        }
        match rng.random_range(0u32..4) {
            0 => Regex::concat([
                random_regex(rng, syms, depth - 1),
                random_regex(rng, syms, depth - 1),
            ]),
            1 => Regex::union([
                random_regex(rng, syms, depth - 1),
                random_regex(rng, syms, depth - 1),
            ]),
            2 => Regex::star(random_regex(rng, syms, depth - 1)),
            _ => Regex::plus(random_regex(rng, syms, depth - 1)),
        }
    }
    let r = random_regex(rng, alphabet.num_symbols(), 3);
    // Embed in ∅* · r · ∅* half the time so runs have room to breathe.
    let r = if rng.random_range(0u32..2) == 0 {
        Regex::concat([
            Regex::star(Regex::Sym(alphabet.empty_symbol())),
            r,
            Regex::star(Regex::Sym(alphabet.empty_symbol())),
        ])
    } else {
        r
    };
    Inventory::init_of_regex(schema, alphabet, &r).expect("Init(regex) is an inventory")
}

/// A random ground transaction of 1–3 well-formed SL updates over a
/// small key pool (collisions intended).
fn random_transaction(
    rng: &mut StdRng,
    schema: &Schema,
    edges: &[(ClassId, ClassId)],
) -> Transaction {
    let root = schema.class_id("C0").expect("root");
    let k = schema.attr_id("K").expect("key attr");
    let a = schema.attr_id("A").expect("root attr");
    let key = |rng: &mut StdRng| format!("k{}", rng.random_range(0u32..4));
    let n_updates = rng.random_range(1usize..4);
    let updates = (0..n_updates)
        .map(|_| match rng.random_range(0u32..5) {
            0 => AtomicUpdate::Create {
                class: root,
                gamma: Condition::from_atoms([Atom::eq_const(k, key(rng)), Atom::eq_const(a, "v")]),
            },
            1 => AtomicUpdate::Delete {
                class: root,
                gamma: Condition::from_atoms([Atom::eq_const(k, key(rng))]),
            },
            2 => AtomicUpdate::Modify {
                class: root,
                select: Condition::from_atoms([Atom::eq_const(k, key(rng))]),
                set: Condition::from_atoms([Atom::eq_const(
                    a,
                    format!("v{}", rng.random_range(0u32..3)),
                )]),
            },
            3 if !edges.is_empty() => {
                let (from, to) = edges[rng.random_range(0..edges.len())];
                let own = schema.attrs_of(to).to_vec();
                AtomicUpdate::Specialize {
                    from,
                    to,
                    select: Condition::from_atoms([Atom::eq_const(k, key(rng))]),
                    set: Condition::from_atoms(
                        own.into_iter().map(|attr| Atom::eq_const(attr, "w")),
                    ),
                }
            }
            _ => {
                let (_, child) = if edges.is_empty() {
                    (root, root)
                } else {
                    edges[rng.random_range(0..edges.len())]
                };
                AtomicUpdate::Generalize {
                    class: child,
                    gamma: Condition::from_atoms([Atom::eq_const(k, key(rng))]),
                }
            }
        })
        .collect();
    Transaction::sl("step", &[], updates)
}

/// 120 random (schema, inventory, kind, policy) configurations, each
/// driven through a random run on both engines in lockstep.
#[test]
fn delta_engine_equals_reference_engine_on_random_runs() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    let mut rejections = 0usize;
    let mut commits = 0usize;
    for case in 0..120 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let mut fast = Monitor::new(&schema, &alphabet, &inv, kind).with_policy(policy);
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv, kind).with_policy(policy);
        let no_args = Assignment::empty();
        let run_len = rng.random_range(4usize..24);
        for step in 0..run_len {
            let t = random_transaction(&mut rng, &schema, &edges);
            let rf = fast.try_apply(&t, &no_args);
            let ro = oracle.try_apply(&t, &no_args);
            assert_eq!(
                rf, ro,
                "case {case} step {step}: engines disagree (kind {kind}, policy {policy:?})"
            );
            assert_eq!(fast.db(), oracle.db(), "case {case} step {step}: db diverged");
            assert_eq!(fast.steps(), oracle.steps(), "case {case} step {step}");
            match rf {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(EnforceError::Lang(e)) => panic!("unexpected lang error {e}"),
            }
        }
        // Recorded patterns agree for every object that ever existed.
        for oid in 1..=fast.db().next_oid().0 {
            assert_eq!(
                fast.pattern_of(Oid(oid)),
                oracle.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    // The workload must actually exercise both outcomes.
    assert!(commits > 200, "only {commits} commits — workload too restrictive");
    assert!(rejections > 200, "only {rejections} rejections — workload too permissive");
}

/// Regression: a no-op application on a large database is recognized from
/// the delta alone — the change-set is empty (no O(|DB|) before-images,
/// no letter under `OnlyChanging`), and an admitted single-object step
/// reports `last_touched == 1` no matter the store size.
#[test]
fn noop_on_large_database_yields_empty_delta() {
    const N: usize = 10_000;
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let person = schema.class_id("PERSON").unwrap();
    let ssn = schema.attr_id("SSN").unwrap();
    let name = schema.attr_id("Name").unwrap();
    let bulk = Transaction::sl(
        "bulk",
        &[],
        (0..N)
            .map(|i| AtomicUpdate::Create {
                class: person,
                gamma: Condition::from_atoms([
                    Atom::eq_const(ssn, format!("s{i}")),
                    Atom::eq_const(name, "n"),
                ]),
            })
            .collect(),
    );
    let no_args = Assignment::empty();

    // Lang level: a delete that selects nothing touches nothing; a rename
    // writing back the stored value touches exactly one object. Neither
    // change-set scales with |DB|.
    let mut db = Instance::empty();
    migratory::lang::apply_transaction(&schema, &mut db, &bulk, &no_args).unwrap();
    let miss = Transaction::sl(
        "miss",
        &[],
        vec![AtomicUpdate::Delete {
            class: person,
            gamma: Condition::from_atoms([Atom::eq_const(ssn, "nope")]),
        }],
    );
    let d = apply_transaction_delta(&schema, &mut db, &miss, &no_args).unwrap();
    assert!(d.objects().is_empty(), "unselected objects must not be touched");
    assert!(d.is_identity());
    let noop_rename = Transaction::sl(
        "noop",
        &[],
        vec![AtomicUpdate::Modify {
            class: person,
            select: Condition::from_atoms([Atom::eq_const(ssn, "s7")]),
            set: Condition::from_atoms([Atom::eq_const(name, "n")]),
        }],
    );
    let d = apply_transaction_delta(&schema, &mut db, &noop_rename, &no_args).unwrap();
    assert_eq!(d.objects().len(), 1, "exactly the selected object");
    assert!(d.is_identity(), "identical write-back is a null application");

    // Monitor level: under OnlyChanging the null application emits no
    // letter (decided from the delta, not from an O(|DB|) instance
    // comparison), while a real single-object step reports one touched
    // object on a 10k-object store.
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
    let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All)
        .with_policy(StepPolicy::OnlyChanging);
    m.try_apply(&bulk, &no_args).unwrap();
    assert_eq!(m.steps(), 1);
    assert_eq!(m.last_touched(), Some(N));
    m.try_apply(&noop_rename, &no_args).unwrap();
    assert_eq!(m.steps(), 1, "null application contributed no letter");
    m.try_apply(&miss, &no_args).unwrap();
    assert_eq!(m.steps(), 1, "empty-selection application contributed no letter");
    let real = Transaction::sl(
        "real",
        &[],
        vec![AtomicUpdate::Modify {
            class: person,
            select: Condition::from_atoms([Atom::eq_const(ssn, "s7")]),
            set: Condition::from_atoms([Atom::eq_const(name, "renamed")]),
        }],
    );
    m.try_apply(&real, &no_args).unwrap();
    assert_eq!(m.steps(), 2);
    assert_eq!(
        m.last_touched(),
        Some(1),
        "admit-path work tracks the touched set, not the database"
    );
}

//! Cross-engine equivalence and O(touched) regression tests for the
//! delta/cohort enforcement engine.
//!
//! The delta engine ([`Monitor::new`]) must be observationally identical
//! to the reference engine ([`Monitor::new_reference`]): same
//! accept/reject decision on every prefix, byte-identical [`Violation`]s,
//! identical databases and identical recorded patterns — across random
//! schemas, random inventories, all four pattern kinds and random runs.
//! Randomness is a seeded [`StdRng`] (deterministic, no external fuzzer);
//! the schema/inventory/transaction generators live in `common` (shared
//! with the WAL recovery suite).

mod common;

use common::{
    random_inventory, random_multi_schema, random_multi_transaction, random_schema,
    random_transaction,
};
use migratory::core::enforce::{EnforceError, Monitor, ShardedMonitor, StepPolicy};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{apply_transaction_delta, Assignment, AtomicUpdate, Transaction};
use migratory::model::{Atom, Condition, Instance, Oid};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// 120 random (schema, inventory, kind, policy) configurations, each
/// driven through a random run on both engines in lockstep.
#[test]
fn delta_engine_equals_reference_engine_on_random_runs() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    let mut rejections = 0usize;
    let mut commits = 0usize;
    for case in 0..120 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let mut fast = Monitor::new(&schema, &alphabet, &inv, kind).with_policy(policy);
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv, kind).with_policy(policy);
        let no_args = Assignment::empty();
        let run_len = rng.random_range(4usize..24);
        for step in 0..run_len {
            let t = random_transaction(&mut rng, &schema, &edges);
            let rf = fast.try_apply(&t, &no_args);
            let ro = oracle.try_apply(&t, &no_args);
            assert_eq!(
                rf, ro,
                "case {case} step {step}: engines disagree (kind {kind}, policy {policy:?})"
            );
            assert_eq!(fast.db(), oracle.db(), "case {case} step {step}: db diverged");
            assert_eq!(fast.steps(), oracle.steps(), "case {case} step {step}");
            match rf {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(EnforceError::Lang(e)) => panic!("unexpected lang error {e}"),
                Err(EnforceError::Durability(e)) => panic!("unexpected wal error {e}"),
                Err(EnforceError::Degraded(e)) => panic!("unexpected degraded state {e}"),
                Err(EnforceError::Redefine(e)) => panic!("unexpected redefine error {e}"),
            }
        }
        // Recorded patterns agree for every object that ever existed.
        for oid in 1..=fast.db().next_oid().0 {
            assert_eq!(
                fast.pattern_of(Oid(oid)),
                oracle.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    // The workload must actually exercise both outcomes.
    assert!(commits > 200, "only {commits} commits — workload too restrictive");
    assert!(rejections > 200, "only {rejections} rejections — workload too permissive");
}

/// Regression: a no-op application on a large database is recognized from
/// the delta alone — the change-set is empty (no O(|DB|) before-images,
/// no letter under `OnlyChanging`), and an admitted single-object step
/// reports `last_touched == 1` no matter the store size.
#[test]
fn noop_on_large_database_yields_empty_delta() {
    const N: usize = 10_000;
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let person = schema.class_id("PERSON").unwrap();
    let ssn = schema.attr_id("SSN").unwrap();
    let name = schema.attr_id("Name").unwrap();
    let bulk = Transaction::sl(
        "bulk",
        &[],
        (0..N)
            .map(|i| AtomicUpdate::Create {
                class: person,
                gamma: Condition::from_atoms([
                    Atom::eq_const(ssn, format!("s{i}")),
                    Atom::eq_const(name, "n"),
                ]),
            })
            .collect(),
    );
    let no_args = Assignment::empty();

    // Lang level: a delete that selects nothing touches nothing; a rename
    // writing back the stored value touches exactly one object. Neither
    // change-set scales with |DB|.
    let mut db = Instance::empty();
    migratory::lang::apply_transaction(&schema, &mut db, &bulk, &no_args).unwrap();
    let miss = Transaction::sl(
        "miss",
        &[],
        vec![AtomicUpdate::Delete {
            class: person,
            gamma: Condition::from_atoms([Atom::eq_const(ssn, "nope")]),
        }],
    );
    let d = apply_transaction_delta(&schema, &mut db, &miss, &no_args).unwrap();
    assert!(d.objects().is_empty(), "unselected objects must not be touched");
    assert!(d.is_identity());
    let noop_rename = Transaction::sl(
        "noop",
        &[],
        vec![AtomicUpdate::Modify {
            class: person,
            select: Condition::from_atoms([Atom::eq_const(ssn, "s7")]),
            set: Condition::from_atoms([Atom::eq_const(name, "n")]),
        }],
    );
    let d = apply_transaction_delta(&schema, &mut db, &noop_rename, &no_args).unwrap();
    assert_eq!(d.objects().len(), 1, "exactly the selected object");
    assert!(d.is_identity(), "identical write-back is a null application");

    // Monitor level: under OnlyChanging the null application emits no
    // letter (decided from the delta, not from an O(|DB|) instance
    // comparison), while a real single-object step reports one touched
    // object on a 10k-object store.
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* ([PERSON] ∪ [STUDENT])* ∅*").unwrap();
    let mut m = Monitor::new(&schema, &alphabet, &inv, PatternKind::All)
        .with_policy(StepPolicy::OnlyChanging);
    m.try_apply(&bulk, &no_args).unwrap();
    assert_eq!(m.steps(), 1);
    assert_eq!(m.last_touched(), Some(N));
    m.try_apply(&noop_rename, &no_args).unwrap();
    assert_eq!(m.steps(), 1, "null application contributed no letter");
    m.try_apply(&miss, &no_args).unwrap();
    assert_eq!(m.steps(), 1, "empty-selection application contributed no letter");
    let real = Transaction::sl(
        "real",
        &[],
        vec![AtomicUpdate::Modify {
            class: person,
            select: Condition::from_atoms([Atom::eq_const(ssn, "s7")]),
            set: Condition::from_atoms([Atom::eq_const(name, "renamed")]),
        }],
    );
    m.try_apply(&real, &no_args).unwrap();
    assert_eq!(m.steps(), 2);
    assert_eq!(
        m.last_touched(),
        Some(1),
        "admit-path work tracks the touched set, not the database"
    );
}

/// 100 random **single-component** configurations: oid striping splits
/// one component, whose objects all read every letter, so the stripes
/// advance in lockstep and the sharded monitor is observationally
/// identical to the global-clock reference engine.
#[test]
fn sharded_monitor_equals_reference_engine_on_random_runs() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0011);
    let mut rejections = 0usize;
    let mut commits = 0usize;
    for case in 0..100 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5);
        let parallel = rng.random_range(0u32..2) == 1;
        let mut sharded = ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(parallel);
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv, kind).with_policy(policy);
        let no_args = Assignment::empty();
        for step in 0..rng.random_range(4usize..20) {
            let t = random_transaction(&mut rng, &schema, &edges);
            let rs = sharded.try_apply(&t, &no_args);
            let ro = oracle.try_apply(&t, &no_args);
            assert_eq!(
                rs, ro,
                "case {case} step {step}: sharded({shards}) disagrees (kind {kind}, {policy:?})"
            );
            assert_eq!(sharded.db(), oracle.db(), "case {case} step {step}: db diverged");
            for c in sharded.clocks() {
                assert_eq!(c, oracle.steps(), "case {case} step {step}: stripes not in lockstep");
            }
            match rs {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(EnforceError::Lang(e)) => panic!("unexpected lang error {e}"),
                Err(EnforceError::Durability(e)) => panic!("unexpected wal error {e}"),
                Err(EnforceError::Degraded(e)) => panic!("unexpected degraded state {e}"),
                Err(EnforceError::Redefine(e)) => panic!("unexpected redefine error {e}"),
            }
        }
        for oid in 1..=sharded.db().next_oid().0 {
            assert_eq!(
                sharded.pattern_of(Oid(oid)),
                oracle.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    assert!(commits > 150, "only {commits} commits — workload too restrictive");
    assert!(rejections > 150, "only {rejections} rejections — workload too permissive");
}

/// The per-shard-clock equivalence harness: one reference [`Monitor`]
/// per shard, each fed exactly the subsequence of applications routed
/// to its shard — the restricted run of Lemma 3.5. Object identifiers
/// are compared through the restriction's order bijection (the n-th
/// object minted in a shard's sub-run on either side), which the
/// harness tracks from the statically known create count of each SL
/// transaction; patterns, letters, clocks and decisions must then be
/// **byte-identical** per shard.
struct ShardOracles<'a> {
    oracles: Vec<Monitor<'a>>,
    /// sharded-global oid → (shard, oracle-local oid).
    map: std::collections::BTreeMap<u64, (usize, u64)>,
}

impl<'a> ShardOracles<'a> {
    fn new(
        schema: &'a migratory::model::Schema,
        alphabet: &'a RoleAlphabet,
        inv: &'a migratory::core::Inventory,
        kind: PatternKind,
        policy: StepPolicy,
        shards: usize,
    ) -> Self {
        ShardOracles {
            oracles: (0..shards)
                .map(|_| Monitor::new_reference(schema, alphabet, inv, kind).with_policy(policy))
                .collect(),
            map: std::collections::BTreeMap::new(),
        }
    }

    /// The shard a transaction routes to: component of its first named
    /// class, modulo the shard count — the sharded monitor's rule.
    fn shard_of(&self, schema: &migratory::model::Schema, t: &Transaction) -> usize {
        match t.first_named_class() {
            Some(c) => schema.component_of(c) as usize % self.oracles.len(),
            None => 0,
        }
    }

    /// Statically known oids an SL transaction mints (one per Create).
    fn creates(t: &Transaction) -> u64 {
        t.steps.iter().filter(|g| matches!(g.update, AtomicUpdate::Create { .. })).count() as u64
    }

    /// Feed one application to its shard's oracle and return the
    /// decision with any violation oid mapped **back** into the sharded
    /// monitor's oid space, so the caller can compare byte-for-byte.
    /// `sharded_next` is the sharded monitor's oid counter before the
    /// application.
    fn apply(
        &mut self,
        schema: &migratory::model::Schema,
        t: &Transaction,
        args: &Assignment,
        sharded_next: u64,
    ) -> Result<(), EnforceError> {
        let s = self.shard_of(schema, t);
        let oracle_next = self.oracles[s].db().next_oid().0;
        let r = self.oracles[s].try_apply(t, args);
        if r.is_ok() {
            for i in 0..Self::creates(t) {
                self.map.insert(sharded_next + i, (s, oracle_next + i));
            }
        }
        r.map_err(|e| match e {
            EnforceError::Violation(mut v) => {
                // Map the reported oid into the sharded monitor's space:
                // either through the bijection, or — for an object the
                // violating application itself tried to create — by
                // offsetting from the two allocators.
                v.oid = v.oid.map(|o| {
                    if o.0 >= oracle_next {
                        Oid(sharded_next + (o.0 - oracle_next))
                    } else {
                        let global = self
                            .map
                            .iter()
                            .find(|(_, &(sh, local))| sh == s && local == o.0)
                            .map(|(&g, _)| g)
                            .expect("violating object was minted in this shard's sub-run");
                        Oid(global)
                    }
                });
                EnforceError::Violation(v)
            }
            other => other,
        })
    }

    /// The shard-local pattern of a sharded-global oid, from the owning
    /// shard's oracle.
    fn pattern_of(&self, global: u64) -> Option<migratory::core::MigrationPattern> {
        let &(s, local) = self.map.get(&global)?;
        self.oracles[s].pattern_of(Oid(local))
    }
}

/// 80 random **multi-component** configurations: the sharded monitor
/// with per-shard letter clocks driven in lockstep with one reference
/// monitor per shard, each fed only its shard's sub-run — decisions,
/// violations (through the oid bijection), shard clocks and per-object
/// patterns must all match, across kinds (exempt objects included) and
/// both step policies.
#[test]
fn sharded_clocks_equal_per_shard_reference_oracles() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0013);
    let (mut commits, mut rejections, mut cross_shard_steps) = (0usize, 0usize, 0usize);
    for case in 0..80 {
        let (schema, edges, extra) = random_multi_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5).min(schema.num_components());
        let mut sharded = ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(rng.random_range(0u32..2) == 1);
        assert!(sharded.routes_by_component());
        assert_eq!(sharded.num_shards(), shards);
        let mut oracles = ShardOracles::new(&schema, &alphabet, &inv, kind, policy, shards);
        let no_args = Assignment::empty();
        for step in 0..rng.random_range(4usize..20) {
            let t = random_multi_transaction(&mut rng, &schema, &edges, extra);
            let s = oracles.shard_of(&schema, &t);
            cross_shard_steps += usize::from(s != 0);
            let sharded_next = sharded.db().next_oid().0;
            let rs = sharded.try_apply(&t, &no_args);
            let ro = oracles.apply(&schema, &t, &no_args, sharded_next);
            assert_eq!(
                rs, ro,
                "case {case} step {step}: shard {s} disagrees with its sub-run oracle \
                 (kind {kind}, {policy:?}, {shards} shards)"
            );
            match rs {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(EnforceError::Lang(e)) => panic!("unexpected lang error {e}"),
                Err(EnforceError::Durability(e)) => panic!("unexpected wal error {e}"),
                Err(EnforceError::Degraded(e)) => panic!("unexpected degraded state {e}"),
                Err(EnforceError::Redefine(e)) => panic!("unexpected redefine error {e}"),
            }
            // Every shard's clock equals its oracle's global step count.
            for (i, oracle) in oracles.oracles.iter().enumerate() {
                assert_eq!(
                    sharded.clock(i),
                    oracle.steps(),
                    "case {case} step {step}: shard {i}'s clock diverged from its sub-run"
                );
            }
        }
        // Shard-local patterns match the sub-run oracles' object by
        // object (through the restriction bijection).
        for oid in 1..=sharded.db().next_oid().0 {
            assert_eq!(
                sharded.pattern_of(Oid(oid)),
                oracles.pattern_of(oid),
                "case {case}: shard-local pattern of o{oid} diverged"
            );
        }
    }
    assert!(commits > 150, "only {commits} commits — workload too restrictive");
    assert!(rejections > 100, "only {rejections} rejections — workload too permissive");
    assert!(cross_shard_steps > 100, "non-zero shards untested ({cross_shard_steps} steps)");
}

/// Random runs split into random-size blocks admitted through
/// `try_apply_batch`, compared against the reference engine applying the
/// same transactions one at a time: identical committed prefixes,
/// byte-identical violations (including rejection order), identical
/// databases, step counts and recorded patterns.
#[test]
fn sharded_batch_admission_equals_reference_engine() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0012);
    let mut batch_rejections = 0usize;
    let mut batch_commits = 0usize;
    for case in 0..80 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5);
        let mut sharded = ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(rng.random_range(0u32..2) == 1);
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv, kind).with_policy(policy);
        let no_args = Assignment::empty();
        let txns: Vec<Transaction> = (0..rng.random_range(6usize..24))
            .map(|_| random_transaction(&mut rng, &schema, &edges))
            .collect();
        let mut pos = 0;
        while pos < txns.len() {
            let size = rng.random_range(1usize..(txns.len() - pos).min(5) + 1);
            let block = &txns[pos..pos + size];
            let (done, err) = sharded.try_apply_batch(block.iter().map(|t| (t, &no_args)));
            // The oracle admits the block one transaction at a time,
            // stopping at the first rejection — the semantics the batch
            // API must reproduce.
            let mut odone = 0usize;
            let mut oerr = None;
            for t in block {
                match oracle.try_apply(t, &no_args) {
                    Ok(()) => odone += 1,
                    Err(e) => {
                        oerr = Some(e);
                        break;
                    }
                }
            }
            assert_eq!(
                (done, &err),
                (odone, &oerr),
                "case {case} at {pos}: batch of {size} diverged (kind {kind}, {policy:?})"
            );
            assert_eq!(sharded.db(), oracle.db(), "case {case} at {pos}: db diverged");
            for c in sharded.clocks() {
                assert_eq!(c, oracle.steps(), "case {case} at {pos}: stripes not in lockstep");
            }
            batch_commits += done;
            batch_rejections += usize::from(err.is_some());
            pos += size;
        }
        for oid in 1..=sharded.db().next_oid().0 {
            assert_eq!(
                sharded.pattern_of(Oid(oid)),
                oracle.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    assert!(batch_commits > 150, "only {batch_commits} commits");
    assert!(batch_rejections > 80, "only {batch_rejections} rejected blocks");
}

/// Batched admission over **multi-component** schemas against the
/// per-shard oracle harness: a block advances each participating
/// shard's clock by exactly its own letters, commits the longest
/// conforming prefix, and matches each shard's sub-run oracle
/// byte-for-byte (decisions, clocks, patterns).
#[test]
fn sharded_batch_admission_matches_per_shard_oracles() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0014);
    let (mut batch_commits, mut batch_rejections) = (0usize, 0usize);
    for case in 0..60 {
        let (schema, edges, extra) = random_multi_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5).min(schema.num_components());
        let mut sharded = ShardedMonitor::new(&schema, &alphabet, &inv, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(rng.random_range(0u32..2) == 1);
        let mut oracles = ShardOracles::new(&schema, &alphabet, &inv, kind, policy, shards);
        let no_args = Assignment::empty();
        let txns: Vec<Transaction> = (0..rng.random_range(6usize..20))
            .map(|_| random_multi_transaction(&mut rng, &schema, &edges, extra))
            .collect();
        let mut pos = 0;
        while pos < txns.len() {
            let size = rng.random_range(1usize..(txns.len() - pos).min(5) + 1);
            let block = &txns[pos..pos + size];
            // The sharded allocator before the block: rejected work
            // restores it (Delta::undo), so the committed prefix's
            // allocation is the static sequential one from here.
            let mut next = sharded.db().next_oid().0;
            let (done, err) = sharded.try_apply_batch(block.iter().map(|t| (t, &no_args)));
            // Replicate longest-prefix semantics on the per-shard
            // oracles, item by item in block order.
            let mut odone = 0usize;
            let mut oerr = None;
            for t in block {
                match oracles.apply(&schema, t, &no_args, next) {
                    Ok(()) => {
                        odone += 1;
                        next += ShardOracles::creates(t);
                    }
                    Err(e) => {
                        oerr = Some(e);
                        break;
                    }
                }
            }
            assert_eq!(
                (done, &err),
                (odone, &oerr),
                "case {case} at {pos}: batch of {size} diverged (kind {kind}, {policy:?})"
            );
            for (i, oracle) in oracles.oracles.iter().enumerate() {
                assert_eq!(sharded.clock(i), oracle.steps(), "case {case} at {pos}: shard {i}");
            }
            batch_commits += done;
            batch_rejections += usize::from(err.is_some());
            pos += size;
        }
        for oid in 1..=sharded.db().next_oid().0 {
            assert_eq!(
                sharded.pattern_of(Oid(oid)),
                oracles.pattern_of(oid),
                "case {case}: shard-local pattern of o{oid} diverged"
            );
        }
    }
    assert!(batch_commits > 100, "only {batch_commits} commits");
    assert!(batch_rejections > 40, "only {batch_rejections} rejected blocks");
}

// ---------------------------------------------------------------------
// Constraint evolution (`Monitor::redefine`) equivalence suites
// ---------------------------------------------------------------------

use migratory::automata::Regex;
use migratory::core::enforce::ResiduePolicy;

/// Rewrites an oracle's decision into the monitor's current epoch so
/// post-redefinition rejections can be compared byte-for-byte against
/// an oracle that never redefined (violations are identical except for
/// the epoch stamp).
fn at_epoch(r: Result<(), EnforceError>, epoch: u64) -> Result<(), EnforceError> {
    r.map_err(|e| match e {
        EnforceError::Violation(mut v) => {
            v.epoch = epoch;
            EnforceError::Violation(v)
        }
        other => other,
    })
}

/// 80 random runs with identity redefinitions sprinkled at random
/// points: redefining to the *same* inventory must bump the epoch and
/// produce zero residue, and the monitor must stay byte-identical
/// (decisions, databases, step counts, recorded patterns) to a
/// reference oracle that never redefined — modulo the epoch stamp on
/// violations.
#[test]
fn identity_redefine_is_observationally_invisible() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0021);
    let (mut commits, mut rejections, mut redefines) = (0usize, 0usize, 0usize);
    for case in 0..80 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let mut fast = Monitor::new(&schema, &alphabet, &inv, kind).with_policy(policy);
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv, kind).with_policy(policy);
        let no_args = Assignment::empty();
        for step in 0..rng.random_range(6usize..24) {
            if rng.random_range(0u32..5) == 0 {
                let residue_policy = if rng.random_range(0u32..2) == 0 {
                    ResiduePolicy::Quarantine
                } else {
                    ResiduePolicy::CertifyAndReset
                };
                let before = fast.epoch();
                let out = fast
                    .redefine(&inv.clone(), residue_policy)
                    .expect("identity redefinition is always viable");
                assert_eq!(out.epoch, before + 1, "case {case}: epoch must bump");
                assert_eq!(out.residue, 0, "case {case}: identity redefine has no residue");
                assert_eq!(
                    out.quarantined, 0,
                    "case {case}: identity redefine quarantines nothing"
                );
                assert_eq!(fast.epoch(), before + 1);
                redefines += 1;
            }
            let t = random_transaction(&mut rng, &schema, &edges);
            let rf = fast.try_apply(&t, &no_args);
            let ro = at_epoch(oracle.try_apply(&t, &no_args), fast.epoch());
            assert_eq!(
                rf, ro,
                "case {case} step {step}: engines disagree after identity redefines \
                 (kind {kind}, policy {policy:?})"
            );
            assert_eq!(fast.db(), oracle.db(), "case {case} step {step}: db diverged");
            assert_eq!(fast.steps(), oracle.steps(), "case {case} step {step}");
            match rf {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        for oid in 1..=fast.db().next_oid().0 {
            assert_eq!(
                fast.pattern_of(Oid(oid)),
                oracle.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
        assert_eq!(fast.quarantined_total(), 0, "case {case}");
    }
    assert!(commits > 150, "only {commits} commits — workload too restrictive");
    assert!(rejections > 150, "only {rejections} rejections — workload too permissive");
    assert!(redefines > 40, "only {redefines} identity redefinitions exercised");
}

/// 100 random runs where the monitor consumes a random amount of
/// pre-creation history under inventory A, then redefines to an
/// unrelated random inventory B: the redefined monitor must be
/// byte-identical — decisions, violations (modulo epoch stamp),
/// databases, clocks, patterns — to a **fresh monitor born with B**
/// that replayed the same (entirely viable, object-free) history. The
/// paper's clean-slate semantics: a redefinition is a fresh constraint
/// whose clock started at the old monitor's first step.
#[test]
fn redefine_equals_fresh_monitor_replaying_viable_history() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0022);
    let (mut commits, mut rejections) = (0usize, 0usize);
    for case in 0..100 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let empty = Regex::star(Regex::Sym(alphabet.empty_symbol()));
        // Both inventories tolerate arbitrary pre-creation ∅ history, so
        // the consumed prefix is viable under B by construction and the
        // redefinition must be admitted.
        // Build Init(∅* · r · ∅*) explicitly for both inventories.
        let mk = |rng: &mut StdRng| {
            fn rr(rng: &mut StdRng, syms: u32, depth: usize) -> Regex {
                if depth == 0 || rng.random_range(0u32..4) == 0 {
                    return Regex::Sym(rng.random_range(0..syms));
                }
                match rng.random_range(0u32..4) {
                    0 => Regex::concat([rr(rng, syms, depth - 1), rr(rng, syms, depth - 1)]),
                    1 => Regex::union([rr(rng, syms, depth - 1), rr(rng, syms, depth - 1)]),
                    2 => Regex::star(rr(rng, syms, depth - 1)),
                    _ => Regex::plus(rr(rng, syms, depth - 1)),
                }
            }
            rr(rng, alphabet.num_symbols(), 3)
        };
        let inv_a = Inventory::init_of_regex(
            &schema,
            &alphabet,
            &Regex::concat([empty.clone(), mk(&mut rng), empty.clone()]),
        )
        .expect("Init(regex) is an inventory");
        let inv_b = Inventory::init_of_regex(
            &schema,
            &alphabet,
            &Regex::concat([empty.clone(), mk(&mut rng), empty.clone()]),
        )
        .expect("Init(regex) is an inventory");
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let mut m = Monitor::new(&schema, &alphabet, &inv_a, kind)
            .with_policy(StepPolicy::EveryApplication);
        // Pre-creation history: admitted letter steps that touch no
        // object (an unmatched delete is a letter under
        // EveryApplication). ∅^k is a prefix of both languages.
        let root = schema.class_id("C0").expect("root");
        let k = schema.attr_id("K").expect("key attr");
        let pad = Transaction::sl(
            "pad",
            &[],
            vec![AtomicUpdate::Delete {
                class: root,
                gamma: Condition::from_atoms([Atom::eq_const(k, "no-such-key")]),
            }],
        );
        let no_args = Assignment::empty();
        let steps0 = rng.random_range(0usize..8);
        for _ in 0..steps0 {
            m.try_apply(&pad, &no_args).expect("∅ prefix is viable under A");
        }
        let residue_policy = if rng.random_range(0u32..2) == 0 {
            ResiduePolicy::Quarantine
        } else {
            ResiduePolicy::CertifyAndReset
        };
        let out = m.redefine(&inv_b, residue_policy).expect("∅ history is viable under B");
        assert_eq!(out.epoch, 1, "case {case}");
        assert_eq!((out.residue, out.quarantined), (0, 0), "case {case}: no objects yet");
        // The oracle: a monitor born with B, replaying the same viable
        // history from scratch.
        let mut fresh = Monitor::new(&schema, &alphabet, &inv_b, kind)
            .with_policy(StepPolicy::EveryApplication);
        for _ in 0..steps0 {
            fresh.try_apply(&pad, &no_args).expect("∅ prefix is viable under B");
        }
        assert_eq!(m.steps(), fresh.steps(), "case {case}: clocks diverged on replay");
        for step in 0..rng.random_range(6usize..20) {
            let t = random_transaction(&mut rng, &schema, &edges);
            let rm = m.try_apply(&t, &no_args);
            let rf = at_epoch(fresh.try_apply(&t, &no_args), m.epoch());
            assert_eq!(
                rm, rf,
                "case {case} step {step}: redefined monitor diverged from fresh \
                 monitor (kind {kind}, {residue_policy})"
            );
            assert_eq!(m.db(), fresh.db(), "case {case} step {step}: db diverged");
            assert_eq!(m.steps(), fresh.steps(), "case {case} step {step}");
            match rm {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        for oid in 1..=m.db().next_oid().0 {
            assert_eq!(
                m.pattern_of(Oid(oid)),
                fresh.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    assert!(commits > 200, "only {commits} commits — workload too restrictive");
    assert!(rejections > 100, "only {rejections} rejections — workload too permissive");
}

/// 80 random runs redefining at a random point on a [`ShardedMonitor`]
/// and a plain delta [`Monitor`] in lockstep: same outcome (epoch,
/// residue, quarantine split under both policies) or same refusal, and
/// byte-identical behavior afterwards — the sharded all-shards-or-
/// nothing swap is observationally the single-partition redefine.
#[test]
fn sharded_redefine_equals_single_monitor_redefine() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0023);
    let (mut commits, mut rejections, mut admitted_redefs, mut refusals) =
        (0usize, 0usize, 0usize, 0usize);
    for case in 0..80 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let inv_a = random_inventory(&mut rng, &schema, &alphabet);
        let inv_b = random_inventory(&mut rng, &schema, &alphabet);
        let kind = PatternKind::ALL[rng.random_range(0usize..4)];
        let policy = if rng.random_range(0u32..2) == 0 {
            StepPolicy::EveryApplication
        } else {
            StepPolicy::OnlyChanging
        };
        let shards = rng.random_range(1usize..5);
        let mut sharded = ShardedMonitor::new(&schema, &alphabet, &inv_a, kind, shards)
            .with_policy(policy)
            .with_parallel_staging(rng.random_range(0u32..2) == 1);
        let mut single = Monitor::new(&schema, &alphabet, &inv_a, kind).with_policy(policy);
        let no_args = Assignment::empty();
        let run_len = rng.random_range(6usize..20);
        let redefine_at = rng.random_range(0..run_len);
        let residue_policy = if rng.random_range(0u32..2) == 0 {
            ResiduePolicy::Quarantine
        } else {
            ResiduePolicy::CertifyAndReset
        };
        for step in 0..run_len {
            if step == redefine_at {
                let rs = sharded.redefine(&inv_b, residue_policy);
                let rm = single.redefine(&inv_b, residue_policy);
                match (rs, rm) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "case {case}: redefine outcomes diverged");
                        admitted_redefs += 1;
                    }
                    (Err(EnforceError::Redefine(_)), Err(EnforceError::Redefine(_))) => {
                        refusals += 1;
                    }
                    (a, b) => panic!("case {case}: redefine split-brain: {a:?} vs {b:?}"),
                }
                assert_eq!(sharded.epoch(), single.epoch(), "case {case}");
                assert_eq!(sharded.redefine_total(), single.redefine_total(), "case {case}");
                assert_eq!(sharded.quarantined_total(), single.quarantined_total(), "case {case}");
            }
            let t = random_transaction(&mut rng, &schema, &edges);
            let rs = sharded.try_apply(&t, &no_args);
            let rm = single.try_apply(&t, &no_args);
            assert_eq!(
                rs, rm,
                "case {case} step {step}: sharded({shards}) diverged after redefine \
                 (kind {kind}, {policy:?}, {residue_policy})"
            );
            assert_eq!(sharded.db(), single.db(), "case {case} step {step}: db diverged");
            for c in sharded.clocks() {
                assert_eq!(c, single.steps(), "case {case} step {step}: stripes not in lockstep");
            }
            match rs {
                Ok(()) => commits += 1,
                Err(EnforceError::Violation(_)) => rejections += 1,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        for oid in 1..=sharded.db().next_oid().0 {
            assert_eq!(
                sharded.pattern_of(Oid(oid)),
                single.pattern_of(Oid(oid)),
                "case {case}: pattern of o{oid} diverged"
            );
        }
    }
    assert!(commits > 100, "only {commits} commits — workload too restrictive");
    assert!(rejections > 100, "only {rejections} rejections — workload too permissive");
    assert!(admitted_redefs > 30, "only {admitted_redefs} admitted redefinitions");
    assert_eq!(admitted_redefs + refusals, 80, "every case redefines exactly once");
}

/// A refused redefinition changes nothing: after the never-created
/// class's consumed ∅-walk leaves the candidate inventory, the monitor
/// must keep enforcing the old inventory byte-identically, at epoch 0.
/// Also pins the refusal modes that need no traffic: the reference
/// engine and alphabet mismatches.
#[test]
fn refused_redefine_leaves_the_monitor_untouched() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0024);
    let mut refused = 0usize;
    for case in 0..40 {
        let (schema, edges) = random_schema(&mut rng);
        let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
        let empty = Regex::star(Regex::Sym(alphabet.empty_symbol()));
        let inv_a = Inventory::init_of_regex(
            &schema,
            &alphabet,
            &Regex::concat([
                empty.clone(),
                Regex::star(Regex::Sym(rng.random_range(0..alphabet.num_symbols()))),
                empty,
            ]),
        )
        .expect("inventory");
        // A language whose words all start with a non-∅ role: once the
        // monitor has consumed one enforced ∅ step, ∅^k is no prefix of
        // the candidate and the pre-walk must refuse.
        let role = (0..alphabet.num_symbols())
            .find(|&s| s != alphabet.empty_symbol())
            .expect("some non-empty role set");
        let inv_b =
            Inventory::init_of_regex(&schema, &alphabet, &Regex::Sym(role)).expect("inventory");
        let mut m = Monitor::new(&schema, &alphabet, &inv_a, PatternKind::All)
            .with_policy(StepPolicy::EveryApplication);
        let mut oracle = Monitor::new_reference(&schema, &alphabet, &inv_a, PatternKind::All)
            .with_policy(StepPolicy::EveryApplication);
        let root = schema.class_id("C0").expect("root");
        let k = schema.attr_id("K").expect("key attr");
        let pad = Transaction::sl(
            "pad",
            &[],
            vec![AtomicUpdate::Delete {
                class: root,
                gamma: Condition::from_atoms([Atom::eq_const(k, "no-such-key")]),
            }],
        );
        let no_args = Assignment::empty();
        for _ in 0..rng.random_range(1usize..5) {
            m.try_apply(&pad, &no_args).expect("∅ prefix viable under A");
            oracle.try_apply(&pad, &no_args).expect("∅ prefix viable under A");
        }
        match m.redefine(&inv_b, ResiduePolicy::Quarantine) {
            Err(EnforceError::Redefine(msg)) => {
                assert!(
                    msg.contains("leaves the new inventory"),
                    "case {case}: unexpected refusal: {msg}"
                );
                refused += 1;
            }
            other => panic!("case {case}: expected pre-walk refusal, got {other:?}"),
        }
        assert_eq!(m.epoch(), 0, "case {case}: refusal must not bump the epoch");
        assert_eq!(m.redefine_total(), 0, "case {case}");
        for step in 0..rng.random_range(4usize..12) {
            let t = random_transaction(&mut rng, &schema, &edges);
            assert_eq!(
                m.try_apply(&t, &no_args),
                oracle.try_apply(&t, &no_args),
                "case {case} step {step}: refused redefine perturbed the monitor"
            );
            assert_eq!(m.db(), oracle.db(), "case {case} step {step}");
        }
    }
    assert_eq!(refused, 40);

    // Refusals that need no traffic at all.
    let schema = migratory::model::schema::university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let mut reference = Monitor::new_reference(&schema, &alphabet, &inv, PatternKind::All);
    match reference.redefine(&inv.clone(), ResiduePolicy::Quarantine) {
        Err(EnforceError::Redefine(msg)) => {
            assert!(msg.contains("reference engine"), "got: {msg}");
        }
        other => panic!("expected reference-engine refusal, got {other:?}"),
    }
}

//! End-to-end reproduction of the paper's worked examples, wired across
//! all crates (the per-figure index lives in EXPERIMENTS.md).

use migratory::automata::{Dfa, Nfa, Regex};
use migratory::core::{
    analyze_families, explore, AnalyzeOptions, ExploreConfig, Inventory, RoleAlphabet,
};
use migratory::lang::parse_transactions;
use migratory::model::roleset::all_role_sets;
use migratory::model::schema::university_schema;
use migratory::model::RoleSet;

/// Example 2.1 / Fig. 1-2: schema shape and a valid instance.
#[test]
fn fig1_fig2_schema_and_instance() {
    let s = university_schema();
    assert_eq!(s.num_classes(), 4);
    assert_eq!(s.num_attrs(), 7);
    let g = s.class_id("GRAD_ASSIST").unwrap();
    assert_eq!(s.attr_star(g).len(), 7, "GRAD_ASSIST inherits all seven attributes");
}

/// Example 3.1: the role sets are ∅, [G], [S], [E], [SE], [P].
#[test]
fn example_3_1_role_sets() {
    let s = university_schema();
    assert_eq!(all_role_sets(&s, 0).len(), 6);
}

/// Example 3.4 + Corollary 3.6: 𝓛(Σ) = ∅*·𝓛ᵢₘₘ(Σ) ∪ ∅* as an automata
/// identity on the analyzer's output.
#[test]
fn corollary_3_6_families_identity() {
    let schema = university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let ts = parse_transactions(
        &schema,
        r"
        transaction T1(n, s, t, m) {
          create(PERSON, { SSN = s, Name = n });
          specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
        }
        transaction T3(s) { generalize(EMPLOYEE, { SSN = s }); }
        transaction T4(s) { delete(PERSON, { SSN = s }); }
    ",
    )
    .unwrap();
    let (_, fams) = analyze_families(
        &schema,
        &alphabet,
        &ts,
        &AnalyzeOptions { parallel: true, ..Default::default() },
    )
    .unwrap();
    let ns = alphabet.num_symbols();
    let e = alphabet.empty_symbol();
    let empty_star = Nfa::from_regex(&Regex::star(Regex::Sym(e)), ns);
    let rhs = Dfa::from_nfa(&migratory::automata::concat(&empty_star, &fams.imm.to_nfa()).unwrap())
        .union(&Dfa::from_nfa(&Nfa::from_regex(&Regex::star(Regex::Sym(e)), ns)))
        .minimize();
    assert!(fams.all.equivalent(&rhs), "Corollary 3.6 fails");
}

/// The family-inclusion chain the paper states after Definition 3.4,
/// checked on analyzer output: lazy ⊆ proper, and the Init-closedness of
/// every family.
#[test]
fn family_inclusions_and_prefix_closure() {
    let schema = university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let ts = parse_transactions(
        &schema,
        r"
        transaction T1(n, s, t, m) {
          create(PERSON, { SSN = s, Name = n });
          specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
        }
        transaction T2(s, p, x, d) {
          specialize(STUDENT, GRAD_ASSIST, { SSN = s },
                     { PcAppoint = p, Salary = x, WorksIn = d });
        }
        transaction T4(s) { delete(PERSON, { SSN = s }); }
    ",
    )
    .unwrap();
    let (_, fams) = analyze_families(
        &schema,
        &alphabet,
        &ts,
        &AnalyzeOptions { parallel: true, ..Default::default() },
    )
    .unwrap();
    assert!(fams.lazy.is_subset_of(&fams.pro), "lazy ⊆ proper");
    assert!(fams.pro.is_subset_of(&fams.all), "proper ⊆ all");
    assert!(fams.imm.is_subset_of(&fams.all), "immediate-start ⊆ all");
    for dfa in [&fams.all, &fams.imm, &fams.pro, &fams.lazy] {
        let closed = Dfa::from_nfa(&dfa.to_nfa().prefix_closure());
        assert!(closed.is_subset_of(dfa), "families are prefix-closed");
    }
}

/// Theorem 4.2 cross-check: the bounded r.e. enumerator agrees with the
/// regular families on a small SL schema (every enumerated word accepted,
/// every short accepted word enumerated).
#[test]
fn explorer_agrees_with_analyzer() {
    let mut b = migratory::model::SchemaBuilder::new();
    let p = b.class("P", &["Id"]).unwrap();
    b.subclass("S", &[p], &[]).unwrap();
    let schema = b.build().unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let ts = parse_transactions(
        &schema,
        r"
        transaction Mk(x) { create(P, { Id = x }); }
        transaction Up(x) { specialize(P, S, { Id = x }, {}); }
        transaction Rm(x) { delete(P, { Id = x }); }
    ",
    )
    .unwrap();
    let (_, fams) = analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
    let sets =
        explore(&schema, &alphabet, &ts, &ExploreConfig { max_steps: 3, ..Default::default() });
    for w in &sets.all {
        assert!(fams.all.accepts(w), "enumerated {w:?} rejected by the analyzer");
    }
    for w in fams.all.enumerate(3, 10_000) {
        assert!(sets.all.contains(&w), "{w:?} accepted but not enumerated");
    }
}

/// Example 3.2's inventory accepts the intended life cycle and rejects
/// deviations; Example 3.3's path expression constrains operations.
#[test]
fn inventories_of_examples_3_2_and_3_3() {
    let schema = university_schema();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(
        &schema,
        &alphabet,
        "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]+ [PERSON]* ∅*",
    )
    .unwrap();
    let sym = |names: &[&str]| {
        alphabet.symbol_of(RoleSet::closure_of_named(&schema, names).unwrap()).unwrap()
    };
    let (p, s, g, e) =
        (sym(&["PERSON"]), sym(&["STUDENT"]), sym(&["GRAD_ASSIST"]), sym(&["EMPLOYEE"]));
    assert!(inv.contains(&[p, s, s, g, e, e, p, 0]));
    assert!(!inv.contains(&[e, s]));
    assert!(!inv.contains(&[g, s, g]));
}

/// The four pattern kinds stay distinguishable end to end: a schema where
/// all four families differ pairwise.
#[test]
fn four_families_differ() {
    let mut b = migratory::model::SchemaBuilder::new();
    let p = b.class("P", &["Id"]).unwrap();
    b.subclass("S", &[p], &[]).unwrap();
    let schema = b.build().unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let ts = parse_transactions(
        &schema,
        r#"
        transaction Mk(x) { create(P, { Id = x }); }
        transaction Touch(x, y) { modify(P, { Id = x }, { Id = y }); }
        transaction Up(x) { specialize(P, S, { Id = x }, {}); }
        transaction Rm(x) { delete(P, { Id = x }); }
    "#,
    )
    .unwrap();
    let (_, fams) = analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default()).unwrap();
    assert!(!fams.all.equivalent(&fams.imm));
    assert!(!fams.imm.equivalent(&fams.pro));
    assert!(!fams.pro.equivalent(&fams.lazy));
    // 𝓛 has ∅-prefixed words, imm does not; proper admits Touch-repeats
    // ([P][P] with a value change), lazy does not.
    let p_sym = alphabet.symbol_of(RoleSet::closure_of_named(&schema, &["P"]).unwrap()).unwrap();
    assert!(fams.all.accepts(&[0, p_sym]));
    assert!(!fams.imm.accepts(&[0, p_sym]));
    assert!(fams.pro.accepts(&[p_sym, p_sym]));
    assert!(!fams.lazy.accepts(&[p_sym, p_sym]));
}

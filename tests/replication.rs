//! Replication suite for `core::enforce::repl` (primary → replica WAL
//! shipping, `docs/PROTOCOL.md` § Replication stream):
//!
//! * randomized byte-identity: a primary under pipelined load with
//!   background checkpoints and a mid-stream `redefine` ships its
//!   history to a replica whose durable state must be byte-identical to
//!   a `recover` oracle fed exactly the acknowledged operations;
//! * torn-stream semantics: the shipped byte stream cut at every byte
//!   offset decodes to a whole-record prefix, folds to the exact
//!   prefix state, and a full re-delivery after any cut is idempotent
//!   (clock-covered records skip, nothing double-applies; a dropped
//!   record is a detected gap);
//! * end-to-end failover through the real `migctl` binary: kill -9 the
//!   primary, `promote` the replica, and re-drive text + binary traffic
//!   including a wire violation and an epoch check after the shipped
//!   redefine;
//! * fault-matrix rows for the shipping socket (stall, disconnect,
//!   short write) × both ack policies: `ack-on-replica` must never ack
//!   an operation the surviving replica does not have;
//! * the normative "Replication stream" section of `docs/PROTOCOL.md`
//!   is locked to the implementation's constants, like the binary
//!   framing section.

mod common;

use common::{random_inventory, random_schema, random_transaction};
use migratory::core::enforce::repl::{acceptor, puller, HELLO, PREAMBLE};
use migratory::core::enforce::wal::{decode_records, decode_stream};
use migratory::core::enforce::{
    ingress, AckPolicy, AdmissionMetrics, CheckpointData, DurabilityPolicy, Health, IngressConfig,
    ReplicaCtl, Replicator, ResiduePolicy, ShardedMonitor, ShipFault, Wal,
};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{parse_transactions, Assignment, Transaction};
use migratory::model::text::parse_schema;
use migratory::model::{Atom, Condition, Schema, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("migratory-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Wait for `cond` to turn true, failing the test after `secs` seconds.
fn wait_for(secs: u64, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------
// Satellite 1: randomized replica byte-identity
// ---------------------------------------------------------------------

/// One randomized round: a primary under pipelined load (single
/// component → single lane, so the acked order is the commit order)
/// with incremental checkpoints and a mid-stream redefinition ships to
/// one replica under `ack-on-replica-1`. Every `ok` therefore promises
/// the op is applied *and durable* on the replica — so the replica's
/// recovered state must be byte-identical to a fresh oracle fed exactly
/// the acked script, and so must both live monitors.
fn replica_byte_identity_round(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (schema, edges) = random_schema(&mut rng);
    let alphabet = RoleAlphabet::new(&schema, 0).expect("alphabet");
    let inv = random_inventory(&mut rng, &schema, &alphabet);
    let inv2 = random_inventory(&mut rng, &schema, &alphabet);
    let txs: Vec<Transaction> =
        (0..48).map(|_| random_transaction(&mut rng, &schema, &edges)).collect();
    let redefine_at = 24;

    let dir_p = temp_dir(&format!("ident-p-{seed}"));
    let dir_r = temp_dir(&format!("ident-r-{seed}"));
    let wal_p = Arc::new(Mutex::new(Wal::open(&dir_p).expect("primary wal")));
    let wal_r = Arc::new(Mutex::new(Wal::open(&dir_r).expect("replica wal")));

    let repl = Arc::new(
        Replicator::bind("127.0.0.1:0")
            .expect("bind replicator")
            .with_policy(AckPolicy::ReplicaK(1))
            .with_ack_timeout(Duration::from_secs(20)),
    );
    let repl_addr = repl.local_addr().to_string();
    let ctl = Arc::new(ReplicaCtl::new(&repl_addr));
    let stop_accept = AtomicBool::new(false);

    // Outcome log of the primary's acked script, mirrored by the oracle.
    let acked: Mutex<Vec<bool>> = Mutex::new(Vec::new());
    let redefine_applied = Mutex::new(None::<bool>);

    let (primary_live, replica_live) = std::thread::scope(|scope| {
        // The replica: its own durable pipeline; the drive closure runs
        // the pull loop until the primary's driver signals stop.
        let replica = scope.spawn(|| {
            let mut rm = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
            let health = Health::new();
            ingress::serve_pipelined(
                &mut rm,
                &IngressConfig { queue_capacity: 64, max_block: 8 },
                &DurabilityPolicy::default(),
                &health,
                wal_r.clone(),
                None,
                0,
                |_| {},
                |client| {
                    std::thread::scope(|ps| {
                        ps.spawn(|| puller(&repl_addr, &ctl, &wal_r, client, None));
                        wait_for(60, "the primary's stop signal", || ctl.stopped());
                    });
                },
            );
            assert!(!health.is_degraded(), "replica degraded: {}", health.reason());
            rm.snapshot().encode()
        });

        // The primary: pipelined committer + replicator tee, with an
        // incremental checkpoint every 4 blocks (exercising chain +
        // tail shipping on reconnect, and pruning under live shipping).
        let mut pm = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
        {
            let full = pm.checkpoint_full();
            wal_p.lock().unwrap().write_snapshot(&full).expect("base checkpoint");
        }
        let health = Health::new();
        let ckpt_wal = &wal_p;
        ingress::serve_pipelined_repl(
            &mut pm,
            &IngressConfig { queue_capacity: 64, max_block: 8 },
            &DurabilityPolicy::default(),
            &health,
            wal_p.clone(),
            None,
            Some(repl.clone()),
            4,
            move |m| {
                let delta = m.checkpoint_delta();
                let job =
                    ckpt_wal.lock().unwrap().begin_checkpoint(CheckpointData::Incremental(delta));
                job.expect("stage incremental checkpoint").run().expect("checkpoint lands");
            },
            |client| {
                std::thread::scope(|ps| {
                    ps.spawn(|| acceptor(&repl, client, &stop_accept));
                    wait_for(20, "the replica to register", || repl.live_replicas() >= 1);
                    for (i, t) in txs.iter().enumerate() {
                        if i == redefine_at {
                            let (tx, rx) = mpsc::channel();
                            let inv2 = &inv2;
                            client.post_admin(Box::new(move |gate| {
                                let ok = gate
                                    .ok()
                                    .map(|m| m.redefine(inv2, ResiduePolicy::Quarantine).is_ok());
                                Box::new(move |durable| {
                                    let _ = tx.send(ok.unwrap_or(false) && durable);
                                })
                            }));
                            *redefine_applied.lock().unwrap() =
                                Some(rx.recv().expect("redefine answered"));
                        }
                        let ok = client.post(t, Assignment::new(vec![])).wait().is_ok();
                        acked.lock().unwrap().push(ok);
                    }
                    // Every acked op is durable on the replica
                    // (ack-on-replica-1): it may stop now.
                    ctl.request_stop();
                    stop_accept.store(true, Ordering::SeqCst);
                });
            },
        );
        repl.close();
        assert!(!health.is_degraded(), "primary degraded: {}", health.reason());
        (pm.snapshot().encode(), replica.join().expect("replica thread"))
    });

    // The oracle: a fresh monitor fed exactly the acked script, with
    // the redefinition at the same point; every outcome must agree.
    let mut oracle = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
    let acked = acked.into_inner().unwrap();
    for (i, t) in txs.iter().enumerate() {
        if i == redefine_at {
            let ok = oracle.redefine(&inv2, ResiduePolicy::Quarantine).is_ok();
            assert_eq!(Some(ok), *redefine_applied.lock().unwrap(), "seed {seed}: redefine");
        }
        let ok = oracle.try_apply(t, &Assignment::new(vec![])).is_ok();
        assert_eq!(ok, acked[i], "seed {seed}: op {i} outcome");
    }
    let expect = oracle.snapshot().encode();

    assert_eq!(primary_live, expect, "seed {seed}: primary live state vs oracle");
    assert_eq!(replica_live, expect, "seed {seed}: replica live state vs oracle");

    // And the replica's own durable image — its base checkpoint from
    // the bootstrap snapshot plus every record its acks covered — folds
    // back byte-identically too.
    let (snap, tail) = Wal::load(&dir_r).expect("replica wal reloads");
    let recovered =
        ShardedMonitor::recover(&schema, &alphabet, &inv, PatternKind::All, 1, snap, tail)
            .expect("replica recovers");
    assert_eq!(recovered.snapshot().encode(), expect, "seed {seed}: replica durable state");

    let _ = std::fs::remove_dir_all(&dir_p);
    let _ = std::fs::remove_dir_all(&dir_r);
}

#[test]
fn replica_state_is_byte_identical_under_randomized_load() {
    for seed in [0x5eed_1001, 0x5eed_1002, 0x5eed_1003] {
        replica_byte_identity_round(seed);
    }
}

// ---------------------------------------------------------------------
// Satellite 2: torn-stream cuts, resync, no double-apply
// ---------------------------------------------------------------------

const REPL_SCHEMA: &str = r#"
schema Uni {
  class PERSON { SSN, Name }
  class STUDENT isa PERSON { Major }
}
"#;

const REPL_TX: &str = r#"
transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
transaction St(x) { specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS" }); }
transaction UnSt(x) { generalize(STUDENT, { SSN = x }); }
transaction Rm(x) { delete(PERSON, { SSN = x }); }
"#;

const REPL_INV: &str = "∅* [PERSON]* [STUDENT]* ∅*";

/// Build the exact byte stream a primary ships (committed blocks plus a
/// redefine marker, in log framing), together with the canonical state
/// after each whole record.
fn shipped_stream() -> (Schema, RoleAlphabet, Inventory, Vec<u8>, Vec<Vec<u8>>) {
    let schema = parse_schema(REPL_SCHEMA).expect("schema");
    let alphabet = RoleAlphabet::new(&schema, 0).expect("alphabet");
    let inv = Inventory::parse_init(&schema, &alphabet, REPL_INV).expect("inventory");
    let inv2 = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").expect("inventory 2");
    let ts = parse_transactions(&schema, REPL_TX).expect("transactions");
    let dir = temp_dir("stream");
    let stream = {
        let wal = Arc::new(Mutex::new(Wal::open(&dir).expect("wal")));
        let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1)
            .with_sink(wal.clone());
        for (name, key) in
            [("Mk", "1"), ("Mk", "2"), ("St", "1"), ("Rm", "2"), ("Mk", "3"), ("St", "3")]
        {
            m.try_apply(ts.get(name).unwrap(), &Assignment::new(vec![Value::str(key)]))
                .expect("script conforms");
        }
        m.redefine(&inv2, ResiduePolicy::Quarantine).expect("redefine applies");
        for (name, key) in [("Mk", "4"), ("Mk", "5")] {
            m.try_apply(ts.get(name).unwrap(), &Assignment::new(vec![Value::str(key)]))
                .expect("script conforms");
        }
        wal.lock().unwrap().sync().expect("sync");
        std::fs::read(dir.join("wal.log")).expect("read log")
    };
    let _ = std::fs::remove_dir_all(&dir);

    // Canonical state after each whole record, by replaying the stream.
    let records = decode_records(&stream).expect("clean stream decodes");
    let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
    let mut state_at = vec![m.snapshot().encode()];
    for r in &records {
        assert!(m.replay_record(r.clone()).expect("fold"), "fresh records apply");
        state_at.push(m.snapshot().encode());
    }
    (schema, alphabet, inv, stream, state_at)
}

/// Cut the shipped stream at **every byte offset**: the decodable part
/// is always a whole-record prefix folding to the exact prefix state,
/// and re-delivering the *entire* stream afterwards (what a resync does
/// after a tear, modulo the fresh bootstrap snapshot) applies nothing
/// twice — every covered record reports clock-skip, every fresh record
/// applies, and the final state equals the uncut run.
#[test]
fn torn_stream_cuts_resync_without_double_apply() {
    let (schema, alphabet, inv, stream, state_at) = shipped_stream();
    let full = state_at.last().expect("at least the empty state").clone();
    let records = decode_records(&stream).expect("clean stream");
    let mut prefixes_seen = std::collections::BTreeSet::new();
    for cut in 0..=stream.len() {
        let (prefix, consumed) =
            decode_stream(&stream[..cut]).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert!(consumed <= cut, "cut {cut}: consumed horizon within the cut");
        let k = prefix.len();
        assert!(k <= records.len());
        let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
        for r in prefix {
            assert!(m.replay_record(r).expect("prefix folds"), "cut {cut}: prefix applies");
        }
        assert_eq!(
            m.snapshot().encode(),
            state_at[k],
            "cut {cut} must fold to the exact state after {k} records"
        );
        // Reconnect after the tear: the full stream arrives again. The
        // k covered records must skip (no double-apply), the rest land.
        for (j, r) in records.iter().enumerate() {
            let applied = m.replay_record(r.clone()).expect("re-delivery folds");
            assert_eq!(applied, j >= k, "cut {cut}: record {j} re-delivery");
        }
        assert_eq!(m.snapshot().encode(), full, "cut {cut}: resynced state");
        prefixes_seen.insert(k);
    }
    assert_eq!(
        prefixes_seen.into_iter().collect::<Vec<_>>(),
        (0..=records.len()).collect::<Vec<_>>(),
        "every whole-record prefix is reachable by some cut"
    );
}

/// Mid-stream damage is *detected*, never silently skipped: a dropped
/// record is a clock gap, and a corrupted byte inside a record stops
/// the decodable prefix right before it while leaving a complete —
/// therefore provably invalid — frame behind, which is exactly the
/// condition the replica treats as corruption (drop + resync) rather
/// than a tear.
#[test]
fn dropped_and_corrupted_records_are_detected_on_the_replication_path() {
    let (schema, alphabet, inv, stream, _) = shipped_stream();
    let records = decode_records(&stream).expect("clean stream");
    assert!(records.len() >= 4, "enough records to drop one");

    // Drop record 1 (a committed block): folding must report a gap.
    let mut m = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
    assert!(m.replay_record(records[0].clone()).expect("first record folds"));
    let gap = records[2..]
        .iter()
        .try_for_each(|r| m.replay_record(r.clone()).map(|_| ()))
        .expect_err("a dropped record must be a detected gap");
    assert!(gap.to_string().contains("gap"), "gap diagnostic, got: {gap}");

    // Corrupt one payload byte of record 1: the stream prefix ends at
    // record 1's frame start, and the leftover is a complete frame (so
    // the replica knows it is corruption, not a tear to wait out).
    let len0 = u32::from_le_bytes(stream[0..4].try_into().unwrap()) as usize;
    let boundary = 8 + len0; // record 1's frame start
    let mut corrupt = stream.clone();
    corrupt[boundary + 8] ^= 0xff; // first payload byte of record 1
    let (prefix, consumed) = decode_stream(&corrupt).expect("decode stops at the damage");
    assert_eq!(prefix.len(), 1, "only the intact record survives");
    assert_eq!(consumed, boundary, "consumed horizon stops at the corrupt frame");
    let leftover = &corrupt[consumed..];
    let claimed = u32::from_le_bytes(leftover[0..4].try_into().unwrap()) as usize;
    assert!(leftover.len() >= 8 + claimed, "the corrupt frame is complete, not torn");
}

// ---------------------------------------------------------------------
// Satellite 3: end-to-end failover through the real binary
// ---------------------------------------------------------------------

/// A synchronous text-dialect client (one reply per request).
struct Client {
    writer: TcpStream,
    replies: std::io::Lines<BufReader<TcpStream>>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let conn = TcpStream::connect(addr).expect("connect");
        conn.set_nodelay(true).expect("nodelay");
        Client { writer: conn.try_clone().expect("clone"), replies: BufReader::new(conn).lines() }
    }

    fn ask(&mut self, req: &str) -> String {
        writeln!(self.writer, "{req}").expect("send");
        self.replies.next().expect("a reply per request").expect("read reply")
    }
}

/// Spawn `migctl serve` with replication flags; scrape the client
/// address and (for a primary) the replication address off the banner.
fn spawn_repl_serve(
    dir: &std::path::Path,
    extra: &[&str],
) -> (std::process::Child, String, String) {
    let schema = dir.join("uni.mig");
    let tx = dir.join("uni.sl");
    std::fs::write(&schema, REPL_SCHEMA).unwrap();
    std::fs::write(&tx, REPL_TX).unwrap();
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_migctl"))
        .arg("serve")
        .arg(&schema)
        .arg(&tx)
        .args(["--inventory", REPL_INV, "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn migctl serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut addr = String::new();
    let mut repl_addr = String::new();
    loop {
        let line = lines.next().expect("serve prints its banner").expect("read stdout");
        if let Some(rest) = line.split("listening on ").nth(1) {
            addr = rest.split_whitespace().next().expect("an address").to_owned();
            if extra.contains(&"--repl-addr") {
                continue; // the replication banner follows
            }
            break;
        }
        if let Some(rest) = line.split("replicating on ").nth(1) {
            repl_addr = rest.split_whitespace().next().expect("an address").to_owned();
            break;
        }
    }
    std::thread::spawn(move || for _ in lines {});
    (child, addr, repl_addr)
}

/// The full failover story through the real binary and both wire
/// dialects: pipelined text + binary traffic with a mid-stream
/// `redefine` lands on the primary under `ack-on-replica-1`; the
/// primary dies by SIGKILL; `migctl promote` flips the replica; the
/// promoted server carries the epoch, rejects by the *new* inventory
/// (a wire violation), serves the indexed `query` verb in both
/// dialects, and accepts new writes — and its durable state equals an
/// oracle fed exactly the acked script.
#[test]
fn kill_primary_promote_replica_and_redrive_both_dialects() {
    use migratory::core::enforce::net::frame;

    let dir = temp_dir("failover");
    let wal_p = dir.join("wal-p");
    let wal_r = dir.join("wal-r");
    let (mut primary, p_addr, p_repl) = spawn_repl_serve(
        &dir,
        &[
            "--durable",
            wal_p.to_str().unwrap(),
            "--checkpoint-every",
            "4",
            "--repl-addr",
            "127.0.0.1:0",
            "--ack",
            "replica-1",
            "--ack-timeout-ms",
            "20000",
        ],
    );
    assert!(!p_repl.is_empty(), "primary banner names its replication address");
    let (mut replica, r_addr, _) =
        spawn_repl_serve(&dir, &["--durable", wal_r.to_str().unwrap(), "--replica-of", &p_repl]);

    // Acked script, mirrored into the oracle at the end.
    let mut script: Vec<(&str, String)> = Vec::new();

    // Wait for the replica to attach before opening traffic: under
    // ack-on-replica-1 a write posted before the bootstrap finishes
    // times out (no replica can ack it) and degrades the primary —
    // the documented operator sequence is to watch `stats` for
    // `replicas=1` first.
    {
        let mut c = Client::connect(&p_addr);
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let stats = c.ask("stats");
            assert!(stats.contains("repl=primary"), "primary stats carry replication: {stats}");
            if stats.contains("replicas=1") {
                break;
            }
            assert!(Instant::now() < deadline, "replica never attached: {stats}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // Text traffic on the primary. ack-on-replica-1: every ok proves
    // the op is applied and durable on the replica.
    {
        let mut c = Client::connect(&p_addr);
        for i in 0..12 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok");
            script.push(("Mk", key));
        }
        assert_eq!(c.ask("invoke St(k0)"), "ok");
        script.push(("St", "k0".to_owned()));
        // The shipped redefinition: [STUDENT] leaves the inventory, the
        // resident student is quarantined.
        let rep = c.ask("redefine quarantine ∅* [PERSON]* ∅*");
        assert_eq!(rep, "ok epoch=1 residue=1", "one student in the residue: {rep}");
        // Traffic after the epoch flip, still replicated.
        for i in 12..16 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok");
            script.push(("Mk", key));
        }
        assert!(
            c.ask("invoke St(k1)").starts_with("violation "),
            "specialization violates the new inventory"
        );
    }
    // Binary traffic on the primary.
    {
        let conn = TcpStream::connect(&p_addr).expect("connect binary");
        let mut out = Vec::new();
        frame::encode_invoke_frame(&mut out, "Mk", &[Value::str("b0")]);
        (&conn).write_all(&out).expect("send frame");
        let mut r = BufReader::new(&conn);
        let (kind, _) = frame::read_frame(&mut r).expect("reply frame");
        assert_eq!(kind, frame::REP_OK);
        script.push(("Mk", "b0".to_owned()));
    }

    // The replica refuses writes (both dialects) while following.
    {
        let mut c = Client::connect(&r_addr);
        let rep = c.ask("invoke Mk(nope)");
        assert!(rep.starts_with("error replica is read-only"), "split-brain guard: {rep}");
        let rep = c.ask("redefine quarantine ∅*");
        assert!(rep.starts_with("error replica is read-only"), "redefine refused too: {rep}");
    }

    // Kill the old primary outright — no shutdown courtesy — and flip
    // the replica with the real `migctl promote`.
    primary.kill().expect("SIGKILL the primary");
    primary.wait().expect("reap");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_migctl"))
        .args(["promote", "--addr", &r_addr])
        .output()
        .expect("run migctl promote");
    let promoted = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "promote succeeds: {promoted} {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(promoted.contains("promoted epoch=1"), "promote reports the shipped epoch: {promoted}");

    // Re-drive the promoted server: text + binary, wire violation,
    // epoch check, indexed query in both dialects, then drain.
    {
        let mut c = Client::connect(&r_addr);
        for i in 16..20 {
            let key = format!("k{i}");
            assert_eq!(c.ask(&format!("invoke Mk({key})")), "ok", "promoted server takes writes");
            script.push(("Mk", key));
        }
        assert!(
            c.ask("invoke St(k2)").starts_with("violation "),
            "the shipped redefinition governs the promoted server"
        );
        let stats = c.ask("stats");
        assert!(
            stats.contains("epoch=1 redefines=1 quarantined=1"),
            "the shipped epoch survives promotion: {stats}"
        );
        let rep = c.ask("query PERSON(SSN=\"k0\")");
        assert_eq!(rep, "ok query count=1 oids=o1", "indexed text query: {rep}");
        let rep = c.ask("query STUDENT");
        assert!(rep.starts_with("ok query count=1"), "the quarantined student is live: {rep}");
    }
    {
        let conn = TcpStream::connect(&r_addr).expect("connect binary");
        let mut r = BufReader::new(&conn);
        let mut out = Vec::new();
        frame::encode_invoke_frame(&mut out, "Mk", &[Value::str("b1")]);
        (&conn).write_all(&out).expect("send invoke frame");
        let (kind, _) = frame::read_frame(&mut r).expect("invoke reply");
        assert_eq!(kind, frame::REP_OK);
        script.push(("Mk", "b1".to_owned()));
        // `query` is a barrier-free point-in-time read, so drive it
        // synchronously: the invoke above is acknowledged, hence
        // visible.
        out.clear();
        frame::encode_query_frame(&mut out, "PERSON(SSN=\"b1\")");
        (&conn).write_all(&out).expect("send query frame");
        let (kind, payload) = frame::read_frame(&mut r).expect("query reply");
        assert_eq!(kind, frame::REP_OK);
        let text = String::from_utf8(payload).expect("utf-8 query reply");
        assert!(text.starts_with("query count=1 oids="), "binary query dialect: {text}");
    }
    {
        let mut c = Client::connect(&r_addr);
        assert_eq!(c.ask("shutdown"), "ok draining");
    }
    replica.wait().expect("replica drains");

    // Byte-identity: the promoted server's durable state equals a fresh
    // oracle fed exactly the acked script (redefine included).
    let schema = parse_schema(REPL_SCHEMA).unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inv = Inventory::parse_init(&schema, &alphabet, REPL_INV).unwrap();
    let inv2 = Inventory::parse_init(&schema, &alphabet, "∅* [PERSON]* ∅*").unwrap();
    let ts = parse_transactions(&schema, REPL_TX).unwrap();
    let mut oracle = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
    for (name, key) in &script {
        if *name == "Mk" && key == "k12" {
            oracle.redefine(&inv2, ResiduePolicy::Quarantine).expect("oracle redefines");
        }
        oracle
            .try_apply(ts.get(name).unwrap(), &Assignment::new(vec![Value::str(key)]))
            .expect("acked ops conform");
    }
    let (snap, tail) = Wal::load(&wal_r).expect("replica wal reloads");
    let recovered =
        ShardedMonitor::recover(&schema, &alphabet, &inv, PatternKind::All, 1, snap, tail)
            .expect("replica recovers");
    assert_eq!(
        recovered.snapshot().encode(),
        oracle.snapshot().encode(),
        "promoted durable state must be byte-identical to the acked history"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Satellite 4: fault-matrix rows for the shipping socket
// ---------------------------------------------------------------------

/// Fixture: an in-process primary with a replicator, a following
/// replica, and a serial driver posting `Mk(key)` creations. Returns
/// the keys that were *acked ok* plus the replica's recovered state.
struct FaultRow {
    acked: Vec<String>,
    replica_state: Vec<u8>,
    primary_refusals: usize,
}

/// Run one fault row: drive creations, injecting `faults` before the
/// middle op; on a refusal (ack-on-replica timeout — outcome unknown),
/// rearm and wait for the replica to re-register before continuing.
fn fault_row(tag: &str, policy: AckPolicy, faults: &[ShipFault]) -> FaultRow {
    let schema = parse_schema(REPL_SCHEMA).expect("schema");
    let alphabet = RoleAlphabet::new(&schema, 0).expect("alphabet");
    let inv = Inventory::parse_init(&schema, &alphabet, REPL_INV).expect("inventory");
    let ts = parse_transactions(&schema, REPL_TX).expect("transactions");
    let mk = ts.get("Mk").expect("Mk");

    let dir_p = temp_dir(&format!("fault-p-{tag}"));
    let dir_r = temp_dir(&format!("fault-r-{tag}"));
    let wal_p = Arc::new(Mutex::new(Wal::open(&dir_p).expect("primary wal")));
    let wal_r = Arc::new(Mutex::new(Wal::open(&dir_r).expect("replica wal")));
    let metrics = Arc::new(AdmissionMetrics::new(1));

    let repl = Arc::new(
        Replicator::bind("127.0.0.1:0")
            .expect("bind replicator")
            .with_policy(policy)
            .with_ack_timeout(Duration::from_millis(400))
            .with_metrics(metrics.clone()),
    );
    let repl_addr = repl.local_addr().to_string();
    let ctl = Arc::new(ReplicaCtl::new(&repl_addr));
    let stop_accept = AtomicBool::new(false);
    let acked: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let refusals = Mutex::new(0usize);

    std::thread::scope(|scope| {
        let replica = scope.spawn(|| {
            let mut rm = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
            let health = Health::new();
            ingress::serve_pipelined(
                &mut rm,
                &IngressConfig { queue_capacity: 64, max_block: 8 },
                &DurabilityPolicy::default(),
                &health,
                wal_r.clone(),
                None,
                0,
                |_| {},
                |client| {
                    std::thread::scope(|ps| {
                        ps.spawn(|| puller(&repl_addr, &ctl, &wal_r, client, None));
                        wait_for(60, "the primary's stop signal", || ctl.stopped());
                    });
                },
            );
        });

        let mut pm = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
        let health = Health::new();
        ingress::serve_pipelined_repl(
            &mut pm,
            &IngressConfig { queue_capacity: 64, max_block: 8 },
            &DurabilityPolicy::default(),
            &health,
            wal_p.clone(),
            None,
            Some(repl.clone()),
            0,
            |_| {},
            |client| {
                std::thread::scope(|ps| {
                    ps.spawn(|| acceptor(&repl, client, &stop_accept));
                    wait_for(20, "the replica to register", || repl.live_replicas() >= 1);
                    for i in 0..16 {
                        if i == 8 {
                            for f in faults {
                                repl.inject(*f);
                            }
                        }
                        let key = format!("{tag}{i}");
                        match client.post(mk, Assignment::new(vec![Value::str(&key)])).wait() {
                            Ok(()) => acked.lock().unwrap().push(key),
                            Err(e) => {
                                // Unknown outcome: the record is locally
                                // durable but unconfirmed on the
                                // replica. The pipeline must be
                                // degraded; rearm and wait out the
                                // reconnect before continuing.
                                *refusals.lock().unwrap() += 1;
                                assert!(
                                    health.is_degraded(),
                                    "{tag}: a ship refusal degrades the primary ({e})"
                                );
                                health.rearm();
                                wait_for(30, "the replica to re-register", || {
                                    repl.live_replicas() >= 1
                                });
                            }
                        }
                    }
                    // Let the replica catch up to everything shipped,
                    // then stop it. (Under local-fsync acks never waited
                    // for the replica, so this is the only barrier.)
                    wait_for(30, "the replica to catch up", || {
                        ctl.stream_horizon() == repl.horizon()
                    });
                    ctl.request_stop();
                    stop_accept.store(true, Ordering::SeqCst);
                });
            },
        );
        repl.close();
        replica.join().expect("replica thread");
    });

    let (snap, tail) = Wal::load(&dir_r).expect("replica wal reloads");
    let recovered =
        ShardedMonitor::recover(&schema, &alphabet, &inv, PatternKind::All, 1, snap, tail)
            .expect("replica recovers");
    let out = FaultRow {
        acked: acked.into_inner().unwrap(),
        replica_state: recovered.snapshot().encode(),
        primary_refusals: refusals.into_inner().unwrap(),
    };
    // Presence check: every acked key exists in the replica's durable
    // image — the ack contract survives every fault in the row.
    let person = schema.class_id("PERSON").expect("class");
    let ssn = schema.attr_id("SSN").expect("attr");
    for key in &out.acked {
        let hits = recovered
            .db()
            .sat(person, &Condition::from_atoms([Atom::eq_const(ssn, Value::str(key))]));
        assert_eq!(hits.len(), 1, "{tag}: acked op {key} must be on the surviving replica");
    }
    let _ = std::fs::remove_dir_all(&dir_p);
    let _ = std::fs::remove_dir_all(&dir_r);
    out
}

/// `ack-on-replica-1` × {stall beyond the ack timeout, disconnect,
/// short write}: the stalled/severed op is refused (outcome unknown —
/// never rolled back, never falsely acked), the primary degrades until
/// rearmed, and every op that *was* acked is present on the replica.
#[test]
fn replica_ack_policy_fault_rows_never_ack_a_missing_op() {
    let stall =
        fault_row("rs", AckPolicy::ReplicaK(1), &[ShipFault::Stall(Duration::from_secs(1))]);
    assert!(stall.primary_refusals >= 1, "a stall past the timeout refuses at least one op");
    assert!(stall.acked.len() >= 8, "ops before and after the stall are acked");

    let cut = fault_row("rd", AckPolicy::ReplicaK(1), &[ShipFault::Disconnect]);
    assert!(cut.primary_refusals >= 1, "a severed stream refuses at least one op");
    assert!(cut.acked.len() >= 8, "the replica resyncs and acks resume");

    let torn = fault_row("rw", AckPolicy::ReplicaK(1), &[ShipFault::ShortWrite]);
    assert!(torn.primary_refusals >= 1, "a torn ship refuses at least one op");
    assert!(torn.acked.len() >= 8, "the replica truncates the torn tail and resyncs");
}

/// `ack-on-local-fsync` × the same faults: acks never wait on the
/// replica, so every op acks ok and the primary never degrades; the
/// replica reconnects behind the scenes and converges to the full
/// history (checked both as presence of every acked op and as
/// byte-identity with a full-script oracle).
#[test]
fn local_fsync_policy_rides_out_ship_faults_without_refusals() {
    for (tag, fault) in [
        ("ls", ShipFault::Stall(Duration::from_secs(1))),
        ("ld", ShipFault::Disconnect),
        ("lw", ShipFault::ShortWrite),
    ] {
        let row = fault_row(tag, AckPolicy::LocalFsync, &[fault]);
        assert_eq!(row.primary_refusals, 0, "{tag}: local-fsync never refuses on ship faults");
        assert_eq!(row.acked.len(), 16, "{tag}: every op acks");

        let schema = parse_schema(REPL_SCHEMA).unwrap();
        let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
        let inv = Inventory::parse_init(&schema, &alphabet, REPL_INV).unwrap();
        let ts = parse_transactions(&schema, REPL_TX).unwrap();
        let mut oracle = ShardedMonitor::new(&schema, &alphabet, &inv, PatternKind::All, 1);
        for key in &row.acked {
            oracle
                .try_apply(ts.get("Mk").unwrap(), &Assignment::new(vec![Value::str(key)]))
                .expect("creations conform");
        }
        assert_eq!(
            row.replica_state,
            oracle.snapshot().encode(),
            "{tag}: the converged replica is byte-identical to the acked history"
        );
    }
}

// ---------------------------------------------------------------------
// Satellite 5 (docs): the replication stream section is normative
// ---------------------------------------------------------------------

/// Lock `docs/PROTOCOL.md` § Replication stream to the implementation,
/// the same way the binary framing section is locked: every normative
/// claim below is asserted against the real constants and wire shapes,
/// and the document must state each one.
#[test]
fn replication_stream_spec_matches_the_implementation() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/PROTOCOL.md"))
        .expect("docs/PROTOCOL.md exists");
    assert!(doc.contains("## Replication stream"), "the section exists");

    // The claims the document must make, verified against the code.
    assert_eq!(HELLO, b"MGRPL1");
    assert_eq!(PREAMBLE, b"MGRPS1");
    for claim in [
        "`MGRPL1`",
        "`MGRPS1`",
        "start horizon",
        "u64",
        "little-endian",
        "`[len u32-LE][crc u32-LE][payload]`",
        "cumulative",
        "ack-on-local-fsync",
        "ack-on-replica-K",
        "never rolls back",
        "fresh snapshot",
    ] {
        assert!(doc.contains(claim), "PROTOCOL.md must state the normative claim {claim:?}");
    }

    // And the log framing the section points at really is the shipped
    // framing: a shipped stream decodes with the WAL's stream decoder.
    let (_, _, _, stream, _) = shipped_stream();
    let len0 = u32::from_le_bytes(stream[0..4].try_into().unwrap()) as usize;
    assert!(stream.len() >= 8 + len0, "first frame: [len][crc][payload]");
    let (records, consumed) = decode_stream(&stream).expect("shipped bytes are log framing");
    assert_eq!(consumed, stream.len());
    assert!(!records.is_empty());
}

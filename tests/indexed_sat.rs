//! Property tests for the indexed storage layer: the planned, index-backed
//! `Sat` evaluation must agree with the naive full-scan oracle
//! ([`Instance::sat_scan`]) on every database a random mutation history can
//! produce, and every mutation path must leave the class/value indexes
//! exactly consistent with the heap (verified by `check_invariants`, which
//! now audits the indexes). Randomness is a seeded [`StdRng`]
//! (deterministic, no external fuzzer), in the style of
//! `tests/delta_monitor.rs`.

use migratory::lang::{
    apply_transaction_delta, satisfies_literal, Assignment, AtomicUpdate, Literal, Transaction,
};
use migratory::model::{
    Atom, AttrId, ClassId, Condition, Instance, Oid, Schema, SchemaBuilder, Value,
};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::BTreeMap;

/// A random single-component hierarchy: root `C0(K, A)` plus 1–4
/// subclasses, each hanging off a random earlier class and owning one
/// fresh attribute.
fn random_schema(rng: &mut StdRng) -> (Schema, Vec<ClassId>) {
    let mut b = SchemaBuilder::new();
    let root = b.class("C0", &["K", "A"]).expect("fresh root");
    let mut classes = vec![root];
    for i in 0..rng.random_range(1usize..5) {
        let parent = classes[rng.random_range(0..classes.len())];
        let attr = format!("X{i}");
        let c = b.subclass(&format!("C{}", i + 1), &[parent], &[&attr]).expect("fresh subclass");
        classes.push(c);
    }
    (b.build().expect("valid hierarchy"), classes)
}

/// A random value from a small pool (collisions intended) plus a miss
/// value that is never stored.
fn random_value(rng: &mut StdRng) -> Value {
    match rng.random_range(0u32..6) {
        0 => Value::str("nope"),
        1 | 2 => Value::int(i64::from(rng.random_range(0u32..3))),
        _ => Value::str(&format!("v{}", rng.random_range(0u32..4))),
    }
}

/// A random ground condition of 0–3 atoms over the schema's attributes —
/// mixing indexed equalities, inequalities and guaranteed misses.
fn random_condition(rng: &mut StdRng, schema: &Schema) -> Condition {
    let attrs: Vec<AttrId> = schema.all_attrs().collect();
    Condition::from_atoms((0..rng.random_range(0usize..4)).map(|_| {
        let a = attrs[rng.random_range(0..attrs.len())];
        if rng.random_range(0u32..3) == 0 {
            Atom::ne_const(a, random_value(rng))
        } else {
            Atom::eq_const(a, random_value(rng))
        }
    }))
}

/// Tuple values for exactly the attributes a class set requires.
fn values_for(
    rng: &mut StdRng,
    schema: &Schema,
    cs: migratory::model::ClassSet,
    already: &Instance,
    o: Option<Oid>,
) -> BTreeMap<AttrId, Value> {
    let mut m = BTreeMap::new();
    for a in schema.attrs_of_class_set(cs).iter() {
        let missing = match o {
            Some(o) => already.value(o, a).is_none(),
            None => true,
        };
        if missing {
            m.insert(a, random_value(rng));
        }
    }
    m
}

/// One random mutation through a randomly chosen `Instance` primitive,
/// keeping Definition 2.2 well-formedness.
fn random_mutation(rng: &mut StdRng, schema: &Schema, classes: &[ClassId], db: &mut Instance) {
    let existing: Vec<Oid> = db.objects().collect();
    let pick = |rng: &mut StdRng, v: &[Oid]| v[rng.random_range(0..v.len())];
    match rng.random_range(0u32..6) {
        // create
        0 | 1 => {
            let c = classes[rng.random_range(0..classes.len())];
            let cs = schema.up_closure_of(c);
            let values = values_for(rng, schema, cs, db, None);
            db.create(cs, values);
        }
        // delete
        2 if !existing.is_empty() => db.delete_object(pick(rng, &existing)),
        // specialize-style add_classes
        3 if !existing.is_empty() => {
            let o = pick(rng, &existing);
            let c = classes[rng.random_range(0..classes.len())];
            let add = schema.up_closure_of(c);
            let merged = db.role_set(o).union(add);
            let values = values_for(rng, schema, merged, db, Some(o));
            db.add_classes(o, add, values);
        }
        // generalize-style remove_classes (non-root classes only, so the
        // object keeps its root)
        4 if !existing.is_empty() && classes.len() > 1 => {
            let o = pick(rng, &existing);
            let c = classes[1 + rng.random_range(0..classes.len() - 1)];
            let remove = schema.down_closure_of(c);
            let clear: Vec<AttrId> =
                remove.iter().flat_map(|rc| schema.attrs_of(rc).iter().copied()).collect();
            db.remove_classes(o, remove, clear);
        }
        // modify
        _ if !existing.is_empty() => {
            let o = pick(rng, &existing);
            let defined: Vec<AttrId> = db.tuple_of(o).iter().map(|(a, _)| a).collect();
            if !defined.is_empty() {
                let a = defined[rng.random_range(0..defined.len())];
                db.set_values(o, [(a, random_value(rng))]);
            }
        }
        _ => {}
    }
}

/// The naive literal oracle: a full scan over the heap.
fn literal_oracle(db: &Instance, l: &Literal) -> bool {
    let witness = db
        .objects()
        .any(|o| db.role_set(o).contains(l.class) && l.gamma.satisfied_by(&db.tuple_of(o)));
    witness == l.positive
}

/// Compare every query path against the scan oracle on the current
/// database.
fn assert_sat_agrees(rng: &mut StdRng, schema: &Schema, classes: &[ClassId], db: &Instance) {
    for _ in 0..4 {
        let p = classes[rng.random_range(0..classes.len())];
        let gamma = random_condition(rng, schema);
        let planned = db.sat(p, &gamma);
        let scanned = db.sat_scan(p, &gamma);
        assert_eq!(planned, scanned, "sat({p}, {gamma:?}) diverged from the scan oracle");
        assert_eq!(db.sat_exists(p, &gamma), !scanned.is_empty(), "sat_exists({p}, {gamma:?})");
        for positive in [true, false] {
            let l = if positive {
                Literal::pos(p, gamma.clone())
            } else {
                Literal::neg(p, gamma.clone())
            };
            assert_eq!(
                satisfies_literal(db, &l),
                literal_oracle(db, &l),
                "literal {positive} {p} {gamma:?}"
            );
        }
        // objects_in is the class index; the scan with ∅ condition is its
        // oracle.
        assert_eq!(
            db.objects_in(p).collect::<Vec<_>>(),
            db.sat_scan(p, &Condition::empty()),
            "objects_in({p})"
        );
    }
}

/// 60 random mutation histories through the raw `Instance` primitives:
/// after every mutation the indexes must pass `check_invariants` and all
/// planned queries must agree with the full-scan oracle; `restrict` and
/// `from_objects` must rebuild consistent indexes for random subsets.
#[test]
fn indexed_sat_agrees_with_scan_oracle_under_random_mutations() {
    let mut rng = StdRng::seed_from_u64(0x1d3_0001);
    for case in 0..60 {
        let (schema, classes) = random_schema(&mut rng);
        let mut db = Instance::empty();
        for step in 0..rng.random_range(8usize..30) {
            random_mutation(&mut rng, &schema, &classes, &mut db);
            db.check_invariants(&schema)
                .unwrap_or_else(|e| panic!("case {case} step {step}: {e:?}"));
            assert_sat_agrees(&mut rng, &schema, &classes, &db);
        }
        // Restriction onto a random subset rebuilds the indexes.
        let keep: Vec<Oid> = db.objects().filter(|_| rng.random_range(0u32..2) == 0).collect();
        let restricted = db.restrict(&keep);
        restricted.check_invariants(&schema).expect("restricted indexes consistent");
        assert_eq!(restricted.num_objects(), keep.len());
        assert_sat_agrees(&mut rng, &schema, &classes, &restricted);
        // Rebuilding from raw objects yields index-consistent storage too.
        let rebuilt = Instance::from_objects(
            db.objects().map(|o| (o, db.role_set(o), db.tuple_of(o))).collect::<Vec<_>>(),
        );
        rebuilt.check_invariants(&schema).expect("from_objects indexes consistent");
        assert_sat_agrees(&mut rng, &schema, &classes, &rebuilt);
    }
}

/// The interpreter's mutation paths (including the delta recorder's
/// `put_object`-based undo) must maintain the indexes too: apply random
/// transactions, undo half of them, and keep checking invariants and the
/// scan oracle.
#[test]
fn interpreter_and_undo_keep_indexes_consistent() {
    let mut rng = StdRng::seed_from_u64(0x1d3_0002);
    for case in 0..40 {
        let (schema, classes) = random_schema(&mut rng);
        let root = classes[0];
        let k = schema.attr_id("K").unwrap();
        let a = schema.attr_id("A").unwrap();
        let mut db = Instance::empty();
        let no_args = Assignment::empty();
        for step in 0..rng.random_range(6usize..20) {
            let key = format!("k{}", rng.random_range(0u32..4));
            let update = match rng.random_range(0u32..4) {
                0 => AtomicUpdate::Create {
                    class: root,
                    gamma: Condition::from_atoms([Atom::eq_const(k, key), Atom::eq_const(a, "v")]),
                },
                1 => AtomicUpdate::Delete {
                    class: root,
                    gamma: Condition::from_atoms([Atom::eq_const(k, key)]),
                },
                2 => AtomicUpdate::Modify {
                    class: root,
                    select: Condition::from_atoms([Atom::eq_const(k, key)]),
                    set: Condition::from_atoms([Atom::eq_const(a, random_value(&mut rng))]),
                },
                _ => {
                    let c = classes[rng.random_range(0..classes.len())];
                    let own: Vec<AttrId> = schema
                        .up_closure_of(c)
                        .iter()
                        .flat_map(|cc| schema.attrs_of(cc).iter().copied())
                        .filter(|&attr| attr != k && attr != a)
                        .collect();
                    AtomicUpdate::Specialize {
                        from: root,
                        to: c,
                        select: Condition::from_atoms([Atom::eq_const(k, key)]),
                        set: Condition::from_atoms(
                            own.into_iter().map(|attr| Atom::eq_const(attr, "w")),
                        ),
                    }
                }
            };
            let t = Transaction::sl("step", &[], vec![update]);
            let before = db.clone();
            let delta = apply_transaction_delta(&schema, &mut db, &t, &no_args)
                .unwrap_or_else(|e| panic!("case {case} step {step}: {e}"));
            db.check_invariants(&schema)
                .unwrap_or_else(|e| panic!("case {case} step {step} post-apply: {e:?}"));
            assert_sat_agrees(&mut rng, &schema, &classes, &db);
            if rng.random_range(0u32..2) == 0 {
                delta.undo(&mut db);
                assert_eq!(db, before, "case {case} step {step}: undo mismatch");
                db.check_invariants(&schema)
                    .unwrap_or_else(|e| panic!("case {case} step {step} post-undo: {e:?}"));
                assert_sat_agrees(&mut rng, &schema, &classes, &db);
            }
        }
    }
}

//! Example 5.1: immigration law as an inflow schema, and the reachability
//! problem (Theorem 5.1).
//!
//! "Before a person with a type-C visa can immigrate, she has to go back
//! to her own country" — the inflow relation orders the transactions so
//! the only route to IMMIGRANT passes through ABROAD. The SL decision
//! procedure certifies the lawful design, proves unreachability when the
//! final edge is removed, and exposes an illegal shortcut transaction
//! that a permissive relation would admit.
//!
//! (Definition 5.1 constrains only *consecutive* pairs, so the first
//! transaction of a sequence is free — which is why the shortcut must be
//! removed from the schema, not merely left out of the relation.)
//!
//! Run with `cargo run --example immigration`.

use migratory::behavior::{decide_reachability, Assertion, FlowKind, FlowSchema};
use migratory::core::RoleAlphabet;
use migratory::lang::parse_transactions;
use migratory::model::text::parse_schema;

const LAWFUL_TS: &str = r#"
    transaction EnterC(x) {
      create(PERSON, { Id = x, Status = "c" });
      specialize(PERSON, VISA_C, { Id = x, Status = "c" }, {});
    }
    transaction GoHome(x) {
      generalize(VISA_C, { Id = x, Status = "c" });
      specialize(PERSON, ABROAD, { Id = x, Status = "c" }, {});
      modify(PERSON, { Id = x, Status = "c" }, { Status = "h" });
    }
    transaction Immigrate(x) {
      generalize(ABROAD, { Id = x, Status = "h" });
      specialize(PERSON, IMMIGRANT, { Id = x, Status = "h" }, {});
      modify(PERSON, { Id = x, Status = "h" }, { Status = "i" });
    }
"#;

fn main() {
    let schema = parse_schema(
        r"
        schema Immigration {
          class PERSON { Id, Status }
          class VISA_C isa PERSON { }
          class ABROAD isa PERSON { }
          class IMMIGRANT isa PERSON { }
        }",
    )
    .unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let ts = parse_transactions(&schema, LAWFUL_TS).unwrap();

    let visa_c = Assertion::trivial(schema.class_id("VISA_C").unwrap());
    let immigrant = Assertion::trivial(schema.class_id("IMMIGRANT").unwrap());

    // Lawful inflow: EnterC → GoHome → Immigrate.
    let lawful = FlowSchema::new(
        ts.clone(),
        &[
            ("EnterC", "EnterC"),
            ("EnterC", "GoHome"),
            ("GoHome", "Immigrate"),
            ("GoHome", "EnterC"),
            ("Immigrate", "EnterC"),
        ],
        FlowKind::Inflow,
    )
    .unwrap();
    let r = decide_reachability(&schema, &alphabet, &lawful, &visa_c, &immigrant).unwrap();
    println!(
        "lawful inflow:   {}/{} visa-C vertices reach IMMIGRANT (GoHome → Immigrate)",
        r.reachable_sources, r.sources
    );
    assert!(r.holds_for_all());

    // Remove GoHome → Immigrate: Immigrate can then only appear as the
    // *first* transaction of a sequence, where no object has yet reached
    // ABROAD — unreachable.
    let blocked = FlowSchema::new(
        ts.clone(),
        &[("EnterC", "EnterC"), ("EnterC", "GoHome"), ("GoHome", "EnterC")],
        FlowKind::Inflow,
    )
    .unwrap();
    let r = decide_reachability(&schema, &alphabet, &blocked, &visa_c, &immigrant).unwrap();
    println!(
        "blocked inflow:  {}/{} visa-C vertices reach IMMIGRANT",
        r.reachable_sources, r.sources
    );
    assert!(!r.holds_for_some());

    // A buggy schema with an illegal shortcut: even an EMPTY precedence
    // relation cannot hide it, because single-transaction sequences are
    // always applicable — the design review must remove the transaction.
    let with_shortcut = parse_transactions(
        &schema,
        &format!(
            "{LAWFUL_TS}
            transaction ImmigrateDirectly(x) {{
              generalize(VISA_C, {{ Id = x, Status = \"c\" }});
              specialize(PERSON, IMMIGRANT, {{ Id = x, Status = \"c\" }}, {{}});
              modify(PERSON, {{ Id = x, Status = \"c\" }}, {{ Status = \"i\" }});
            }}"
        ),
    )
    .unwrap();
    let empty_relation =
        FlowSchema { transactions: with_shortcut, edges: vec![], kind: FlowKind::Inflow };
    let r = decide_reachability(&schema, &alphabet, &empty_relation, &visa_c, &immigrant).unwrap();
    println!(
        "with shortcut:   {}/{} visa-C vertices reach IMMIGRANT — ImmigrateDirectly exposed!",
        r.reachable_sources, r.sources
    );
    assert!(r.holds_for_all());
}

//! Beyond regular: CSL⁺ simulating a Turing machine (Theorem 4.3).
//!
//! The marker machine for {aⁿbⁿ} is compiled into a CSL⁺ transaction
//! schema over a two-component schema: `S` cells encode the tape (Fig. 7)
//! and objects of the `R`-component migrate through [L0]ⁿ[L1]ⁿ — a
//! non-regular inventory no SL schema could generate (Theorem 3.2).
//!
//! Run with `cargo run --example turing_counter`.

use migratory::chomsky::turing::machines;
use migratory::core::tm_compile::{compile_tm, drive_word, standard_tm_schema, TmSpec};
use migratory::core::{explore, ExploreConfig};
use migratory::lang::Assignment;
use migratory::model::Instance;

fn main() {
    let (schema, alphabet, s_class, roles) = standard_tm_schema(2).unwrap();
    let tm = machines::anbn();
    let spec = TmSpec {
        // a/marked-a → [L0], b/marked-b → [L1], blank → none.
        letter_of: vec![Some(roles[0]), Some(roles[1]), Some(roles[0]), Some(roles[1]), None],
    };
    let compiled = compile_tm(&schema, &alphabet, s_class, &tm, &spec).unwrap();
    println!(
        "compiled {} CSL⁺ transactions ({} per TM transition + phases)",
        compiled.transactions.len(),
        tm.transitions().count()
    );

    // Drive each accepted word and print the migration pattern traced.
    for n in 1..=4usize {
        let mut word = vec![0u32; n];
        word.extend(vec![1u32; n]);
        let script = drive_word(&tm, &word, 100_000).expect("aⁿbⁿ accepted");
        let mut db = Instance::empty();
        let mut trace = vec![db.clone()];
        for (name, args) in &script {
            let t = compiled.transactions.get(name).unwrap();
            migratory::lang::apply_transaction(&schema, &mut db, t, &Assignment::new(args.clone()))
                .unwrap();
            trace.push(db.clone());
        }
        // The migrating object is the G-component one.
        let mut shown = false;
        for i in 1..trace.last().unwrap().next_oid().0 {
            let o = migratory::model::Oid(i);
            let obs = migratory::core::pattern::observe(&schema, &alphabet, &trace, o);
            let pat = migratory::core::pattern::pattern_of(&obs);
            let visible: Vec<&str> = pat
                .iter()
                .filter(|&&s| s != alphabet.empty_symbol())
                .map(|&s| alphabet.name(s))
                .collect();
            if !visible.is_empty() {
                println!(
                    "a^{n} b^{n}: {} script steps → pattern {}",
                    script.len(),
                    visible.join(" ")
                );
                shown = true;
            }
        }
        assert!(shown);
    }

    // Rejected inputs never produce a migration.
    for bad in [vec![0u32], vec![1, 0], vec![0, 1, 1]] {
        assert!(drive_word(&tm, &bad, 100_000).is_none());
    }
    println!("rejected inputs (a, ba, abb, …) produce no script — nothing migrates");

    // A glimpse of Theorem 4.2: bounded r.e. enumeration of the family.
    let sets = explore(
        &schema,
        &alphabet,
        &compiled.transactions,
        &ExploreConfig { max_steps: 2, max_assignments: 400, ..Default::default() },
    );
    println!(
        "bounded exploration (2 steps): {} distinct patterns observed — the family is r.e., not regular",
        sets.all.len()
    );
}

//! Example 3.5: the Ph.D. student life cycle (Fig. 4) — and a genuine
//! finding of this reproduction.
//!
//! The paper's transactions, read literally under Definition 2.5, do NOT
//! preserve the sequential phases: applying T3 to an unscreened student
//! *adds* CANDIDATE on top of UNSCREENED. The decision procedure exhibits
//! the mixed-role counterexample; selecting on a phase attribute repairs
//! the design in pure SL. (See EXPERIMENTS.md, row ex3.5.)
//!
//! Run with `cargo run --example phd_lifecycle`.

use migratory::core::{decide, Inventory, PatternKind, RoleAlphabet, Verdict};
use migratory::lang::parse_transactions;
use migratory::model::text::parse_schema;

fn main() {
    let schema = parse_schema(
        r"
        schema PhD {
          class G_STUDENT { ID, Phase }
          class UNSCREENED isa G_STUDENT { }
          class SCREENED isa G_STUDENT { }
          class CANDIDATE isa G_STUDENT { }
        }",
    )
    .unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let inventory =
        Inventory::parse_init(&schema, &alphabet, "∅* [UNSCREENED]* [SCREENED]* [CANDIDATE]* ∅*")
            .unwrap();

    // The paper's literal design (Example 3.5).
    let naive = parse_transactions(
        &schema,
        r#"
        transaction T1(sid) {
          create(G_STUDENT, { ID = sid, Phase = "u" });
          specialize(G_STUDENT, UNSCREENED, { ID = sid }, {});
        }
        transaction T2(sid) {
          generalize(UNSCREENED, { ID = sid });
          specialize(G_STUDENT, SCREENED, { ID = sid }, {});
        }
        transaction T3(sid) {
          generalize(SCREENED, { ID = sid });
          specialize(G_STUDENT, CANDIDATE, { ID = sid }, {});
        }
    "#,
    )
    .unwrap();
    let d = decide(&schema, &alphabet, &naive, &inventory, PatternKind::All).unwrap();
    match &d.satisfies {
        Verdict::Fails { counterexample } => println!(
            "paper's literal Example 3.5 violates its own constraint:\n  counterexample pattern: {}\n  (T3 on an unscreened student adds CANDIDATE without leaving UNSCREENED)",
            alphabet.display_word(counterexample)
        ),
        Verdict::Holds => unreachable!(),
    }

    // The repaired design: phases tracked by an attribute that every
    // selection tests — pure SL, no guards needed.
    let phased = parse_transactions(
        &schema,
        r#"
        transaction T1(sid) {
          create(G_STUDENT, { ID = sid, Phase = "u" });
          specialize(G_STUDENT, UNSCREENED, { ID = sid, Phase = "u" }, {});
        }
        transaction T2(sid) {
          generalize(UNSCREENED, { ID = sid, Phase = "u" });
          specialize(G_STUDENT, SCREENED, { ID = sid, Phase = "u" }, {});
          modify(G_STUDENT, { ID = sid, Phase = "u" }, { Phase = "s" });
        }
        transaction T3(sid) {
          generalize(SCREENED, { ID = sid, Phase = "s" });
          specialize(G_STUDENT, CANDIDATE, { ID = sid, Phase = "s" }, {});
          modify(G_STUDENT, { ID = sid, Phase = "s" }, { Phase = "c" });
        }
    "#,
    )
    .unwrap();
    let d = decide(&schema, &alphabet, &phased, &inventory, PatternKind::All).unwrap();
    println!("\nphase-attribute repair satisfies the constraint: {}", d.satisfies.holds());
    assert!(d.satisfies.holds());

    // What does the repaired design actually generate? Print the proper
    // family's regular expression (Theorem 3.2(1)).
    let (_, fams) = migratory::core::analyze_families(
        &schema,
        &alphabet,
        &phased,
        &migratory::core::AnalyzeOptions::default(),
    )
    .unwrap();
    let name = |s: u32| alphabet.name(s).to_owned();
    println!("𝓛_pro = {}", migratory::automata::dfa_to_regex(&fams.pro).display_with(&name));
}

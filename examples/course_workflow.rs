//! Section 5's behaviour-modelling constructs on a course-registration
//! workflow: the same transactions under (a) no ordering, (b) an INSYDE-
//! style *inflow* schema (global precedence), and (c) a TAXIS-style
//! *script* schema (per-object precedence) — and what each does to the
//! migration-pattern families.
//!
//! The paper's closing remark says precedence "does not yield richer
//! expressiveness in terms of migration patterns": the families stay
//! regular, they can only shrink. This example computes all three family
//! sets and prints the growth series so the restriction is visible.
//!
//! Run with `cargo run --example course_workflow`.

use migratory::behavior::{flow_families, FlowKind, FlowSchema};
use migratory::core::{analyze_families, AnalyzeOptions, PatternKind, RoleAlphabet};
use migratory::lang::parse_transactions;
use migratory::model::text::parse_schema;

fn main() {
    let schema = parse_schema(
        r"
        schema Registrar {
          class APPLICANT { Id, Name }
          class ADMITTED isa APPLICANT { Term }
          class REGISTERED isa ADMITTED { Units }
        }",
    )
    .unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();

    let ts = parse_transactions(
        &schema,
        r#"
        transaction Apply(id, n)   { create(APPLICANT, { Id = id, Name = n }); }
        transaction Admit(id, t)   { specialize(APPLICANT, ADMITTED, { Id = id }, { Term = t }); }
        transaction Register(id, u){ specialize(ADMITTED, REGISTERED, { Id = id }, { Units = u }); }
        transaction Withdraw(id)   { generalize(ADMITTED, { Id = id }); }
        transaction Purge(id)      { delete(APPLICANT, { Id = id }); }
    "#,
    )
    .unwrap();

    // The university's workflow: apply → admit → register → (withdraw →
    // admit again)* and purge only after withdraw.
    let edges = [
        ("Apply", "Admit"),
        ("Admit", "Register"),
        ("Register", "Withdraw"),
        ("Withdraw", "Admit"),
        ("Withdraw", "Purge"),
    ];

    let opts = AnalyzeOptions::default();
    let (_, plain) = analyze_families(&schema, &alphabet, &ts, &opts).unwrap();

    let inflow = FlowSchema::new(ts.clone(), &edges, FlowKind::Inflow).unwrap();
    let inflow_fams = flow_families(&schema, &alphabet, &inflow, &opts).unwrap();

    let script = FlowSchema::new(ts.clone(), &edges, FlowKind::Script).unwrap();
    let script_fams = flow_families(&schema, &alphabet, &script, &opts).unwrap();

    println!("== Migration-pattern growth: #patterns of length ≤ k ==\n");
    println!("{:>18} {:>14} {:>14} {:>14}", "kind / k=0..6", "unordered", "inflow", "script");
    for kind in PatternKind::ALL {
        let series = |dfa: &migratory::automata::Dfa| -> String {
            let c = dfa.count_words(6);
            let total: u64 = c.iter().sum();
            format!("{total}")
        };
        println!(
            "{:>18} {:>14} {:>14} {:>14}",
            kind.to_string(),
            series(plain.of(kind)),
            series(inflow_fams.of(kind)),
            series(script_fams.of(kind)),
        );
        assert!(inflow_fams.of(kind).is_subset_of(plain.of(kind)), "ordering only restricts");
        assert!(script_fams.of(kind).is_subset_of(plain.of(kind)), "ordering only restricts");
    }

    // The two interpretations are *incomparable* in general: script mode
    // frees the steps that do not update an object (so it admits longer
    // repetitive patterns), but it also chains an object's updating
    // subsequence directly — which a globally chained run may violate by
    // interleaving updates to other objects in between.
    let all_inflow = inflow_fams.of(PatternKind::All);
    let all_script = script_fams.of(PatternKind::All);
    println!(
        "\ninflow ⊆ script: {}   script ⊆ inflow: {}",
        all_inflow.is_subset_of(all_script),
        all_script.is_subset_of(all_inflow),
    );
    if let Some(w) = all_inflow.witness_not_subset(all_script) {
        println!("  inflow-only pattern: {}", alphabet.display_word(&w));
    }
    if let Some(w) = all_script.witness_not_subset(all_inflow) {
        println!("  script-only pattern: {}", alphabet.display_word(&w));
    }

    // Show a concrete difference: a second applicant can be processed
    // between one student's steps only under the script interpretation
    // (globally, Apply cannot follow Admit).
    let sym = |names: &[&str]| {
        alphabet
            .symbol_of(migratory::model::RoleSet::closure_of_named(&schema, names).unwrap())
            .unwrap()
    };
    let a = sym(&["APPLICANT"]);
    let ad = sym(&["ADMITTED"]);
    // Pattern ∅ [APPLICANT] [ADMITTED]: the object is created on step 2.
    let late = [alphabet.empty_symbol(), a, ad];
    println!(
        "\npattern ∅ [APPLICANT] [ADMITTED] (object created mid-run):\n  \
         inflow: {}   script: {}",
        inflow_fams.of(PatternKind::All).accepts(&late),
        script_fams.of(PatternKind::All).accepts(&late),
    );
    println!(
        "\nThe families stay regular under both interpretations — the paper's\n\
         §5 closing remark, verified constructively by the product builder."
    );
}

//! Runtime enforcement of a migration inventory — the paper's motivating
//! application of dynamic constraints, turned into an online admission
//! controller.
//!
//! A hospital staff database tracks persons who may become nurses or
//! physicians and may retire. The inventory (a dynamic integrity
//! constraint, Definition 3.3) says: every staff member starts as a plain
//! PERSON, may hold exactly one continuous clinical role, and once
//! retired never practises again. A [`Monitor`] guards the live database:
//! conforming updates commit, violating ones are rejected with the
//! offending object's pattern.
//!
//! The second half shows the paper's punchline for SL (Corollary 3.3):
//! a schema whose transactions *provably* satisfy the inventory is
//! certified once, statically, after which the monitor skips every
//! runtime check.
//!
//! Run with `cargo run --example enforcement`.

use migratory::core::enforce::{EnforceError, Monitor};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{parse_transactions, Assignment};
use migratory::model::text::parse_schema;
use migratory::model::Value;

fn main() {
    let schema = parse_schema(
        r"
        schema Hospital {
          class PERSON { Id, Name }
          class NURSE isa PERSON { Ward }
          class PHYSICIAN isa PERSON { Specialty }
          class RETIRED isa PERSON { Since }
        }",
    )
    .unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();

    // One continuous clinical role, then (optionally) retirement, then
    // departure. Init(·) closes the language under prefixes.
    let inventory = Inventory::parse_init(
        &schema,
        &alphabet,
        "∅* [PERSON]* ([NURSE]* ∪ [PHYSICIAN]*) [RETIRED]* ∅*",
    )
    .unwrap();

    let ts = parse_transactions(
        &schema,
        r#"
        transaction Hire(id, n) { create(PERSON, { Id = id, Name = n }); }
        transaction ToNurse(id, w) {
          specialize(PERSON, NURSE, { Id = id }, { Ward = w });
        }
        transaction ToPhysician(id, s) {
          specialize(PERSON, PHYSICIAN, { Id = id }, { Specialty = s });
        }
        transaction StepDown(id) {
          generalize(NURSE, { Id = id });
          generalize(PHYSICIAN, { Id = id });
        }
        transaction Retire(id, y) {
          generalize(NURSE, { Id = id });
          generalize(PHYSICIAN, { Id = id });
          specialize(PERSON, RETIRED, { Id = id }, { Since = y });
        }
        transaction Leave(id) { delete(PERSON, { Id = id }); }
    "#,
    )
    .unwrap();

    println!("== Online enforcement (kind = all patterns) ==\n");
    let mut m = Monitor::new(&schema, &alphabet, &inventory, PatternKind::All);

    let one = |v: &str| Assignment::new(vec![Value::str(v)]);
    let two = |v: &str, w: &str| Assignment::new(vec![Value::str(v), Value::str(w)]);

    let script: Vec<(&str, Assignment)> = vec![
        ("Hire", two("7", "Ada")),
        ("ToNurse", two("7", "ICU")),
        ("Retire", two("7", "2026")),
        // Re-entering practice after retirement violates the inventory:
        ("ToPhysician", two("7", "Cardiology")),
        ("Leave", one("7")),
    ];

    for (name, args) in &script {
        let t = ts.get(name).expect("transaction exists");
        match m.try_apply(t, args) {
            Ok(()) => println!("  ✓ {name:<12} committed (step {})", m.steps()),
            Err(EnforceError::Violation(v)) => {
                println!("  ✗ {name:<12} REJECTED — {}", v.display(&alphabet));
            }
            Err(EnforceError::Lang(e)) => println!("  ! {name:<12} failed: {e}"),
            Err(EnforceError::Durability(e)) => println!("  ! {name:<12} not logged: {e}"),
            Err(EnforceError::Degraded(e) | EnforceError::Redefine(e)) => {
                println!("  ! {name:<12} refused: {e}");
            }
        }
    }
    println!(
        "\n  final database: {} object(s); Ada's recorded pattern: {}",
        m.db().num_objects(),
        m.pattern_of(migratory::model::Oid(1))
            .map(|p| alphabet.display_word(&p))
            .unwrap_or_default(),
    );

    println!("\n== Static certification (Corollary 3.3) ==\n");
    // A restricted schema that can only hire, promote to nurse once, and
    // delete — provably inside the inventory.
    let safe = parse_transactions(
        &schema,
        r#"
        transaction Hire(id, n) { create(PERSON, { Id = id, Name = n }); }
        transaction ToNurse(id, w) {
          specialize(PERSON, NURSE, { Id = id }, { Ward = w });
        }
        transaction Leave(id) { delete(PERSON, { Id = id }); }
    "#,
    )
    .unwrap();
    let mut fast = Monitor::new(&schema, &alphabet, &inventory, PatternKind::All);
    let ok = fast.certify(&safe).expect("SL schema is decidable");
    println!("  certify(safe schema)  = {ok}  → runtime checks skipped");

    let mut never = Monitor::new(&schema, &alphabet, &inventory, PatternKind::All);
    let ok2 = never.certify(&ts).expect("SL schema is decidable");
    println!("  certify(full schema)  = {ok2} → Retire→ToPhysician can violate, keep checking");

    // Certified fast path in action: same applications, no tracking cost.
    for (name, args) in
        [("Hire", two("9", "Grace")), ("ToNurse", two("9", "ER")), ("Leave", one("9"))]
    {
        fast.try_apply(safe.get(name).unwrap(), &args).unwrap();
    }
    println!(
        "  certified run committed {} steps over {} object(s) with zero checks",
        fast.steps(),
        1
    );
}

//! Path expressions as migration inventories — Examples 3.3, 3.6, 3.7.
//!
//! A path expression `(p(q ∪ r)s)*` controlling four operations becomes a
//! migration inventory over the Fig. 3 class hierarchy; Lemma 3.4 then
//! *synthesizes* SL transactions characterizing it, and the Theorem
//! 3.2(1) analyzer verifies the round trip (Corollary 3.3).
//!
//! Run with `cargo run --example path_expressions`.

use migratory::core::{
    analyze_families, decide_with_families, synthesize, AnalyzeOptions, Inventory, PatternKind,
    RoleAlphabet,
};
use migratory::lang::pretty::schema_to_text;
use migratory::model::text::parse_schema;

fn main() {
    // Fig. 3: one subclass of R per operation. R carries the three
    // bookkeeping attributes A, B, C that Lemma 3.4 requires.
    let schema = parse_schema(
        r"
        schema PathOps {
          class R { A, B, C }
          class p isa R { }
          class q isa R { }
          class r isa R { }
          class s isa R { }
        }",
    )
    .unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();

    // Example 3.3: the path expression as a regular inventory.
    let eta = alphabet.parse_regex(&schema, "([p] ([q] ∪ [r]) [s])*").unwrap();
    println!("path expression η = ([p] ([q] ∪ [r]) [s])*\n");

    // Lemma 3.4: synthesize a characterizing SL schema.
    let synth = synthesize(&schema, &alphabet, &eta).expect("R has three attributes");
    println!(
        "=== Synthesized transaction schema (Lemma 3.4): {} transaction(s), {} steps ===",
        synth.transactions.len(),
        synth.transactions.transactions()[0].len()
    );
    println!(
        "Migration graph G_η: {} vertices, {} edges (Fig. 6 analogue)\n",
        synth.graph.num_vertices(),
        synth.graph.num_edges()
    );
    println!("{}\n", schema_to_text(&schema, &synth.transactions));

    // Theorem 3.2(1): analyze it back.
    let (analysis, fams) = analyze_families(
        &schema,
        &alphabet,
        &synth.transactions,
        &AnalyzeOptions { parallel: true, ..Default::default() },
    )
    .unwrap();
    println!(
        "analyzer: {} vertices, {} edges, {} ground runs",
        analysis.stats.vertices, analysis.stats.edges, analysis.stats.runs
    );

    // Corollary 3.3 + Theorem 3.2(2)(a): Σ_η characterizes Init(∅*η∅*)
    // as its full pattern family 𝓛(Σ_η).
    let padded = migratory::automata::Regex::concat([
        migratory::automata::Regex::star(migratory::automata::Regex::Sym(alphabet.empty_symbol())),
        eta,
        migratory::automata::Regex::star(migratory::automata::Regex::Sym(alphabet.empty_symbol())),
    ]);
    let inventory = Inventory::init_of_regex(&schema, &alphabet, &padded).unwrap();
    let d = decide_with_families(&fams, &inventory, PatternKind::All);
    println!(
        "\nΣ_η satisfies Init(∅*η∅*): {}\nΣ_η generates Init(∅*η∅*): {}\nΣ_η characterizes it:     {}",
        d.satisfies.holds(),
        d.generates.holds(),
        d.characterizes()
    );
    assert!(d.characterizes(), "Theorem 3.2(2)(a) round trip must close");

    // Show a few shortest legal operation sequences.
    println!("\nshortest legal operation sequences:");
    for w in fams.imm.enumerate(4, 12) {
        println!("  {}", alphabet.display_word(&w));
    }
}

//! Quickstart: the paper's running example end to end.
//!
//! Builds the university schema of Fig. 1, populates the instance of
//! Fig. 2, runs Example 3.4's transactions, extracts all four migration
//! pattern families (Theorem 3.2(1)) and checks the life-cycle inventory
//! of Example 3.2 (Corollary 3.3).
//!
//! Run with `cargo run --example quickstart`.

use migratory::core::{
    analyze_families, decide_with_families, AnalyzeOptions, Inventory, PatternKind, RoleAlphabet,
};
use migratory::lang::{parse_transactions, run_trace, Assignment};
use migratory::model::display::{attribute_tables, membership_table};
use migratory::model::{schema::university_schema, Instance, Value};

fn main() {
    // ---- Fig. 1: the schema ------------------------------------------------
    let schema = university_schema();
    println!("=== Schema (Fig. 1) ===\n{}\n", migratory::model::display::schema_to_text(&schema));

    // ---- Example 3.4: the transactions ------------------------------------
    let ts = parse_transactions(
        &schema,
        r"
        transaction Enroll(n, s, t, m) {
          create(PERSON, { SSN = s, Name = n });
          specialize(PERSON, STUDENT, { SSN = s }, { Major = m, FirstEnroll = t });
        }
        transaction Assist(s, p, x, d) {
          specialize(STUDENT, GRAD_ASSIST, { SSN = s },
                     { PcAppoint = p, Salary = x, WorksIn = d });
        }
        transaction EndAssist(s) { generalize(EMPLOYEE, { SSN = s }); }
        transaction Graduate(s) { delete(PERSON, { SSN = s }); }
    ",
    )
    .expect("Example 3.4 parses and validates");

    // ---- A run producing a Fig. 2-style instance ---------------------------
    let enroll = ts.get("Enroll").unwrap();
    let assist = ts.get("Assist").unwrap();
    let args = |v: Vec<Value>| Assignment::new(v);
    let trace = run_trace(
        &schema,
        &Instance::empty(),
        [
            (enroll, &args(vec!["John".into(), "1234".into(), Value::int(1988), "CS".into()])),
            (enroll, &args(vec!["Mary".into(), "5678".into(), Value::int(1990), "EE".into()])),
            (assist, &args(vec!["1234".into(), Value::int(50), Value::int(1200), "DB lab".into()])),
        ],
    )
    .expect("arities match");
    let db = trace.last().unwrap();
    db.check_invariants(&schema).expect("Definition 2.2 invariants hold");
    println!("=== Instance after three transactions (Fig. 2 style) ===");
    println!("{}", membership_table(&schema, db));
    println!("{}", attribute_tables(&schema, db));

    // ---- Theorem 3.2(1): the four pattern families -------------------------
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();
    let (analysis, fams) = analyze_families(
        &schema,
        &alphabet,
        &ts,
        &AnalyzeOptions { parallel: true, ..Default::default() },
    )
    .expect("SL schema analyzes");
    println!(
        "=== Migration graph (Theorem 3.2) === \n{} separator vertices, {} edges, {} ground runs\n",
        analysis.stats.vertices, analysis.stats.edges, analysis.stats.runs
    );
    let name = |s: u32| alphabet.name(s).to_owned();
    for (kind, dfa) in [
        (PatternKind::All, &fams.all),
        (PatternKind::ImmediateStart, &fams.imm),
        (PatternKind::Proper, &fams.pro),
        (PatternKind::Lazy, &fams.lazy),
    ] {
        let regex = migratory::automata::dfa_to_regex(dfa);
        println!("𝓛_{kind:<16} = {}", regex.display_with(&name));
    }

    // ---- Corollary 3.3: checking inventories --------------------------------
    // The paper notes Σ lets a student "get several assistantships from
    // time to time": the matching constraint allows [S]/[G] alternation.
    let alternating =
        Inventory::parse_init(&schema, &alphabet, "∅* ([STUDENT]+ [GRAD_ASSIST]*)* ∅*").unwrap();
    let d = decide_with_families(&fams, &alternating, PatternKind::All);
    println!("\n=== Σ vs Init(∅*([S]+[G]*)*∅*) — the family the paper derives ===");
    println!("satisfies: {}", d.satisfies.holds());
    assert!(d.satisfies.holds());
    if let migratory::core::Verdict::Fails { counterexample } = &d.generates {
        println!(
            "generates: false — e.g. {} is allowed but never produced (objects always enroll as students)",
            alphabet.display_word(counterexample)
        );
    }

    // Example 3.2's one-shot employment life cycle is stricter: returning
    // from an assistantship to plain studenthood violates it, and the
    // decision procedure produces the witness.
    let one_shot = Inventory::parse_init(
        &schema,
        &alphabet,
        "∅* [PERSON]* [STUDENT]* [GRAD_ASSIST]* [EMPLOYEE]* [PERSON]* ∅*",
    )
    .unwrap();
    let d = decide_with_families(&fams, &one_shot, PatternKind::All);
    println!("\n=== Σ vs Example 3.2's one-shot life cycle ===");
    match &d.satisfies {
        migratory::core::Verdict::Holds => println!("satisfies ✓"),
        migratory::core::Verdict::Fails { counterexample } => println!(
            "refuted — witness pattern: {} (a second assistantship)",
            alphabet.display_word(counterexample)
        ),
    }
}

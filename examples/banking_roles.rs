//! The introduction's banking example: an interest-bearing checking
//! account becomes a regular checking account — the object stops playing
//! the role INTEREST_CHECKING and starts REGULAR_CHECKING.
//!
//! A migration inventory forbids illegal account-state flows (an account
//! opens as REGULAR, may toggle between the two flavours, and never
//! returns once closed). As with Example 3.5 (see `phd_lifecycle`),
//! naively selecting accounts by number alone lets a second `Open` mix
//! roles on an interest-bearing account; encoding the flavour in a `Kind`
//! attribute repairs it — and the decision procedure certifies both
//! verdicts.
//!
//! Run with `cargo run --example banking_roles`.

use migratory::core::{decide, Inventory, PatternKind, RoleAlphabet, Verdict};
use migratory::lang::parse_transactions;
use migratory::model::text::parse_schema;

fn main() {
    let schema = parse_schema(
        r"
        schema Bank {
          class ACCOUNT { AcctNo, Owner, Kind }
          class REGULAR_CHECKING isa ACCOUNT { }
          class INTEREST_CHECKING isa ACCOUNT { Rate }
        }",
    )
    .unwrap();
    let alphabet = RoleAlphabet::new(&schema, 0).unwrap();

    let inventory = Inventory::parse_init(
        &schema,
        &alphabet,
        "∅* [REGULAR_CHECKING] ([REGULAR_CHECKING] ∪ [INTEREST_CHECKING])* ∅*",
    )
    .unwrap();

    // Kind-encoded design: every selection checks the current flavour.
    let good = parse_transactions(
        &schema,
        r#"
        transaction Open(no, owner) {
          create(ACCOUNT, { AcctNo = no, Owner = owner, Kind = "r" });
          specialize(ACCOUNT, REGULAR_CHECKING, { AcctNo = no, Kind = "r" }, {});
        }
        transaction AddInterest(no, rate) {
          generalize(REGULAR_CHECKING, { AcctNo = no, Kind = "r" });
          specialize(ACCOUNT, INTEREST_CHECKING, { AcctNo = no, Kind = "r" }, { Rate = rate });
          modify(ACCOUNT, { AcctNo = no, Kind = "r" }, { Kind = "i" });
        }
        transaction DropInterest(no) {
          generalize(INTEREST_CHECKING, { AcctNo = no, Kind = "i" });
          specialize(ACCOUNT, REGULAR_CHECKING, { AcctNo = no, Kind = "i" }, {});
          modify(ACCOUNT, { AcctNo = no, Kind = "i" }, { Kind = "r" });
        }
        transaction Close(no) { delete(ACCOUNT, { AcctNo = no }); }
    "#,
    )
    .unwrap();

    let d = decide(&schema, &alphabet, &good, &inventory, PatternKind::All).unwrap();
    println!("kind-encoded design satisfies the account-flow constraint: {}", d.satisfies.holds());
    assert!(d.satisfies.holds(), "{:?}", d.satisfies);

    // The naive design selects by account number only: a second Open on
    // an interest-bearing account adds REGULAR_CHECKING on top of it.
    let naive = parse_transactions(
        &schema,
        r#"
        transaction Open(no, owner) {
          create(ACCOUNT, { AcctNo = no, Owner = owner, Kind = "r" });
          specialize(ACCOUNT, REGULAR_CHECKING, { AcctNo = no }, {});
        }
        transaction AddInterest(no, rate) {
          generalize(REGULAR_CHECKING, { AcctNo = no });
          specialize(ACCOUNT, INTEREST_CHECKING, { AcctNo = no }, { Rate = rate });
        }
        transaction Close(no) { delete(ACCOUNT, { AcctNo = no }); }
    "#,
    )
    .unwrap();
    let d = decide(&schema, &alphabet, &naive, &inventory, PatternKind::All).unwrap();
    match &d.satisfies {
        Verdict::Fails { counterexample } => {
            println!(
                "naive design refuted — offending migration pattern: {}",
                alphabet.display_word(counterexample)
            );
        }
        Verdict::Holds => unreachable!("the mixed-role bug must be caught"),
    }
}

//! Fleet migration at scale: sharded, batched admission over a schema
//! with four independent weakly-connected role components.
//!
//! A logistics operator runs four separate asset hierarchies — trucks,
//! drivers, routes and depots — in one store. The components are
//! weakly disconnected, so (Definition 2.2) no object ever crosses
//! between them, and (Lemma 3.5) their objects evolve independently:
//! the [`ShardedMonitor`] routes each component to its own shard and the
//! only coordination between shards is the shared step counter.
//!
//! The example bulk-loads 100 000 objects (25 000 per component), then
//! admits a day of operations — blocks of single-object migrations —
//! through [`ShardedMonitor::try_apply_batch`], one cohort sweep per
//! shard per block, and prints per-shard tracking statistics.
//!
//! Run with: `cargo run --release --example fleet_migration`

use migratory::core::enforce::{ShardedMonitor, StepPolicy};
use migratory::core::{Inventory, PatternKind, RoleAlphabet};
use migratory::lang::{parse_transactions, Assignment, Transaction};
use migratory::model::{SchemaBuilder, Value};
use std::time::Instant;

const PER_COMPONENT: usize = 25_000;
const BATCH: usize = 256;
const BATCHES: usize = 8;

fn main() {
    // Four root hierarchies: TRUCK ⊲ IN_SERVICE, DRIVER ⊲ ON_SHIFT,
    // ROUTE ⊲ ACTIVE, DEPOT ⊲ OPEN — each pair its own component.
    let mut b = SchemaBuilder::new();
    for (root, sub, key) in [
        ("TRUCK", "IN_SERVICE", "Vin"),
        ("DRIVER", "ON_SHIFT", "Badge"),
        ("ROUTE", "ACTIVE", "RId"),
        ("DEPOT", "OPEN", "DId"),
    ] {
        let r = b.class(root, &[key]).expect("fresh root");
        b.subclass(sub, &[r], &[]).expect("fresh subclass");
    }
    let schema = b.build().expect("valid schema");
    assert_eq!(schema.num_components(), 4);

    // The inventory constrains component 0 (trucks): a truck may cycle
    // between parked ([TRUCK]) and in-service ([IN_SERVICE]) and finally
    // leave the fleet. Other components read ∅ under this alphabet, so
    // the leading/trailing ∅* admits them.
    let alphabet = RoleAlphabet::new(&schema, 0).expect("component 0");
    let inventory = Inventory::parse_init(&schema, &alphabet, "∅* ([TRUCK] ∪ [IN_SERVICE])* ∅*")
        .expect("inventory parses");

    let ts = parse_transactions(
        &schema,
        r"
        transaction BuyTruck(x)    { create(TRUCK, { Vin = x }); }
        transaction Dispatch(x)    { specialize(TRUCK, IN_SERVICE, { Vin = x }, {}); }
        transaction Park(x)        { generalize(IN_SERVICE, { Vin = x }); }
        transaction HireDriver(x)  { create(DRIVER, { Badge = x }); }
        transaction StartShift(x)  { specialize(DRIVER, ON_SHIFT, { Badge = x }, {}); }
        transaction EndShift(x)    { generalize(ON_SHIFT, { Badge = x }); }
        transaction OpenRoute(x)   { create(ROUTE, { RId = x }); }
        transaction Activate(x)    { specialize(ROUTE, ACTIVE, { RId = x }, {}); }
        transaction BuildDepot(x)  { create(DEPOT, { DId = x }); }
        transaction OpenDepot(x)   { specialize(DEPOT, OPEN, { DId = x }, {}); }
    ",
    )
    .expect("transactions validate");

    let mut monitor = ShardedMonitor::new(&schema, &alphabet, &inventory, PatternKind::All, 4)
        .with_policy(StepPolicy::OnlyChanging);
    assert!(monitor.routes_by_component(), "four components → four shards");
    println!(
        "fleet_migration: {} shards (component-routed), batch size {BATCH}",
        monitor.num_shards()
    );

    // Bulk load: 25k single-create applications per component, admitted
    // in blocks — each application is one letter, so the load emits
    // 100 000 letters.
    let t0 = Instant::now();
    for (mk, prefix) in
        [("BuyTruck", "t"), ("HireDriver", "d"), ("OpenRoute", "r"), ("BuildDepot", "p")]
    {
        let t = ts.get(mk).expect("transaction exists");
        let bulk = bulk_of(t, prefix, PER_COMPONENT);
        let (done, err) = monitor.try_apply_batch(bulk.iter().map(|(t, a)| (*t, a)));
        assert_eq!((done, err), (PER_COMPONENT, None), "bulk load conforms");
    }
    println!(
        "loaded {} objects in {:.2?} ({} letters)",
        monitor.db().num_objects(),
        t0.elapsed(),
        monitor.steps()
    );

    // A day of operations: blocks mixing all four components — truck
    // dispatch/park cycles, driver shifts, route activations, depot
    // openings — admitted batch-wise.
    let day: Vec<(&str, String)> = (0..BATCHES * BATCH)
        .map(|i| {
            let k = i / 8;
            match i % 8 {
                0 => ("Dispatch", format!("t{}", k % PER_COMPONENT)),
                1 => ("StartShift", format!("d{}", k % PER_COMPONENT)),
                2 => ("Activate", format!("r{}", k % PER_COMPONENT)),
                3 => ("OpenDepot", format!("p{}", k % PER_COMPONENT)),
                4 => ("Park", format!("t{}", k % PER_COMPONENT)),
                _ => ("EndShift", format!("d{}", k % PER_COMPONENT)),
            }
        })
        .collect();
    let resolved: Vec<(&Transaction, Assignment)> = day
        .iter()
        .map(|(name, key)| {
            (ts.get(name).expect("transaction"), Assignment::new(vec![Value::str(key)]))
        })
        .collect();

    let t0 = Instant::now();
    let mut admitted = 0usize;
    for block in resolved.chunks(BATCH) {
        let (done, err) = monitor.try_apply_batch(block.iter().map(|(t, a)| (*t, a)));
        assert!(err.is_none(), "the day's operations conform: {err:?}");
        admitted += done;
    }
    let dt = t0.elapsed();
    println!(
        "admitted {admitted} applications in {} batches in {dt:.2?} ({:.0} apps/sec)",
        BATCHES,
        admitted as f64 / dt.as_secs_f64()
    );

    println!("\nper-shard tracking statistics:");
    println!(
        "{:>6} {:>16} {:>13} {:>15} {:>13}",
        "shard", "tracked objects", "live cohorts", "exempt objects", "last touched"
    );
    for s in monitor.shard_stats() {
        println!(
            "{:>6} {:>16} {:>13} {:>15} {:>13}",
            s.shard, s.tracked_objects, s.live_cohorts, s.exempt_objects, s.last_touched
        );
    }
    let total: usize = monitor.shard_stats().iter().map(|s| s.tracked_objects).sum();
    assert_eq!(total, monitor.db().num_objects(), "every live object is tracked in some shard");
    println!("\n{} letters emitted; database holds {} objects", monitor.steps(), total);
}

/// `n` single-create applications of `t` with keys `prefix0..prefixN`.
fn bulk_of<'t>(t: &'t Transaction, prefix: &str, n: usize) -> Vec<(&'t Transaction, Assignment)> {
    (0..n).map(|i| (t, Assignment::new(vec![Value::str(&format!("{prefix}{i}"))]))).collect()
}

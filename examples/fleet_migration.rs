//! Fleet migration at scale: sharded, batched admission over a schema
//! with four independent weakly-connected role components — with an
//! optional **durable mode** (write-ahead log + snapshots + crash
//! recovery).
//!
//! A logistics operator runs four separate asset hierarchies — trucks,
//! drivers, routes and depots — in one store. The components are
//! weakly disconnected, so (Definition 2.2) no object ever crosses
//! between them, and (Lemma 3.5) their objects evolve independently:
//! the [`ShardedMonitor`] routes each component to its own shard and the
//! only coordination between shards is the shared step counter.
//!
//! The example bulk-loads 100 000 objects (25 000 per component), then
//! admits a day of operations — blocks of single-object migrations —
//! through [`ShardedMonitor::try_apply_batch`], one cohort sweep per
//! shard per block, and prints per-shard tracking statistics.
//!
//! ```text
//! cargo run --release --example fleet_migration                  # volatile
//! cargo run --release --example fleet_migration -- \
//!     --durable DIR [--snapshot-every N] [--crash-after N]       # log to DIR
//! cargo run --release --example fleet_migration -- \
//!     --durable DIR --recover                                    # resume
//! ```
//!
//! In durable mode every admitted block group-commits to `DIR/wal.log`
//! before the monitor's tracking state moves, and every `N` blocks the
//! monitor checkpoints (`DIR/snapshot.bin`, truncating the log).
//! `--crash-after N` aborts the process mid-run after `N` day-blocks —
//! simulating a crash with the WAL left at whatever prefix reached the
//! OS. `--recover` rebuilds the monitor from checkpoint + WAL tail
//! (**without** replaying the fleet's history), verifies the database
//! invariants, prints recovery statistics and finishes the remaining
//! work durably. The CI crash-recovery smoke job runs exactly this
//! crash/recover pair.

use migratory::core::enforce::{ingress, IngressConfig, ShardedMonitor, StepPolicy, Wal};
use migratory::core::{Inventory, PatternKind};
use migratory::lang::{Assignment, Transaction};
use migratory::model::Value;
use migratory_bench::{fleet, fleet_ops, FLEET_INVENTORY};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const PER_COMPONENT: usize = 25_000;
const BATCH: usize = 256;
const BATCHES: usize = 8;

struct Options {
    durable: Option<String>,
    snapshot_every: usize,
    crash_after: Option<usize>,
    recover: bool,
}

fn parse_args() -> Options {
    let mut opts = Options { durable: None, snapshot_every: 4, crash_after: None, recover: false };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--durable" => opts.durable = Some(args.next().expect("--durable DIR")),
            "--snapshot-every" => {
                opts.snapshot_every =
                    args.next().and_then(|v| v.parse().ok()).expect("--snapshot-every N")
            }
            "--crash-after" => opts.crash_after = args.next().and_then(|v| v.parse().ok()),
            "--recover" => opts.recover = true,
            other => panic!("unknown argument `{other}`"),
        }
    }
    if (opts.recover || opts.crash_after.is_some()) && opts.durable.is_none() {
        panic!("--recover/--crash-after require --durable DIR");
    }
    opts
}

fn main() {
    let opts = parse_args();
    // The schema, transactions and day schedule are the shared fleet
    // workload from migratory-bench (also behind the persist/ingress
    // experiment rows), so example and benches cannot drift apart.
    let (schema, alphabet, ts) = fleet();
    assert_eq!(schema.num_components(), 4);
    let inventory =
        Inventory::parse_init(&schema, &alphabet, FLEET_INVENTORY).expect("inventory parses");

    let mut monitor;
    let mut blocks_done = 0usize; // day-blocks already durable before this run
    if opts.recover {
        let dir = opts.durable.as_deref().expect("checked in parse_args");
        let t0 = Instant::now();
        let (snap, tail) = Wal::load(dir).expect("load wal directory");
        let snap_steps = snap.as_ref().map_or(0, |s| s.steps());
        let tail_blocks = tail.len();
        let tail_letters: usize =
            tail.iter().map(migratory::core::enforce::WalRecord::letters).sum();
        monitor = ShardedMonitor::recover(
            &schema,
            &alphabet,
            &inventory,
            PatternKind::All,
            4,
            snap,
            tail,
        )
        .expect("recovery succeeds")
        .with_policy(StepPolicy::OnlyChanging);
        let dt = t0.elapsed();
        monitor.db().check_invariants(&schema).expect("recovered database is well-formed");
        let letters = monitor.steps();
        println!("fleet_migration: RECOVERED from {dir} in {dt:.2?}");
        println!(
            "  checkpoint at {snap_steps} letters + {tail_blocks} wal blocks \
             ({tail_letters} letters) = {letters} letters, {} objects — no history replayed",
            monitor.db().num_objects()
        );
        // Everything the crashed run made durable is back; figure out
        // how much of the day was already admitted.
        let loaded_letters = 4 * PER_COMPONENT;
        assert!(letters >= loaded_letters, "the bulk load was durable before the crash");
        // Under OnlyChanging, 6 of every 8 day ops change the database
        // (two EndShift repeats are null applications): 192 letters per
        // 256-op block.
        let letters_per_block = BATCH / 8 * 6;
        assert_eq!((letters - loaded_letters) % letters_per_block, 0, "crash at block boundary");
        blocks_done = (letters - loaded_letters) / letters_per_block;
        println!("  resuming the day at block {blocks_done}/{BATCHES}");
    } else {
        monitor = ShardedMonitor::new(&schema, &alphabet, &inventory, PatternKind::All, 4)
            .with_policy(StepPolicy::OnlyChanging);
    }
    assert!(monitor.routes_by_component(), "four components → four shards");

    // Attach the log (fresh runs and recovered runs alike).
    let wal = match opts.durable.as_deref() {
        Some(dir) => {
            let wal = Arc::new(Mutex::new(Wal::open(dir).expect("open wal directory")));
            monitor = monitor.with_sink(wal.clone());
            Some(wal)
        }
        None => None,
    };
    println!(
        "fleet_migration: {} shards (component-routed), batch size {BATCH}{}",
        monitor.num_shards(),
        match &opts.durable {
            Some(dir) => format!(", durable in {dir}"),
            None => String::new(),
        }
    );

    if !opts.recover {
        // Bulk load: 25k single-create applications per component,
        // admitted in blocks — each application is one letter.
        let t0 = Instant::now();
        for (mk, prefix) in
            [("BuyTruck", "t"), ("HireDriver", "d"), ("OpenRoute", "r"), ("BuildDepot", "p")]
        {
            let t = ts.get(mk).expect("transaction exists");
            let bulk = bulk_of(t, prefix, PER_COMPONENT);
            let (done, err) = monitor.try_apply_batch(bulk.iter().map(|(t, a)| (*t, a)));
            assert_eq!((done, err), (PER_COMPONENT, None), "bulk load conforms");
        }
        println!(
            "loaded {} objects in {:.2?} ({} letters)",
            monitor.db().num_objects(),
            t0.elapsed(),
            monitor.steps()
        );
        if let Some(wal) = &wal {
            // Checkpoint the loaded fleet so recovery never replays it.
            let t0 = Instant::now();
            wal.lock().unwrap().write_snapshot(&monitor.snapshot()).expect("snapshot");
            println!("checkpointed the loaded fleet in {:.2?}", t0.elapsed());
        }
    }

    // A day of operations, admitted batch-wise; in durable mode every
    // block group-commits to the WAL and every `snapshot_every` blocks
    // the monitor checkpoints (truncating the log).
    let day = fleet_ops(BATCHES * BATCH, PER_COMPONENT);
    let resolved: Vec<(&Transaction, Assignment)> =
        day.iter().map(|(name, args)| (ts.get(name).expect("transaction"), args.clone())).collect();

    let t0 = Instant::now();
    let mut admitted = 0usize;
    for (i, block) in resolved.chunks(BATCH).enumerate().skip(blocks_done) {
        if let Some(crash_at) = opts.crash_after {
            if i >= crash_at {
                println!(
                    "simulated CRASH before block {i}/{BATCHES} — {} letters durable; \
                     run again with `--durable … --recover`",
                    monitor.steps()
                );
                // A real crash: no snapshot, no clean shutdown — the WAL
                // is whatever reached the OS.
                std::process::exit(0);
            }
        }
        let (done, err) = monitor.try_apply_batch(block.iter().map(|(t, a)| (*t, a)));
        assert!(err.is_none(), "the day's operations conform: {err:?}");
        admitted += done;
        if let Some(wal) = &wal {
            if (i + 1) % opts.snapshot_every == 0 {
                wal.lock().unwrap().write_snapshot(&monitor.snapshot()).expect("snapshot");
            }
        }
    }
    let dt = t0.elapsed();
    println!(
        "admitted {admitted} applications in {} batches in {dt:.2?} ({:.0} apps/sec)",
        BATCHES - blocks_done,
        admitted as f64 / dt.as_secs_f64()
    );

    // An hour of concurrent traffic through the ingress lanes: four
    // producer threads (one per asset class) pipelining single-object
    // ops into the bounded per-shard queues.
    let rush: Vec<(&Transaction, Assignment)> = resolved.iter().take(4 * BATCH).cloned().collect();
    let t0 = Instant::now();
    let cfg = IngressConfig { queue_capacity: 512, max_block: BATCH };
    let ((), stats) = ingress::serve(&mut monitor, &cfg, |client| {
        std::thread::scope(|scope| {
            for p in 0..4 {
                let rush = &rush;
                scope.spawn(move || {
                    let tickets: Vec<_> = rush
                        .iter()
                        .skip(p)
                        .step_by(4)
                        .map(|(t, a)| client.post(t, a.clone()))
                        .collect();
                    for t in tickets {
                        t.wait().expect("rush hour conforms");
                    }
                });
            }
        });
    });
    println!(
        "rush hour: {} ops from 4 producers over {} lanes in {:.2?} \
         ({} blocks, max queue depth {})",
        stats.submitted,
        stats.lanes,
        t0.elapsed(),
        stats.blocks,
        stats.max_queue_depth
    );

    println!("\nper-shard tracking statistics:");
    println!(
        "{:>6} {:>16} {:>13} {:>15} {:>13}",
        "shard", "tracked objects", "live cohorts", "exempt objects", "last touched"
    );
    for s in monitor.shard_stats() {
        println!(
            "{:>6} {:>16} {:>13} {:>15} {:>13}",
            s.shard, s.tracked_objects, s.live_cohorts, s.exempt_objects, s.last_touched
        );
    }
    let total: usize = monitor.shard_stats().iter().map(|s| s.tracked_objects).sum();
    assert_eq!(total, monitor.db().num_objects(), "every live object is tracked in some shard");
    monitor.db().check_invariants(&schema).expect("database is well-formed");
    if let Some(wal) = &wal {
        wal.lock().unwrap().write_snapshot(&monitor.snapshot()).expect("final checkpoint");
        println!("final checkpoint written");
    }
    println!("\n{} letters emitted; database holds {} objects", monitor.steps(), total);
}

/// `n` single-create applications of `t` with keys `prefix0..prefixN`.
fn bulk_of<'t>(t: &'t Transaction, prefix: &str, n: usize) -> Vec<(&'t Transaction, Assignment)> {
    (0..n).map(|i| (t, Assignment::new(vec![Value::str(&format!("{prefix}{i}"))]))).collect()
}

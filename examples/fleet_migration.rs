//! Fleet migration at scale: sharded, batched admission over a schema
//! with four independent weakly-connected role components — each on its
//! **own letter clock** — with an optional **durable mode** (write-ahead
//! log + background incremental checkpoints + crash recovery).
//!
//! A logistics operator runs four separate asset hierarchies — trucks,
//! drivers, routes and depots — in one store. The components are
//! weakly disconnected, so (Definition 2.2) no object ever crosses
//! between them, and (Lemma 3.5) their objects evolve independently:
//! the [`ShardedMonitor`] routes each component to its own shard, and
//! with per-shard letter clocks the shards share *no* mutable state —
//! a truck operation advances only the truck shard's clock.
//!
//! The example bulk-loads 100 000 objects (25 000 per component), then
//! admits a day of operations — blocks of single-object migrations —
//! through [`ShardedMonitor::try_apply_batch`], one cohort sweep per
//! participating shard per block, and prints per-shard tracking
//! statistics.
//!
//! ```text
//! cargo run --release --example fleet_migration                  # volatile
//! cargo run --release --example fleet_migration -- \
//!     --durable DIR [--snapshot-every N] [--crash-after N]       # log to DIR
//! cargo run --release --example fleet_migration -- \
//!     --durable DIR --recover                                    # resume
//! ```
//!
//! In durable mode every admitted block group-commits to `DIR/wal.log`
//! before the monitor's tracking state moves. Checkpoints are
//! **incremental and backgrounded**: every `N` blocks the admission
//! thread captures the dirtied state (O(dirty)) and seals the log (a
//! rename), while a [`Snapshotter`] thread encodes and writes the
//! checkpoint and prunes covered log segments — the admission path
//! never pays the full-snapshot pause. `--crash-after N` aborts the
//! process at the top of day-block `N` — immediately after a
//! checkpoint was handed to the snapshotter when `N` is a multiple of
//! `--snapshot-every`, so the crash lands **during an in-flight
//! checkpoint** and recovery must cope with whatever prefix of the
//! checkpoint job reached disk. `--recover` rebuilds the monitor from
//! the checkpoint chain + WAL tail (**without** replaying the fleet's
//! history), verifies the database invariants, prints recovery
//! statistics and finishes the remaining work durably. The CI
//! crash-recovery smoke job runs exactly this crash/recover pair.
//!
//! The rush-hour phase below drives the same `enforce::ingress` lanes
//! that `migctl serve` puts behind a TCP socket — to run this scenario
//! with callers that share nothing with the process but the wire
//! protocol, see `migctl serve`/`migctl client` (`docs/PROTOCOL.md`)
//! and the `experiments serve` bench row.

use migratory::core::enforce::{
    ingress, CheckpointData, IngressConfig, ShardedMonitor, Snapshotter, StepPolicy, Wal,
};
use migratory::core::{Inventory, PatternKind};
use migratory::lang::{Assignment, Transaction};
use migratory::model::Value;
use migratory_bench::{fleet, fleet_ops, FLEET_INVENTORY};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const PER_COMPONENT: usize = 25_000;
const BATCH: usize = 256;
const BATCHES: usize = 8;
/// Letters each shard reads per 256-op day block (per 8-op cycle:
/// Dispatch+Park the truck, StartShift+one effective EndShift for the
/// driver, one route activation, one depot opening; the two repeat
/// EndShifts are null applications under `OnlyChanging`).
const LETTERS_PER_BLOCK: [usize; 4] = [64, 64, 32, 32];

struct Options {
    durable: Option<String>,
    snapshot_every: usize,
    crash_after: Option<usize>,
    recover: bool,
}

fn parse_args() -> Options {
    let mut opts = Options { durable: None, snapshot_every: 4, crash_after: None, recover: false };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--durable" => opts.durable = Some(args.next().expect("--durable DIR")),
            "--snapshot-every" => {
                opts.snapshot_every =
                    args.next().and_then(|v| v.parse().ok()).expect("--snapshot-every N")
            }
            "--crash-after" => opts.crash_after = args.next().and_then(|v| v.parse().ok()),
            "--recover" => opts.recover = true,
            other => panic!("unknown argument `{other}`"),
        }
    }
    if (opts.recover || opts.crash_after.is_some()) && opts.durable.is_none() {
        panic!("--recover/--crash-after require --durable DIR");
    }
    opts
}

fn main() {
    let opts = parse_args();
    // The schema, transactions and day schedule are the shared fleet
    // workload from migratory-bench (also behind the persist/ingress
    // experiment rows), so example and benches cannot drift apart.
    let (schema, alphabet, ts) = fleet();
    assert_eq!(schema.num_components(), 4);
    let inventory =
        Inventory::parse_init(&schema, &alphabet, FLEET_INVENTORY).expect("inventory parses");

    let mut monitor;
    let mut blocks_done = 0usize; // day-blocks already durable before this run
    if opts.recover {
        let dir = opts.durable.as_deref().expect("checked in parse_args");
        let t0 = Instant::now();
        let (snap, tail) = Wal::load(dir).expect("load wal directory");
        let snap_clocks = snap.as_ref().map_or_else(Vec::new, |s| s.clocks());
        let tail_blocks = tail.len();
        let tail_letters: usize =
            tail.iter().map(migratory::core::enforce::WalRecord::letters).sum();
        monitor = ShardedMonitor::recover(
            &schema,
            &alphabet,
            &inventory,
            PatternKind::All,
            4,
            snap,
            tail,
        )
        .expect("recovery succeeds")
        .with_policy(StepPolicy::OnlyChanging);
        let dt = t0.elapsed();
        monitor.db().check_invariants(&schema).expect("recovered database is well-formed");
        let clocks = monitor.clocks();
        println!("fleet_migration: RECOVERED from {dir} in {dt:.2?}");
        println!(
            "  checkpoint chain at clocks {snap_clocks:?} + {tail_blocks} wal blocks \
             ({tail_letters} deltas) = clocks {clocks:?}, {} objects — no history replayed",
            monitor.db().num_objects()
        );
        // Everything the crashed run made durable is back; figure out
        // how much of the day was already admitted from each shard's
        // own clock (the bulk load put PER_COMPONENT letters on each).
        for (s, &c) in clocks.iter().enumerate() {
            assert!(c >= PER_COMPONENT, "shard {s}: the bulk load was durable before the crash");
            let day = c - PER_COMPONENT;
            // Clocks past the full day belong to the rush-hour phase of
            // a run that crashed (or finished) after its day completed.
            let blocks = (day / LETTERS_PER_BLOCK[s]).min(BATCHES);
            if blocks < BATCHES {
                assert_eq!(day % LETTERS_PER_BLOCK[s], 0, "shard {s}: crash at block boundary");
            }
            if s == 0 {
                blocks_done = blocks;
            } else {
                assert_eq!(blocks, blocks_done, "shard {s}: shards crashed at the same block");
            }
        }
        println!("  resuming the day at block {blocks_done}/{BATCHES}");
    } else {
        monitor = ShardedMonitor::new(&schema, &alphabet, &inventory, PatternKind::All, 4)
            .with_policy(StepPolicy::OnlyChanging);
    }
    assert!(monitor.routes_by_component(), "four components → four shards");

    // Attach the log (fresh runs and recovered runs alike) and stand up
    // the background snapshotter.
    let wal = match opts.durable.as_deref() {
        Some(dir) => {
            let wal = Arc::new(Mutex::new(Wal::open(dir).expect("open wal directory")));
            monitor = monitor.with_sink(wal.clone());
            Some(wal)
        }
        None => None,
    };
    let mut snapshotter = wal.as_ref().map(|_| Snapshotter::spawn());
    println!(
        "fleet_migration: {} shards (component-routed, independent letter clocks), batch size \
         {BATCH}{}",
        monitor.num_shards(),
        match &opts.durable {
            Some(dir) => format!(", durable in {dir}"),
            None => String::new(),
        }
    );

    if !opts.recover {
        // Bulk load: 25k single-create applications per component,
        // admitted in blocks — each application is one letter on its
        // own component's clock.
        let t0 = Instant::now();
        for (mk, prefix) in
            [("BuyTruck", "t"), ("HireDriver", "d"), ("OpenRoute", "r"), ("BuildDepot", "p")]
        {
            let t = ts.get(mk).expect("transaction exists");
            let bulk = bulk_of(t, prefix, PER_COMPONENT);
            let (done, err) = monitor.try_apply_batch(bulk.iter().map(|(t, a)| (*t, a)));
            assert_eq!((done, err), (PER_COMPONENT, None), "bulk load conforms");
        }
        println!(
            "loaded {} objects in {:.2?} (clocks {:?})",
            monitor.db().num_objects(),
            t0.elapsed(),
            monitor.clocks()
        );
    }
    if let (Some(wal), Some(snapshotter)) = (&wal, &mut snapshotter) {
        // Base checkpoint of the loaded (or recovered) fleet, written
        // in the background: the admission thread pays only the
        // capture. A recovered run re-establishes the base when the
        // crash killed the base checkpoint job itself — increments can
        // only chain onto an existing base.
        if !wal.lock().unwrap().has_base() {
            let t0 = Instant::now();
            let job = wal
                .lock()
                .unwrap()
                .begin_checkpoint(CheckpointData::Full(monitor.checkpoint_full()))
                .expect("stage base checkpoint");
            let stall = t0.elapsed();
            snapshotter.submit(job).expect("snapshotter accepts");
            println!("staged the base checkpoint in {stall:.2?} (encode/write backgrounded)");
        }
    }

    // A day of operations, admitted batch-wise; in durable mode every
    // block group-commits to the WAL and every `snapshot_every` blocks
    // the admission thread captures an O(dirty) incremental checkpoint
    // and hands it to the snapshotter (which prunes the covered log).
    let day = fleet_ops(BATCHES * BATCH, PER_COMPONENT);
    let resolved: Vec<(&Transaction, Assignment)> =
        day.iter().map(|(name, args)| (ts.get(name).expect("transaction"), args.clone())).collect();

    let t0 = Instant::now();
    let mut admitted = 0usize;
    let mut max_stall = std::time::Duration::ZERO;
    for (i, block) in resolved.chunks(BATCH).enumerate().skip(blocks_done) {
        if let Some(crash_at) = opts.crash_after {
            if i >= crash_at {
                println!(
                    "simulated CRASH before block {i}/{BATCHES} — clocks {:?} durable{}; \
                     run again with `--durable … --recover`",
                    monitor.clocks(),
                    if i % opts.snapshot_every == 0 && i > 0 {
                        " (a checkpoint is in flight)"
                    } else {
                        ""
                    }
                );
                // A real crash: no clean shutdown — the WAL is whatever
                // reached the OS, and the snapshotter thread dies
                // mid-write if a checkpoint job is still running
                // (std::process::exit runs no destructors).
                std::process::exit(0);
            }
        }
        let (done, err) = monitor.try_apply_batch(block.iter().map(|(t, a)| (*t, a)));
        assert!(err.is_none(), "the day's operations conform: {err:?}");
        admitted += done;
        if let (Some(wal), Some(snapshotter)) = (&wal, &mut snapshotter) {
            if (i + 1) % opts.snapshot_every == 0 {
                // The admission-path stall: capture the dirtied state
                // and seal the log. Encode + fsync + prune run on the
                // snapshotter thread.
                let t0 = Instant::now();
                let delta = monitor.checkpoint_delta();
                let job = wal
                    .lock()
                    .unwrap()
                    .begin_checkpoint(CheckpointData::Incremental(delta))
                    .expect("stage incremental checkpoint");
                max_stall = max_stall.max(t0.elapsed());
                snapshotter.submit(job).expect("snapshotter accepts");
            }
        }
    }
    let dt = t0.elapsed();
    println!(
        "admitted {admitted} applications in {} batches in {dt:.2?} ({:.0} apps/sec{})",
        BATCHES - blocks_done,
        admitted as f64 / dt.as_secs_f64(),
        if wal.is_some() {
            format!(", max checkpoint stall {max_stall:.2?}")
        } else {
            String::new()
        }
    );

    // An hour of concurrent traffic through the ingress lanes: four
    // producer threads (one per asset class) pipelining single-object
    // ops into the bounded per-shard queues — each lane's blocks
    // advance only its own shard's clock.
    let rush: Vec<(&Transaction, Assignment)> = resolved.iter().take(4 * BATCH).cloned().collect();
    let t0 = Instant::now();
    let cfg = IngressConfig { queue_capacity: 512, max_block: BATCH };
    let ((), stats) = ingress::serve(&mut monitor, &cfg, |client| {
        std::thread::scope(|scope| {
            for p in 0..4 {
                let rush = &rush;
                scope.spawn(move || {
                    let tickets: Vec<_> = rush
                        .iter()
                        .skip(p)
                        .step_by(4)
                        .map(|(t, a)| client.post(t, a.clone()))
                        .collect();
                    for t in tickets {
                        t.wait().expect("rush hour conforms");
                    }
                });
            }
        });
    });
    println!(
        "rush hour: {} ops from 4 producers over {} lanes in {:.2?} \
         ({} blocks, max queue depth {})",
        stats.submitted,
        stats.lanes,
        t0.elapsed(),
        stats.blocks,
        stats.max_queue_depth
    );

    println!("\nper-shard tracking statistics:");
    println!(
        "{:>6} {:>10} {:>16} {:>13} {:>15} {:>13}",
        "shard", "clock", "tracked objects", "live cohorts", "exempt objects", "last touched"
    );
    for s in monitor.shard_stats() {
        println!(
            "{:>6} {:>10} {:>16} {:>13} {:>15} {:>13}",
            s.shard, s.clock, s.tracked_objects, s.live_cohorts, s.exempt_objects, s.last_touched
        );
    }
    let total: usize = monitor.shard_stats().iter().map(|s| s.tracked_objects).sum();
    assert_eq!(total, monitor.db().num_objects(), "every live object is tracked in some shard");
    monitor.db().check_invariants(&schema).expect("database is well-formed");
    if let Some(snapshotter) = snapshotter {
        snapshotter.finish().expect("all background checkpoints durable");
    }
    if let Some(wal) = &wal {
        // Final incremental checkpoint, synchronous: the run is over.
        let delta = monitor.checkpoint_delta();
        wal.lock()
            .unwrap()
            .begin_checkpoint(CheckpointData::Incremental(delta))
            .expect("stage final checkpoint")
            .run()
            .expect("final checkpoint");
        println!("final checkpoint written");
    }
    println!(
        "\nclocks {:?} ({} letters read); database holds {} objects",
        monitor.clocks(),
        monitor.letters_read(),
        total
    );
}

/// `n` single-create applications of `t` with keys `prefix0..prefixN`.
fn bulk_of<'t>(t: &'t Transaction, prefix: &str, n: usize) -> Vec<(&'t Transaction, Assignment)> {
    (0..n).map(|i| (t, Assignment::new(vec![Value::str(&format!("{prefix}{i}"))]))).collect()
}

//! The `migctl` command-line interface: the paper's decision procedures,
//! analysis, synthesis and runtime enforcement over text-format schema,
//! transaction and script files.
//!
//! All subcommand logic lives here as string-in/string-out functions so
//! it can be unit-tested without touching the filesystem; the binary in
//! `src/bin/migctl.rs` only reads files and prints.

use migratory_core::enforce::{EnforceError, Monitor};
use migratory_core::{
    analyze_families, decide_with_families, AnalyzeOptions, Inventory, PatternKind, RoleAlphabet,
    Verdict,
};
use migratory_lang::pretty::transaction_to_text;
use migratory_lang::{parse_transactions, Assignment};
use migratory_model::text::parse_schema;
use migratory_model::{Schema, Value};

/// Usage text for the binary and the `help` subcommand.
pub const USAGE: &str = "\
migctl — dynamic constraints and object migration (Su, VLDB 1991)

USAGE:
  migctl families   <schema> <transactions> [--component N]
  migctl decide     <schema> <transactions> --inventory <regex> [--kind K] [--component N]
  migctl synthesize <schema> --inventory <regex> [--lazy] [--component N]
  migctl enforce    <schema> <transactions> --inventory <regex> --script <file> [--kind K]
  migctl help

  <schema>        a `schema Name { class … }` file
  <transactions>  a `transaction Name(params) { … }` file (SL or CSL)
  <regex>         paper notation over role sets, e.g. \"∅* [PERSON]* [STUDENT]* ∅*\"
                  (Init — the prefix closure — is applied automatically)
  K               all | immediate-start | proper | lazy   (default: all)
  --script        lines of `Name(arg, …)` applications; `#` comments allowed

families    prints the four pattern families of Theorem 3.2(1) as regexes
decide      checks satisfies/generates of Corollary 3.3, with counterexamples
synthesize  builds the SL schema characterizing the inventory (Lemma 3.4)
enforce     replays a script under the runtime monitor, reporting rejections
";

/// Parse a `--kind` value.
fn parse_kind(s: &str) -> Result<PatternKind, String> {
    match s {
        "all" => Ok(PatternKind::All),
        "immediate-start" | "imm" => Ok(PatternKind::ImmediateStart),
        "proper" | "pro" => Ok(PatternKind::Proper),
        "lazy" => Ok(PatternKind::Lazy),
        other => Err(format!("unknown pattern kind `{other}` (all|immediate-start|proper|lazy)")),
    }
}

/// A parsed flag set: positional arguments plus `--flag value` pairs.
pub struct Flags {
    positional: Vec<String>,
    named: Vec<(String, String)>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut positional = Vec::new();
    let mut named = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "lazy" {
                named.push((name.to_owned(), "true".to_owned()));
                continue;
            }
            let v = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
            named.push((name.to_owned(), v.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Flags { positional, named })
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    fn component(&self) -> Result<u32, String> {
        self.get("component").map_or(Ok(0), |v| {
            v.parse().map_err(|_| format!("--component takes a number, got `{v}`"))
        })
    }

    fn kind(&self) -> Result<PatternKind, String> {
        self.get("kind").map_or(Ok(PatternKind::All), parse_kind)
    }
}

fn load(schema_src: &str, component: u32) -> Result<(Schema, RoleAlphabet), String> {
    let schema = parse_schema(schema_src).map_err(|e| format!("schema: {e}"))?;
    let alphabet = RoleAlphabet::new(&schema, component).map_err(|e| format!("alphabet: {e}"))?;
    Ok((schema, alphabet))
}

fn load_inventory(
    schema: &Schema,
    alphabet: &RoleAlphabet,
    flags: &Flags,
) -> Result<Inventory, String> {
    let src = flags.get("inventory").ok_or("missing --inventory <regex>")?;
    Inventory::parse_init(schema, alphabet, src).map_err(|e| format!("inventory: {e}"))
}

/// `migctl families`: the four families as role-set regexes.
pub fn cmd_families(schema_src: &str, tx_src: &str, component: u32) -> Result<String, String> {
    let (schema, alphabet) = load(schema_src, component)?;
    let ts = parse_transactions(&schema, tx_src).map_err(|e| format!("transactions: {e}"))?;
    let (analysis, fams) = analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default())
        .map_err(|e| format!("analysis: {e}"))?;
    let name = |s: u32| alphabet.name(s).to_owned();
    let mut out = format!(
        "migration graph: {} vertices, {} edges ({} ground runs)\n",
        analysis.stats.vertices, analysis.stats.edges, analysis.stats.runs
    );
    for kind in PatternKind::ALL {
        let dfa = fams.of(kind);
        let regex = migratory_automata::dfa_to_regex(dfa);
        out.push_str(&format!(
            "{kind:>16}: {}   ({} DFA states)\n",
            regex.display_with(&name),
            dfa.num_states()
        ));
    }
    Ok(out)
}

/// `migctl decide`: Corollary 3.3 verdicts with counterexamples.
pub fn cmd_decide(schema_src: &str, tx_src: &str, flags: &Flags) -> Result<String, String> {
    let (schema, alphabet) = load(schema_src, flags.component()?)?;
    let ts = parse_transactions(&schema, tx_src).map_err(|e| format!("transactions: {e}"))?;
    let inv = load_inventory(&schema, &alphabet, flags)?;
    let kind = flags.kind()?;
    let (_, fams) = analyze_families(&schema, &alphabet, &ts, &AnalyzeOptions::default())
        .map_err(|e| format!("analysis: {e}"))?;
    let d = decide_with_families(&fams, &inv, kind);
    let mut out = String::new();
    let show = |out: &mut String, label: &str, v: &Verdict| match v {
        Verdict::Holds => out.push_str(&format!("{label}: HOLDS\n")),
        Verdict::Fails { counterexample } => out.push_str(&format!(
            "{label}: FAILS — counterexample {}\n",
            alphabet.display_word(counterexample)
        )),
    };
    show(&mut out, "satisfies", &d.satisfies);
    show(&mut out, "generates", &d.generates);
    out.push_str(&format!("characterizes: {}\n", d.characterizes()));
    Ok(out)
}

/// `migctl synthesize`: Lemma 3.4's schema for a regular inventory.
pub fn cmd_synthesize(schema_src: &str, flags: &Flags) -> Result<String, String> {
    let (schema, alphabet) = load(schema_src, flags.component()?)?;
    let src = flags.get("inventory").ok_or("missing --inventory <regex>")?;
    let eta = alphabet.parse_regex(&schema, src).map_err(|e| format!("inventory: {e}"))?;
    let synthesis = if flags.get("lazy").is_some() {
        migratory_core::synthesize_lazy(&schema, &alphabet, &eta)
    } else {
        migratory_core::synthesize(&schema, &alphabet, &eta)
    }
    .map_err(|e| format!("synthesis: {e}"))?;
    let mut out = format!(
        "migration graph G_η: {} vertices, {} edges\n\n",
        synthesis.graph.num_vertices(),
        synthesis.graph.num_edges()
    );
    for t in synthesis.transactions.transactions() {
        out.push_str(&transaction_to_text(&schema, t));
        out.push('\n');
    }
    Ok(out)
}

/// One parsed script application: transaction name and argument values.
pub fn parse_script(src: &str) -> Result<Vec<(String, Vec<Value>)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("script line {}: {msg}: `{line}`", lineno + 1);
        let open = line.find('(').ok_or_else(|| err("expected `Name(args…)`"))?;
        let close = line.rfind(')').ok_or_else(|| err("missing `)`"))?;
        let name = line[..open].trim();
        if name.is_empty() {
            return Err(err("empty transaction name"));
        }
        let inner = &line[open + 1..close];
        let mut args = Vec::new();
        if !inner.trim().is_empty() {
            for part in inner.split(',') {
                let part = part.trim();
                let v = if let Some(stripped) =
                    part.strip_prefix('"').and_then(|p| p.strip_suffix('"'))
                {
                    Value::str(stripped)
                } else if let Ok(i) = part.parse::<i64>() {
                    Value::int(i)
                } else {
                    Value::str(part)
                };
                args.push(v);
            }
        }
        out.push((name.to_owned(), args));
    }
    Ok(out)
}

/// `migctl enforce`: replay a script under the runtime monitor.
pub fn cmd_enforce(
    schema_src: &str,
    tx_src: &str,
    script_src: &str,
    flags: &Flags,
) -> Result<String, String> {
    let (schema, alphabet) = load(schema_src, flags.component()?)?;
    let ts = parse_transactions(&schema, tx_src).map_err(|e| format!("transactions: {e}"))?;
    let inv = load_inventory(&schema, &alphabet, flags)?;
    let kind = flags.kind()?;
    let script = parse_script(script_src)?;
    let mut m = Monitor::new(&schema, &alphabet, &inv, kind);
    let mut out = String::new();
    let mut rejected = 0usize;
    for (name, args) in &script {
        let t = ts.get(name).ok_or_else(|| format!("unknown transaction `{name}`"))?;
        match m.try_apply(t, &Assignment::new(args.clone())) {
            Ok(()) => out.push_str(&format!("✓ {name}\n")),
            Err(EnforceError::Violation(v)) => {
                rejected += 1;
                out.push_str(&format!("✗ {name} — {}\n", v.display(&alphabet)));
            }
            Err(EnforceError::Lang(e)) => {
                return Err(format!("applying {name}: {e}"));
            }
            Err(EnforceError::Durability(e)) => {
                return Err(format!("logging {name}: {e}"));
            }
        }
    }
    out.push_str(&format!(
        "committed {} of {} applications ({} rejected); {} object(s) live\n",
        script.len() - rejected,
        script.len(),
        rejected,
        m.db().num_objects()
    ));
    Ok(out)
}

/// Dispatch a full argument vector (excluding the binary name). Used by
/// the binary with file contents read eagerly.
pub fn dispatch(
    args: &[String],
    read: &dyn Fn(&str) -> Result<String, String>,
) -> Result<String, String> {
    let Some(cmd) = args.first() else {
        return Ok(USAGE.to_owned());
    };
    let flags = parse_flags(&args[1..])?;
    let pos = |i: usize, what: &str| -> Result<String, String> {
        flags.positional.get(i).cloned().ok_or_else(|| format!("missing {what}\n\n{USAGE}"))
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        "families" => {
            let schema = read(&pos(0, "<schema> file")?)?;
            let tx = read(&pos(1, "<transactions> file")?)?;
            cmd_families(&schema, &tx, flags.component()?)
        }
        "decide" => {
            let schema = read(&pos(0, "<schema> file")?)?;
            let tx = read(&pos(1, "<transactions> file")?)?;
            cmd_decide(&schema, &tx, &flags)
        }
        "synthesize" => {
            let schema = read(&pos(0, "<schema> file")?)?;
            cmd_synthesize(&schema, &flags)
        }
        "enforce" => {
            let schema = read(&pos(0, "<schema> file")?)?;
            let tx = read(&pos(1, "<transactions> file")?)?;
            let script_path = flags.get("script").ok_or("missing --script <file>")?;
            let script = read(script_path)?;
            cmd_enforce(&schema, &tx, &script, &flags)
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = r"
        schema Uni {
          class PERSON { SSN, Name }
          class STUDENT isa PERSON { Major }
        }";

    const TX: &str = r#"
        transaction Mk(x) { create(PERSON, { SSN = x, Name = "n" }); }
        transaction St(x) { specialize(PERSON, STUDENT, { SSN = x }, { Major = "CS" }); }
        transaction Rm(x) { delete(PERSON, { SSN = x }); }
    "#;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        Flags {
            positional: Vec::new(),
            named: pairs.iter().map(|(a, b)| ((*a).to_owned(), (*b).to_owned())).collect(),
        }
    }

    #[test]
    fn families_prints_four_rows() {
        let out = cmd_families(SCHEMA, TX, 0).unwrap();
        assert!(out.contains("migration graph"));
        for k in ["all", "immediate-start", "proper", "lazy"] {
            assert!(out.contains(k), "missing row {k}:\n{out}");
        }
        assert!(out.contains("[PERSON]"));
    }

    #[test]
    fn decide_reports_verdicts_and_counterexamples() {
        let f = flags(&[("inventory", "∅* [PERSON]* [STUDENT]* ∅*")]);
        let out = cmd_decide(SCHEMA, TX, &f).unwrap();
        assert!(out.contains("satisfies: HOLDS"), "{out}");
        assert!(out.contains("generates: FAILS"), "{out}");
        assert!(out.contains("counterexample"));

        // A narrower inventory is violated, with a counterexample word.
        let f = flags(&[("inventory", "[PERSON]*")]);
        let out = cmd_decide(SCHEMA, TX, &f).unwrap();
        assert!(out.contains("satisfies: FAILS"), "{out}");
    }

    #[test]
    fn synthesize_emits_a_transaction() {
        // Lemma 3.4 needs an isa-root with three attributes (A, B, C).
        let schema3 = r"
            schema Uni {
              class PERSON { SSN, Name, Tag }
              class STUDENT isa PERSON { Major }
            }";
        let f = flags(&[("inventory", "[PERSON] [STUDENT]*")]);
        let out = cmd_synthesize(schema3, &f).unwrap();
        assert!(out.contains("transaction"), "{out}");
        assert!(out.contains("create"), "{out}");

        // The two-attribute schema reports the Lemma 3.4 requirement.
        let err = cmd_synthesize(SCHEMA, &f).unwrap_err();
        assert!(err.contains("three attributes"), "{err}");
    }

    #[test]
    fn script_parsing_handles_values_and_comments() {
        let script = r#"
            # enroll two people
            Mk(1)
            Mk("two words")
            St(1)     # promote
            Rm(notanumber)
        "#;
        let parsed = parse_script(script).unwrap();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[0], ("Mk".to_owned(), vec![Value::int(1)]));
        assert_eq!(parsed[1].1, vec![Value::str("two words")]);
        assert_eq!(parsed[3].1, vec![Value::str("notanumber")]);
        assert!(parse_script("Mk 1").is_err());
        assert!(parse_script("(1)").is_err());
    }

    #[test]
    fn enforce_replays_and_reports() {
        let f = flags(&[("inventory", "∅* [PERSON]+ ∅*")]);
        let script = "Mk(1)\nSt(1)\nRm(1)\n";
        let out = cmd_enforce(SCHEMA, TX, script, &f).unwrap();
        assert!(out.contains("✓ Mk"));
        assert!(out.contains("✗ St"), "{out}");
        assert!(out.contains("✓ Rm"));
        assert!(out.contains("committed 2 of 3"), "{out}");
    }

    #[test]
    fn dispatch_routes_and_reports_usage() {
        let files = |name: &str| -> Result<String, String> {
            match name {
                "s.mig" => Ok(SCHEMA.to_owned()),
                "t.sl" => Ok(TX.to_owned()),
                "run.txt" => Ok("Mk(1)\n".to_owned()),
                other => Err(format!("no such file {other}")),
            }
        };
        let ok = dispatch(&["families".to_owned(), "s.mig".to_owned(), "t.sl".to_owned()], &files)
            .unwrap();
        assert!(ok.contains("migration graph"));

        let usage = dispatch(&[], &files).unwrap();
        assert!(usage.contains("USAGE"));
        assert!(dispatch(&["bogus".to_owned()], &files).is_err());

        let enforce = dispatch(
            &[
                "enforce".to_owned(),
                "s.mig".to_owned(),
                "t.sl".to_owned(),
                "--inventory".to_owned(),
                "∅* [PERSON]* ∅*".to_owned(),
                "--script".to_owned(),
                "run.txt".to_owned(),
            ],
            &files,
        )
        .unwrap();
        assert!(enforce.contains("committed 1 of 1"));
    }

    #[test]
    fn kind_flag_parses_all_spellings() {
        for (s, k) in [
            ("all", PatternKind::All),
            ("imm", PatternKind::ImmediateStart),
            ("immediate-start", PatternKind::ImmediateStart),
            ("pro", PatternKind::Proper),
            ("proper", PatternKind::Proper),
            ("lazy", PatternKind::Lazy),
        ] {
            assert_eq!(parse_kind(s).unwrap(), k);
        }
        assert!(parse_kind("sometimes").is_err());
    }
}
